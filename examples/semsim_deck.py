"""Drive the simulator from the paper's SPICE-like input format.

Parses (a shortened sweep of) Example Input File 1 from the paper,
builds the circuit, runs the Monte Carlo sweep it describes and prints
the resulting I-V points.

Run:  python examples/semsim_deck.py
"""

from repro.netlist import parse_semsim, write_semsim

DECK = """
#SET component definitions
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
charge 4 0.0

#Input source information
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1

#Overall node information
num j 2
num ext 3
num nodes 4

#Simulation specific information
temp 5
record 1 2 2
jumps 4000 1
sweep 2 0.02 0.005
"""


def main() -> None:
    deck = parse_semsim(DECK)
    print(
        f"parsed deck: {len(deck.junctions)} junctions, "
        f"{len(deck.sources)} sources, T = {deck.temperature} K, "
        f"sweep node {deck.sweep.node} +-{deck.sweep.maximum * 1e3:.0f} mV"
    )

    curve = deck.run(solver="adaptive", seed=2)
    # the sweep drives node 2 to v and (symm) node 1 to -v, so the
    # drain-source voltage of the device is Vds = V1 - V2 = -2 v
    print("\n   V_node2 (mV)    Vds (mV)     I (nA)")
    for v, i in zip(curve.voltages, curve.currents):
        print(f"   {v * 1e3:+8.1f}    {-2 * v * 1e3:+8.1f}   {i * 1e9:+8.3f}")

    print("\nround-trip of the deck through the writer:")
    print(write_semsim(deck))


if __name__ == "__main__":
    main()
