"""Cotunneling: transport deep inside the Coulomb blockade.

A two-junction array in blockade carries essentially no sequential
current; second-order inelastic cotunneling provides the famous
``I proportional to V^3`` channel instead (Sec. II / IV-A of the
paper).  This example compares Monte Carlo with and without the
cotunneling model and against the analytic zero-temperature law.

Run:  python examples/cotunneling_blockade.py
"""

import numpy as np

from repro import MonteCarloEngine, SimulationConfig, build_junction_array
from repro.master import MasterEquationSolver


def main() -> None:
    # stay well below the ~40 mV threshold: the V^3 law assumes the
    # virtual-state energies are bias-independent, which fails as the
    # blockade edge is approached
    biases = [0.006, 0.008, 0.010, 0.014]
    print("two-junction array, T = 0.5 K, blockade threshold ~ 40 mV\n")
    print("   Vds (mV)   I_sequential (A)   I_with_cotunneling (A)   ratio")
    ratios = []
    for bias in biases:
        circuit = build_junction_array(
            2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
            bias=bias,
        )
        seq = MasterEquationSolver(circuit, temperature=0.5).steady_state()
        cot = MasterEquationSolver(
            circuit, temperature=0.5, include_cotunneling=True
        ).steady_state()
        i_seq = float(seq.junction_currents[0])
        i_cot = float(cot.junction_currents[0])
        ratios.append(i_cot)
        print(
            f"   {bias * 1e3:7.1f}   {i_seq:+.3e}          {i_cot:+.3e}"
            f"      {abs(i_cot) / max(abs(i_seq), 1e-30):10.1f}x"
        )

    # V^3 check on the cotunneling channel
    exponent = np.polyfit(np.log(biases), np.log(np.abs(ratios)), 1)[0]
    print(
        f"\nfitted power law: I ~ V^{exponent:.2f}   (ideal V^3; the "
        "shrinking virtual-state energies steepen it slightly)"
    )

    # the same physics through the Monte Carlo engine
    circuit = build_junction_array(
        2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
        bias=0.02,
    )
    engine = MonteCarloEngine(
        circuit,
        SimulationConfig(temperature=0.5, include_cotunneling=True,
                         solver="nonadaptive", seed=3),
    )
    mc = engine.measure_current([0], jumps=20000)
    print(f"MC with cotunneling at 20 mV: {mc:+.3e} A")


if __name__ == "__main__":
    main()
