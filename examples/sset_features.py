"""Superconducting SET: gap, JQP resonances and singularity matching.

Uses the Fig. 5 device (210 kOhm / 110 aF junctions, Cg = 14 aF,
Delta = 0.21 meV, Qb = 0.65 e, T = 0.52 K) and maps the sub-gap current
over a small (bias, gate) grid with the exact master-equation solver —
the fast path this package uses for the Fig. 5 reproduction.  Features
to look for in the printout:

* almost no current deep in the blockade;
* ridges where Cooper-pair tunneling is resonant (JQP);
* thermally activated quasi-particle background rising with bias
  (singularity matching lives on these sub-gap shoulders).

Run:  python examples/sset_features.py      (a couple of minutes)
"""

import numpy as np

from repro import Superconductor, build_set
from repro.constants import MEV
from repro.master import MasterEquationSolver


def sset(vg: float, vbias: float):
    return build_set(
        r1=2.1e5, r2=2.1e5, c1=1.1e-16, c2=1.1e-16, cg=1.4e-17,
        vs=+vbias / 2, vd=-vbias / 2, vg=vg,
        background_charge_e=0.65,
        superconductor=Superconductor(delta0=0.21 * MEV, tc=1.4),
    )


def main() -> None:
    biases = np.linspace(2e-4, 1.6e-3, 12)
    gates = np.linspace(0.0, 0.010, 9)

    print("SSET current map, log10(|I| / 1 A)  (T = 0.52 K)")
    print("gate \\ bias:" + "".join(f" {b*1e3:5.2f}" for b in biases) + "  [mV]")
    for vg in gates:
        row = []
        for vb in biases:
            solver = MasterEquationSolver(
                sset(vg, vb), temperature=0.52, include_cooper_pairs=True,
            )
            current = abs(float(solver.steady_state().junction_currents[0]))
            row.append(np.log10(max(current, 1e-16)))
        print(
            f"  {vg*1e3:5.2f} mV  "
            + "".join(f"{value:6.1f}" for value in row)
        )
    print("\nbrighter (less negative) cells along diagonal ridges are the")
    print("JQP/DJQP resonances; compare with the contour plot of Fig. 5.")


if __name__ == "__main__":
    main()
