"""SET logic: map a benchmark to nSET/pSET devices and time it.

Builds the paper's smallest benchmark (the 76-junction decoder), checks
its steady logic levels against the boolean model, and measures a
propagation delay with both the adaptive (SEMSIM) and conventional
solvers — a miniature of the Fig. 6/7 experiments.

Run:  python examples/logic_gate_delay.py     (about a minute)
"""

from repro.core import MonteCarloEngine, SimulationConfig
from repro.logic import (
    analyze_mapped,
    build_benchmark,
    find_validated_stimulus,
    measure_propagation_delay,
)


def main() -> None:
    mapped = build_benchmark("2-to-10 decoder")
    print(
        f"benchmark: {mapped.netlist.name} - {mapped.n_sets} SETs, "
        f"{mapped.n_junctions} junctions, {mapped.circuit.n_islands} islands"
    )

    report = analyze_mapped(mapped)
    print(
        f"static timing: critical path depth "
        f"{report.depth[report.critical_outputs[0]]} gates, "
        f"~{report.critical_path_delay * 1e9:.1f} ns estimated"
    )

    # probe_stability avoids heavy-tailed arcs (metastable charge traps
    # make some transitions bimodal between nanoseconds and microseconds)
    stimulus = find_validated_stimulus(mapped, rng_seed=1, probe_stability=True)
    net, rises = stimulus.toggled_outputs[0]
    print(f"stimulus toggles output {net!r} ({'rise' if rises else 'fall'})")

    # steady logic check at the 'before' vector
    config = SimulationConfig(temperature=mapped.params.temperature, seed=5)
    engine = MonteCarloEngine(
        mapped.circuit, config,
        initial_occupation=mapped.initial_occupation(stimulus.before),
    )
    engine.set_sources(mapped.input_voltages(stimulus.before))
    engine.run(max_jumps=15000)
    potentials = engine.solver.potentials()
    values = mapped.netlist.evaluate(stimulus.before)
    threshold = mapped.params.logic_threshold
    correct = sum(
        (potentials[mapped.island_of(n)] > threshold) == values[n]
        for n in mapped.netlist.outputs
    )
    print(f"steady outputs correct: {correct}/{len(mapped.netlist.outputs)}")

    for solver in ("nonadaptive", "adaptive"):
        cfg = SimulationConfig(
            temperature=mapped.params.temperature, solver=solver, seed=9
        )
        result = measure_propagation_delay(
            mapped, stimulus, cfg, settle_jumps=6000, max_jumps=400000,
        )
        stats = engine.solver.stats
        print(
            f"{solver:12s}: delay = {result.delay * 1e9:7.2f} ns "
            f"(events used: {result.events_used})"
        )


if __name__ == "__main__":
    main()
