"""Device research tour: box, trap, pump and shot noise.

The paper positions SEMSIM as a tool "for both device research and
large scale circuit design"; this example exercises the device-research
side on the canonical single-electronics experiments:

1. the Coulomb staircase of a single-electron box,
2. write/retention of a multi-junction electron trap (the memory
   element of refs [5, 6] in the paper),
3. quantised charge pumping (one electron per gate cycle),
4. shot-noise suppression (Fano factor 1/2) in a symmetric SET.

Run:  python examples/device_zoo.py        (about a minute)
"""

import numpy as np

from repro.analysis import fano_factor
from repro.circuit import (
    build_electron_pump,
    build_electron_trap,
    build_single_electron_box,
    build_set,
    pump_cycle_voltages,
)
from repro.constants import E_CHARGE
from repro.core import MonteCarloEngine, SimulationConfig
from repro.errors import SimulationError
from repro.master import MasterEquationSolver


def staircase() -> None:
    print("1) single-electron box: Coulomb staircase")
    box = build_single_electron_box()
    period = E_CHARGE / 2e-18
    for fraction in np.arange(0.0, 2.2, 0.25):
        circuit = box.with_source_voltages({"vg": fraction * period})
        result = MasterEquationSolver(circuit, temperature=0.5).steady_state()
        mean_n = sum(
            p * s[0] for s, p in zip(result.states, result.probabilities)
        )
        bar = "#" * int(round(4 * mean_n))
        print(f"   gate = {fraction:4.2f} e/Cg   <n> = {mean_n:4.2f}  {bar}")


def trap() -> None:
    print("\n2) electron trap: write, then hold")
    circuit = build_electron_trap()
    engine = MonteCarloEngine(
        circuit, SimulationConfig(temperature=1.0, solver="nonadaptive", seed=1)
    )
    island = circuit.island_index("trap")
    engine.set_sources({"vg": 3.0 * E_CHARGE / 20e-18})
    engine.run(max_jumps=800)
    written = int(engine.solver.occupation[island])
    print(f"   write pulse stored {written} electrons")
    engine.set_sources({"vg": 0.0})
    engine.solver.reset_window()
    for _ in range(400):
        try:
            engine.solver.step()
        except SimulationError:
            print("   retention: no escape channel at all (frozen)")
            return
        if int(engine.solver.occupation[island]) < written:
            break
    print(f"   first charge loss after {engine.solver.window_elapsed:.3e} "
          "simulated seconds (astronomically retained)")


def pump() -> None:
    print("\n3) electron pump: quantised current at zero bias")
    circuit = build_electron_pump()
    engine = MonteCarloEngine(
        circuit, SimulationConfig(temperature=0.3, solver="nonadaptive", seed=2)
    )
    cycle = pump_cycle_voltages()
    cycles = 10
    start = int(engine.solver.flux[2])
    for _ in range(cycles):
        for point in cycle:
            engine.set_sources(point)
            try:
                engine.run(max_jumps=80)
            except SimulationError:
                continue
    pumped = (int(engine.solver.flux[2]) - start) / cycles
    print(f"   pumped {pumped:+.2f} electrons per gate cycle (theory: +1)")


def noise() -> None:
    print("\n4) shot noise: Fano factor of a symmetric SET")
    circuit = build_set(vs=0.1, vd=-0.1)
    engine = MonteCarloEngine(
        circuit, SimulationConfig(temperature=1.0, solver="nonadaptive", seed=3)
    )
    stats = fano_factor(engine, 0, n_windows=100)
    print(
        f"   F = {stats.fano_factor:.2f} over {stats.n_windows} windows "
        "(double-junction partition noise suppresses F below 1; the "
        "symmetric limit is 1/2)"
    )


if __name__ == "__main__":
    staircase()
    trap()
    pump()
    noise()
