"""Quickstart: simulate a single-electron transistor.

Builds the paper's Fig. 1b SET (1 MOhm / 1 aF junctions, 3 aF gate),
runs the adaptive Monte Carlo engine, and shows the two signature
behaviours: Coulomb blockade at low bias and gate-controlled current.

Run:  python examples/quickstart.py
"""

from repro import MonteCarloEngine, SimulationConfig, build_set


def main() -> None:
    config = SimulationConfig(temperature=5.0, solver="adaptive", seed=0)

    print("SET at Vds = 40 mV (above the 32 mV blockade threshold):")
    circuit = build_set(vs=+0.02, vd=-0.02, vg=0.0)
    engine = MonteCarloEngine(circuit, config)
    current = engine.measure_current([0], jumps=20000)
    print(f"  I = {current * 1e9:.2f} nA")

    print("SET at Vds = 10 mV (deep inside the blockade):")
    circuit = build_set(vs=+0.005, vd=-0.005, vg=0.0)
    engine = MonteCarloEngine(circuit, config)
    current = engine.measure_current([0], jumps=5000)
    print(f"  I = {current * 1e12:.5f} pA   <- suppressed by Coulomb blockade")

    print("Same bias, but gate opened to Vg = 30 mV:")
    circuit = build_set(vs=+0.005, vd=-0.005, vg=0.03)
    engine = MonteCarloEngine(circuit, config)
    current = engine.measure_current([0], jumps=20000)
    print(f"  I = {current * 1e9:.3f} nA   <- the gate lifts the blockade")

    stats = engine.solver.stats
    print(
        f"\nadaptive solver work: {stats.sequential_rate_evaluations} rate "
        f"evaluations over {stats.events} tunnel events "
        f"({stats.sequential_rate_evaluations / stats.events:.1f} per event)"
    )


if __name__ == "__main__":
    main()
