"""Reproduce the shape of Fig. 1b: SET I-V curves versus gate voltage.

Sweeps the drain-source bias of the paper's SET at T = 5 K for the four
gate voltages of Fig. 1b and prints the curves as a table plus a crude
ASCII rendering of the blockade region shrinking with gate voltage.

Run:  python examples/set_iv_curves.py          (about a minute)
"""

import numpy as np

from repro import SimulationConfig, build_set, sweep_iv
from repro.analysis import format_table


def main() -> None:
    voltages = np.linspace(-0.04, 0.04, 17)
    config = SimulationConfig(temperature=5.0, solver="adaptive", seed=1)

    curves = {}
    for vg in (0.0, 0.01, 0.02, 0.03):
        circuit = build_set(vg=vg)
        curves[vg] = sweep_iv(
            circuit, voltages, config, jumps_per_point=4000,
            label=f"Vg = {vg * 1e3:.0f} mV",
        )

    rows = []
    for i, v in enumerate(voltages):
        rows.append(
            [f"{v * 1e3:+.0f} mV"]
            + [f"{curves[vg].currents[i] * 1e9:+.3f}" for vg in curves]
        )
    print(format_table(
        ["Vds", "I(nA) Vg=0", "Vg=10mV", "Vg=20mV", "Vg=30mV"], rows,
        title="SET I-V at T = 5 K (Fig. 1b)",
    ))

    print("\nblockade map (X = |I| > 0.1 nA):")
    for vg, curve in curves.items():
        marks = "".join(
            "X" if abs(i) > 1e-10 else "." for i in curve.currents
        )
        print(f"  Vg = {vg * 1e3:5.1f} mV  {marks}")


if __name__ == "__main__":
    main()
