"""Fig. 1c — superconducting SET I-V at T = 50 mK.

Paper: same SET as Fig. 1b with Delta(0) = 0.2 meV and Tc = 1.2 K.
Expected shape: the suppressed-current region is *enlarged* relative to
the normal SET because quasi-particle tunneling pays the gap 2 Delta on
top of the charging energy; above the widened threshold the I-V climbs
back to the same nano-ampere scale.
"""

import numpy as np
import pytest

from repro import SimulationConfig, Superconductor, build_set, sweep_iv
from repro.analysis import format_table
from repro.constants import MEV

from _harness import run_once

# 2.5 mV steps resolve the ~0.5-1 mV widening of the blockade edge
# caused by the 2 Delta quasi-particle cost
BIAS_POINTS = np.linspace(-0.04, 0.04, 33)
SC = Superconductor(delta0=0.2 * MEV, tc=1.2)


def simulate():
    normal = sweep_iv(
        build_set(),
        BIAS_POINTS,
        SimulationConfig(temperature=0.05, solver="adaptive", seed=11),
        jumps_per_point=3000,
    )
    curves = {}
    for vg in (0.0, 0.01, 0.02, 0.03):
        curves[vg] = sweep_iv(
            build_set(vg=vg, superconductor=SC),
            BIAS_POINTS,
            SimulationConfig(temperature=0.05, solver="adaptive", seed=12),
            jumps_per_point=3000,
        )
    return normal, curves


def test_fig1c_sset_iv(benchmark):
    normal, curves = run_once(benchmark, simulate)

    rows = [
        [f"{v * 1e3:+5.0f}", f"{normal.currents[i]:+.3e}"]
        + [f"{curves[vg].currents[i]:+.3e}" for vg in curves]
        for i, v in enumerate(BIAS_POINTS)
    ]
    print()
    print(format_table(
        ["Vds(mV)", "normal Vg=0"] + [f"SSET Vg={vg*1e3:.0f}mV" for vg in curves],
        rows,
        title="Fig. 1c: SSET current (A) at T = 50 mK vs the normal SET",
    ))

    sset0 = curves[0.0].currents

    # (1) the suppressed region is enlarged: count near-zero points
    def suppressed(currents):
        return int(np.sum(np.abs(currents) < 0.02 * np.max(np.abs(currents))))

    assert suppressed(sset0) > suppressed(normal.currents)

    # (2) full-bias current recovers the same scale as the normal SET
    assert abs(sset0[0]) == pytest.approx(abs(normal.currents[0]), rel=0.5)

    # (3) the gate still modulates the SSET blockade edge
    assert suppressed(curves[0.03].currents) < suppressed(sset0)
