"""Shared helpers for the figure-reproducing benches."""

from __future__ import annotations

import os


def full_scale() -> bool:
    """True when REPRO_BENCH_FULL=1 asks for the complete circuit set."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    The experiments are long-running simulations; statistical repetition
    is already built into them (seeds/cycles), so the benchmark fixture
    records a single round instead of re-running the physics.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
