"""Shared helpers for the figure-reproducing benches."""

from __future__ import annotations

import json
import os
from pathlib import Path


def full_scale() -> bool:
    """True when REPRO_BENCH_FULL=1 asks for the complete circuit set."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    The experiments are long-running simulations; statistical repetition
    is already built into them (seeds/cycles), so the benchmark fixture
    records a single round instead of re-running the physics.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


# ----------------------------------------------------------------------
# machine-readable perf trajectory (BENCH_telemetry.json)
# ----------------------------------------------------------------------

def telemetry_artifact_path() -> Path:
    """Where the benches persist their telemetry artifact.

    Defaults to ``benchmarks/BENCH_telemetry.json``; override with the
    ``REPRO_BENCH_TELEMETRY`` environment variable (CI points it at a
    build-artifact directory so the perf trajectory is comparable
    across PRs).
    """
    override = os.environ.get("REPRO_BENCH_TELEMETRY")
    if override:
        return Path(override)
    return Path(__file__).with_name("BENCH_telemetry.json")


def events_per_second(events, seconds) -> float:
    """Realised tunnel events per wall-clock second — the throughput
    figure ``repro report`` tracks across the run ledger and the bench
    artifacts alike.  Accepts a raw count or anything exposing an
    ``events`` attribute (e.g. ``SolverStats``)."""
    count = getattr(events, "events", events)
    seconds = float(seconds)
    return float(count) / seconds if seconds > 0.0 else 0.0


def _jsonify(value):
    """Coerce bench payloads (numpy scalars, float dict keys) to JSON."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def record_bench_telemetry(bench: str, payload: dict) -> Path:
    """Merge one bench's phase timings and counters into the artifact.

    Each figure bench calls this with its measured rows so every bench
    run leaves a machine-readable record (wall seconds per phase, rate
    evaluation counters, scale knobs) that later PRs can diff instead
    of eyeballing printed tables.
    """
    path = telemetry_artifact_path()
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[bench] = _jsonify(dict(payload, full_scale=full_scale()))
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    mirror_summaries()
    return path


# ----------------------------------------------------------------------
# parallel-scaling trajectory (BENCH_parallel.json)
# ----------------------------------------------------------------------

def parallel_artifact_path() -> Path:
    """Where the scaling bench appends its rows.

    Defaults to ``benchmarks/BENCH_parallel.json``; override with the
    ``REPRO_BENCH_PARALLEL`` environment variable.
    """
    override = os.environ.get("REPRO_BENCH_PARALLEL")
    if override:
        return Path(override)
    return Path(__file__).with_name("BENCH_parallel.json")


def record_parallel_bench(bench: str, rows: list[dict]) -> Path:
    """Append one scaling run's ``{jobs, seconds, speedup, ...}`` rows.

    Unlike :func:`record_bench_telemetry` this *appends* a dated run
    record instead of overwriting, so the artifact keeps the scaling
    trajectory across machines and PRs.
    """
    import time

    path = parallel_artifact_path()
    data: list = []
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = []
    if not isinstance(data, list):
        data = []
    data.append({
        "bench": bench,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpus": os.cpu_count(),
        "rows": _jsonify(rows),
    })
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    mirror_summaries()
    return path


# ----------------------------------------------------------------------
# repo-root summary mirror (BENCH_SUMMARY.json)
# ----------------------------------------------------------------------

def mirror_summaries() -> Path | None:
    """Mirror one-line summaries of the latest ``BENCH_*.json``
    artifacts to ``BENCH_SUMMARY.json`` at the repository root.

    The root mirror is the cheap thing to glance at (and for ``repro
    report`` to fold in) without opening the full per-bench artifacts.
    Returns ``None`` when the summariser is unavailable (benches run
    without the package on the path) — mirroring is best-effort.
    """
    try:
        from repro.monitor import summarize_bench_artifacts
    except ImportError:
        return None
    bench_dir = Path(__file__).parent
    summary = summarize_bench_artifacts(bench_dir)
    if not summary:
        return None
    target = bench_dir.parent / "BENCH_SUMMARY.json"
    target.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return target
