"""Fig. 6 — simulation time versus benchmark size.

Paper: 15 logic benchmarks from 76 to 6988 junctions, simulated with
the non-adaptive MC solver, SEMSIM (adaptive) and the analytical SPICE
model; times adjusted to a common circuit simulation time, the largest
runs extrapolated from shorter ones.  Expected shape:

* the adaptive method's advantage *grows* with junction count,
  exceeding an order of magnitude for the largest circuits (the paper
  reports >40x at 6988 junctions);
* the SPICE model is fast but fails on some benchmarks
  (non-convergence / incorrect logic output — three of fifteen in the
  paper).

We follow the paper's protocol: measure a bounded run, normalise to a
common simulated window via :class:`repro.analysis.TimedRun`.  The
quick mode uses a 100 ns window and caps measured events; set
``REPRO_BENCH_FULL=1`` for the paper's full list at larger budgets.
"""

import numpy as np

from repro.analysis import format_table, measure_engine_run, time_call
from repro.core import MonteCarloEngine, SimulationConfig
from repro.errors import ConvergenceError, SemsimError
from repro.logic import BENCHMARKS, build_benchmark, find_step_stimulus
from repro.spice import SpiceSimulator

from _harness import (
    events_per_second, full_scale, record_bench_telemetry, run_once,
)

#: simulated window all timings are normalised to (the paper used 10 us)
WINDOW = 1e-5 if full_scale() else 1e-7


def _bench_names():
    if full_scale():
        return [spec.name for spec in BENCHMARKS]
    return [spec.name for spec in BENCHMARKS]  # all 15; budgets scale below


def _mc_seconds(
    mapped, solver: str, events: int
) -> tuple[float, float, float]:
    """(projected wall seconds, rate evaluations per event, realised
    events per wall second)."""
    config = SimulationConfig(
        temperature=mapped.params.temperature, solver=solver, seed=33
    )
    stim = find_step_stimulus(mapped.netlist, 0)
    engine = MonteCarloEngine(
        mapped.circuit, config,
        initial_occupation=mapped.initial_occupation(stim.before),
    )
    engine.set_sources(mapped.input_voltages(stim.before))
    engine.run(max_jumps=200)  # relax before timing
    evals_before = engine.solver.stats.sequential_rate_evaluations
    timed = measure_engine_run(engine, events)
    evals = engine.solver.stats.sequential_rate_evaluations - evals_before
    rate = events_per_second(timed.events, timed.wall_seconds)
    return timed.extrapolate_to_time(WINDOW), evals / events, rate


def _spice_seconds(mapped) -> float:
    sim = SpiceSimulator(mapped)
    stim = find_step_stimulus(mapped.netlist, 0)
    steps = 40 if full_scale() else 15
    wall, _ = time_call(sim.transient, [(stim.before, steps * sim.dt)])
    return wall * WINDOW / (steps * sim.dt)


def run_measurements():
    rows = []
    for name in _bench_names():
        mapped = build_benchmark(name)
        junctions = mapped.n_junctions
        if full_scale():
            events = 4000 if junctions <= 1500 else 1500
        else:
            events = 1200 if junctions <= 1500 else 400
        entry = {"name": name, "junctions": junctions}
        (
            entry["nonadaptive"],
            entry["nonadaptive_evals"],
            entry["nonadaptive_events_per_second"],
        ) = _mc_seconds(mapped, "nonadaptive", events)
        (
            entry["semsim"],
            entry["semsim_evals"],
            entry["semsim_events_per_second"],
        ) = _mc_seconds(mapped, "adaptive", events)
        try:
            entry["spice"] = _spice_seconds(mapped)
            entry["spice_status"] = "ok"
        except (ConvergenceError, SemsimError) as exc:
            entry["spice"] = float("nan")
            entry["spice_status"] = type(exc).__name__
        rows.append(entry)
    return rows


def test_fig6_performance(benchmark):
    rows = run_once(benchmark, run_measurements)
    record_bench_telemetry("fig6_performance", {
        "window_seconds": WINDOW,
        "rows": rows,
    })

    table = []
    for entry in rows:
        speedup = entry["nonadaptive"] / entry["semsim"]
        work_ratio = entry["nonadaptive_evals"] / entry["semsim_evals"]
        table.append([
            entry["name"], entry["junctions"],
            f"{entry['nonadaptive']:.3g}", f"{entry['semsim']:.3g}",
            "fail" if np.isnan(entry["spice"]) else f"{entry['spice']:.3g}",
            f"{speedup:.1f}x", f"{work_ratio:.0f}x",
        ])
    print()
    print(format_table(
        ["benchmark", "junctions", "non-adaptive(s)", "SEMSIM(s)",
         "SPICE(s)", "speedup", "work ratio"],
        table,
        title=(
            f"Fig. 6: projected wall time for {WINDOW * 1e9:.0f} ns of "
            "simulated circuit time (work ratio = tunnel-rate "
            "calculations, the paper's own explanation of its >40x)"
        ),
    ))

    junctions = np.array([e["junctions"] for e in rows], dtype=float)
    speedups = np.array([e["nonadaptive"] / e["semsim"] for e in rows])
    work_ratios = np.array(
        [e["nonadaptive_evals"] / e["semsim_evals"] for e in rows]
    )

    # (1) the adaptive advantage grows with circuit size: compare the
    # mean speedup of the three largest against the three smallest
    small = speedups[np.argsort(junctions)[:3]].mean()
    large = speedups[np.argsort(junctions)[-3:]].mean()
    print(f"\nmean speedup, 3 smallest: {small:.2f}x; 3 largest: {large:.2f}x")
    assert large > small

    # (2) the paper's >40x claim is about the reduction in tunnel-rate
    # calculations ("the ratio of the total number of tunnel rate and
    # node potential calculations ... decreases as the number of
    # junctions increases"): the work ratio exceeds 40x well before the
    # largest benchmark, and the wall clock follows it against our
    # vectorised-numpy baseline with a smaller constant
    biggest = int(np.argmax(junctions))
    print(f"work ratio at {rows[biggest]['name']}: {work_ratios[biggest]:.0f}x; "
          f"wall speedup: {speedups[biggest]:.1f}x")
    assert work_ratios[biggest] > 40.0
    assert speedups[biggest] > (6.0 if full_scale() else 2.5)

    # (3) the trend is broadly monotone: rank correlation between size
    # and speedup is strongly positive
    order = np.argsort(junctions)
    from scipy import stats

    rho, _ = stats.spearmanr(np.arange(len(order)), speedups[order])
    rho_work, _ = stats.spearmanr(np.arange(len(order)), work_ratios[order])
    print(f"Spearman rho(size, wall speedup) = {rho:.2f}; "
          f"rho(size, work ratio) = {rho_work:.2f}")
    assert rho > 0.5
    assert rho_work > 0.8
