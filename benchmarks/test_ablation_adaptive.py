"""Ablation — the adaptive threshold lambda and the refresh period.

DESIGN.md calls out two design choices in Algorithm 1: the testing
threshold ``lambda`` (accuracy/speed trade-off) and the periodic full
refresh that bounds the accumulated error.  This bench quantifies both
on a mid-size benchmark:

* work per event falls as lambda grows (fewer junctions flagged);
* the dynamics bias (measured as the deviation of simulated time per
  event from the exact lambda = 0 run) grows with lambda;
* disabling refreshes entirely amplifies that bias, frequent refreshes
  push work back toward the non-adaptive cost.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import MonteCarloEngine, SimulationConfig
from repro.logic import build_benchmark, find_step_stimulus

from _harness import record_bench_telemetry, run_once

LAMBDAS = (0.0, 0.02, 0.05, 0.2, 0.5)
REFRESH_INTERVALS = (100, 1000, 100_000)
EVENTS = 4000


def _run(mapped, stim, lam, refresh):
    config = SimulationConfig(
        temperature=mapped.params.temperature, solver="adaptive",
        adaptive_threshold=lam, full_refresh_interval=refresh, seed=17,
    )
    engine = MonteCarloEngine(
        mapped.circuit, config,
        initial_occupation=mapped.initial_occupation(stim.before),
    )
    engine.set_sources(mapped.input_voltages(stim.before))
    result = engine.run(max_jumps=EVENTS)
    stats = engine.solver.stats
    return {
        "time_per_event": engine.solver.time / stats.events,
        "evals_per_event": stats.sequential_rate_evaluations / stats.events,
        "refreshes": stats.full_refreshes,
    }


def _run_cap(mapped, stim, cap):
    config = SimulationConfig(
        temperature=mapped.params.temperature, solver="adaptive",
        adaptive_threshold=0.05, adaptive_thermal_cap=cap, seed=17,
    )
    engine = MonteCarloEngine(
        mapped.circuit, config,
        initial_occupation=mapped.initial_occupation(stim.before),
    )
    engine.set_sources(mapped.input_voltages(stim.before))
    engine.run(max_jumps=EVENTS)
    stats = engine.solver.stats
    return {
        "time_per_event": engine.solver.time / stats.events,
        "evals_per_event": stats.sequential_rate_evaluations / stats.events,
    }


def sweep():
    mapped = build_benchmark("74LS138")
    stim = find_step_stimulus(mapped.netlist, 0)
    lam_rows = {lam: _run(mapped, stim, lam, 1000) for lam in LAMBDAS}
    refresh_rows = {r: _run(mapped, stim, 0.05, r) for r in REFRESH_INTERVALS}
    cap_rows = {cap: _run_cap(mapped, stim, cap) for cap in (1.0, 4.0, 1e308)}
    return lam_rows, refresh_rows, cap_rows


def test_ablation_adaptive(benchmark):
    lam_rows, refresh_rows, cap_rows = run_once(benchmark, sweep)
    record_bench_telemetry("ablation_adaptive", {
        "events": EVENTS,
        "lambda": lam_rows,
        "refresh_interval": refresh_rows,
        "thermal_cap": cap_rows,
    })
    exact = lam_rows[0.0]["time_per_event"]

    table = [
        [
            lam,
            f"{row['evals_per_event']:.1f}",
            f"{100 * abs(row['time_per_event'] - exact) / exact:.1f}%",
        ]
        for lam, row in lam_rows.items()
    ]
    print()
    print(format_table(
        ["lambda", "rate evals/event", "clock deviation vs exact"],
        table, title="Ablation: adaptive threshold (74LS138, 4000 events)",
    ))
    print(format_table(
        ["refresh interval", "rate evals/event", "full refreshes"],
        [
            [interval, f"{row['evals_per_event']:.1f}", row["refreshes"]]
            for interval, row in refresh_rows.items()
        ],
        title="Ablation: periodic full refresh (lambda = 0.05)",
    ))

    print(format_table(
        ["thermal cap (kT)", "rate evals/event"],
        [
            ["inf" if cap > 1e300 else cap, f"{row['evals_per_event']:.1f}"]
            for cap, row in cap_rows.items()
        ],
        title="Ablation: thermal threshold cap (lambda = 0.05)",
    ))

    evals = [lam_rows[lam]["evals_per_event"] for lam in LAMBDAS]
    # (1) work decreases monotonically with lambda
    assert all(b <= a * 1.05 for a, b in zip(evals, evals[1:]))
    # (2) lambda = 0 floods the connected neighbourhood of every event:
    # orders of magnitude more work than the tuned threshold, within
    # reach of the non-adaptive cost (2 x 168 evals/event); the flood
    # stops only where perturbations are exactly zero
    assert evals[0] > 100.0
    # (3) the default lambda cuts the flooded (lambda = 0) work several
    # fold on this benchmark (the flood itself already stops at pinned
    # inputs, so it is smaller than the full non-adaptive cost)
    assert evals[0] / lam_rows[0.05]["evals_per_event"] > 4.0
    # (4) refreshing every 100 events costs visibly more work than
    # refreshing every 100k events
    assert (
        refresh_rows[100]["evals_per_event"]
        > refresh_rows[100_000]["evals_per_event"]
    )
