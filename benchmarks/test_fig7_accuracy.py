"""Fig. 7 — propagation-delay accuracy of SEMSIM versus the
non-adaptive reference.

Paper: the averaged non-adaptive MC delay is taken as truth; SEMSIM is
run nine times with different seeds (average error 3.30%), the SPICE
model once (average error 9.18%, with three benchmarks failing on
non-convergence or incorrect logic outputs).  Expected shape: SEMSIM's
delays agree with the reference within the trajectory noise on every
benchmark; the SPICE model is worse where it works and fails outright
on some circuits.

Single-electron switching is heavy-tailed (metastable charge traps),
so the comparison uses medians over seeds x cycles; our absolute
percentage errors are larger than the paper's 3.3% because the same
sample budget meets a noisier logic substrate — EXPERIMENTS.md
discusses the difference.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import SimulationConfig
from repro.errors import SemsimError
from repro.logic import build_benchmark, find_validated_stimulus, measure_cyclic_delay
from repro.spice import SpiceSimulator

from _harness import full_scale, run_once

QUICK_SET = ["2-to-10 decoder", "Full-Adder", "74LS138", "74154"]
FULL_SET = QUICK_SET + ["s27a", "74148", "74LS47", "74LS280"]

SEEDS = (1, 2, 3)
CYCLES = 3


def _median_delay(mapped, stimulus, solver: str) -> float:
    samples = []
    for seed in SEEDS:
        config = SimulationConfig(
            temperature=mapped.params.temperature, solver=solver, seed=seed
        )
        samples += measure_cyclic_delay(
            mapped, stimulus, config, cycles=CYCLES, max_jumps=250_000
        )
    return float(np.median(samples))


def run_measurements():
    rows = []
    for name in (FULL_SET if full_scale() else QUICK_SET):
        mapped = build_benchmark(name)
        stimulus = find_validated_stimulus(
            mapped, rng_seed=1, probe_stability=True
        )
        reference = _median_delay(mapped, stimulus, "nonadaptive")
        semsim = _median_delay(mapped, stimulus, "adaptive")
        try:
            sim = SpiceSimulator(mapped)
            spice = sim.propagation_delay(stimulus, settle=2e-9, budget=40e-9)
            spice_status = "ok"
        except SemsimError as exc:
            spice = float("nan")
            spice_status = type(exc).__name__
        rows.append({
            "name": name,
            "junctions": mapped.n_junctions,
            "reference": reference,
            "semsim": semsim,
            "spice": spice,
            "spice_status": spice_status,
        })
    return rows


def test_fig7_accuracy(benchmark):
    rows = run_once(benchmark, run_measurements)

    table = []
    errors = []
    for entry in rows:
        error = 100.0 * abs(entry["semsim"] - entry["reference"]) / entry["reference"]
        errors.append(error)
        spice_cell = (
            f"{entry['spice'] * 1e9:.2f}" if not np.isnan(entry["spice"])
            else entry["spice_status"]
        )
        table.append([
            entry["name"], entry["junctions"],
            f"{entry['reference'] * 1e9:.2f}",
            f"{entry['semsim'] * 1e9:.2f}",
            f"{error:.1f}%",
            spice_cell,
        ])
    print()
    print(format_table(
        ["benchmark", "junctions", "ref delay(ns)", "SEMSIM(ns)",
         "SEMSIM err", "SPICE(ns)"],
        table,
        title=(
            "Fig. 7: propagation delay, median over "
            f"{len(SEEDS)} seeds x {CYCLES} cycles"
        ),
    ))
    mean_error = float(np.mean(errors))
    print(f"\nSEMSIM mean delay error: {mean_error:.1f}% "
          "(paper: 3.30% with its tighter substrate)")

    # (1) SEMSIM tracks the reference within the trajectory noise
    assert mean_error < 45.0
    assert max(errors) < 80.0

    # (2) the SPICE model is the least reliable method: at least one
    # benchmark fails outright (the paper lost three of fifteen) or
    # shows a large deviation
    spice_failures = [e for e in rows if np.isnan(e["spice"])]
    spice_errors = [
        100.0 * abs(e["spice"] - e["reference"]) / e["reference"]
        for e in rows if not np.isnan(e["spice"])
    ]
    assert spice_failures or (spice_errors and max(spice_errors) > mean_error)
