"""Pytest configuration for the benches.

Every bench prints the rows of the paper artefact it regenerates
(run ``pytest benchmarks/ --benchmark-only -s`` to see them) and makes
shape assertions — who wins, which regions are suppressed, how trends
move — rather than matching absolute numbers from the authors' 2008
testbed.

Set ``REPRO_BENCH_FULL=1`` to run every benchmark circuit including the
multi-thousand-junction ISCAS classes; the default keeps the suite in
laptop territory, exactly the way the paper extrapolated its largest
runs from shorter ones.
"""
