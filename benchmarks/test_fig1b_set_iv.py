"""Fig. 1b — SET I-V characteristics versus gate voltage.

Paper: T = 5 K, R1 = R2 = 1 MOhm, C1 = C2 = 1 aF, Cg = 3 aF, symmetric
bias swept over +-40 mV for Vg in {0, 10, 20, 30} mV.  Expected shape:
current suppressed near Vds = 0 (Coulomb blockade up to e/C = 32 mV at
Vg = 0), the suppressed window shrinking as the gate approaches the
charge degeneracy, with currents on the 1e-8 A scale at full bias.
"""

import numpy as np

from repro import SimulationConfig, build_set, sweep_iv
from repro.analysis import format_table
from repro.physics import threshold_voltage

from _harness import run_once

GATE_VOLTAGES = (0.0, 0.01, 0.02, 0.03)
BIAS_POINTS = np.linspace(-0.04, 0.04, 17)


def simulate_curves():
    config = SimulationConfig(temperature=5.0, solver="adaptive", seed=10)
    return {
        vg: sweep_iv(build_set(vg=vg), BIAS_POINTS, config, jumps_per_point=4000)
        for vg in GATE_VOLTAGES
    }


def test_fig1b_set_iv(benchmark):
    curves = run_once(benchmark, simulate_curves)

    rows = [
        [f"{v * 1e3:+5.0f}"] + [f"{curves[vg].currents[i]:+.3e}" for vg in GATE_VOLTAGES]
        for i, v in enumerate(BIAS_POINTS)
    ]
    print()
    print(format_table(
        ["Vds(mV)"] + [f"Vg={vg*1e3:.0f}mV" for vg in GATE_VOLTAGES], rows,
        title="Fig. 1b: SET current (A) at T = 5 K",
    ))

    vg0 = curves[0.0].currents
    vg30 = curves[0.03].currents
    centre = len(BIAS_POINTS) // 2

    # (1) Coulomb blockade at Vg = 0: inner +-10 mV carries essentially
    # nothing compared with the +-40 mV endpoints
    inner = np.abs(vg0[centre - 2:centre + 3])
    assert np.max(inner) < 1e-3 * abs(vg0[0])

    # (2) the paper's threshold: blockade ends near e/C_sigma = 32 mV
    conducting = np.abs(vg0) > 0.05 * abs(vg0[0])
    onset = np.min(np.abs(BIAS_POINTS[conducting]))
    assert abs(onset - threshold_voltage(5e-18)) < 0.006

    # (3) the gate lifts the blockade: at Vds = 10 mV, Vg = 30 mV flows
    # where Vg = 0 does not
    probe = centre + 2  # +10 mV
    assert abs(vg30[probe]) > 1e3 * max(abs(vg0[probe]), 1e-16)

    # (4) currents reach the paper's 1e-8 A scale at full bias
    assert 2e-9 < abs(vg0[0]) < 2e-8

    # (5) antisymmetry of the I-V
    np.testing.assert_allclose(vg0[0], -vg0[-1], rtol=0.25)
