"""Fig. 5 — SSET current map over (bias, gate) with JQP and
singularity-matching features.

Paper setup (from [17]): T = 0.52 K, R1 = R2 = 210 kOhm,
C1 = C2 = 110 aF, Cg = 14 aF, Delta(0.52 K) = 0.21 meV, Qb = 0.65 e;
current mapped while bias and gate sweep.  Expected shape: currents
spanning many decades (the paper's colour scale runs 1e-14..1e-9 A),
gate-dependent resonant ridges from Cooper-pair (JQP) cycles below the
quasi-particle threshold, and a finite-temperature quasi-particle
background (the singularity-matching shoulder).

The map itself is produced with the exact master-equation solver (fast
and noise-free); the Monte Carlo engine is spot-checked against it at
selected pixels, tying the figure back to the paper's MC methodology.
"""

import numpy as np
import pytest

from repro import MonteCarloEngine, SimulationConfig, Superconductor, build_set
from repro.constants import MEV
from repro.master import MasterEquationSolver

from _harness import full_scale, run_once

TEMPERATURE = 0.52
SC = Superconductor(delta0=0.21 * MEV, tc=1.4)


def device(vg: float, vbias: float):
    return build_set(
        r1=2.1e5, r2=2.1e5, c1=1.1e-16, c2=1.1e-16, cg=1.4e-17,
        vs=+vbias / 2, vd=-vbias / 2, vg=vg,
        background_charge_e=0.65, superconductor=SC,
    )


def me_current(vg, vb, cooper_pairs=True):
    solver = MasterEquationSolver(
        device(vg, vb), temperature=TEMPERATURE,
        include_cooper_pairs=cooper_pairs,
    )
    return float(solver.steady_state().junction_currents[0])


def compute_map():
    n_bias, n_gate = (16, 12) if full_scale() else (10, 8)
    biases = np.linspace(2e-4, 1.8e-3, n_bias)
    gates = np.linspace(0.0, 0.010, n_gate)
    currents = np.empty((len(gates), len(biases)))
    qp_only = np.empty_like(currents)
    for gi, vg in enumerate(gates):
        for bi, vb in enumerate(biases):
            currents[gi, bi] = me_current(vg, vb, cooper_pairs=True)
            qp_only[gi, bi] = me_current(vg, vb, cooper_pairs=False)
    return biases, gates, currents, qp_only


def test_fig5_sset_map(benchmark):
    biases, gates, currents, qp_only = run_once(benchmark, compute_map)

    print("\nFig. 5: log10 |I| (A) over (gate rows, bias columns)")
    header = "Vg\\Vb[mV] " + "".join(f"{b*1e3:6.2f}" for b in biases)
    print(header)
    for gi, vg in enumerate(gates):
        line = "".join(
            f"{np.log10(max(abs(i), 1e-16)):6.1f}" for i in currents[gi]
        )
        print(f"{vg*1e3:8.2f}  {line}")

    magnitudes = np.abs(currents)

    # (1) the map spans several decades, as the paper's colour scale does
    assert np.max(magnitudes) / max(np.min(magnitudes), 1e-16) > 1e3
    assert np.max(magnitudes) > 1e-11

    # (2) JQP physics: below the quasi-particle threshold the 2e channel
    # carries far more current than quasi-particles alone somewhere
    subgap = biases < 1.2e-3
    enhancement = np.abs(currents[:, subgap]) / np.maximum(
        np.abs(qp_only[:, subgap]), 1e-18
    )
    # the quick grid samples the Lorentzian ridges coarsely; nearly an
    # order of magnitude at the best-sampled pixel is the JQP signature
    assert np.max(enhancement) > (10.0 if full_scale() else 5.0)

    # (3) the resonances are gate-dependent: the bias of the sub-gap
    # maximum moves with gate voltage (diagonal ridges in Fig. 5)
    peak_bias = [
        biases[subgap][int(np.argmax(np.abs(row[subgap])))] for row in currents
    ]
    assert len(set(np.round(np.array(peak_bias) * 1e6))) > 1

    # (4) finite-temperature quasi-particle background: even without
    # Cooper pairs the sub-gap current is not identically zero
    # (thermally excited quasi-particles - singularity matching lives
    # on this shoulder)
    assert np.max(np.abs(qp_only[:, subgap])) > 1e-16


def test_fig5_feature_lines(benchmark):
    """The paper overlays Fig. 5 with theoretical feature positions
    (threshold, JQP, singularity matching); our analytic module must
    put the simulated sub-gap ridges on the predicted JQP lines."""
    from repro.analysis import (
        blockade_threshold_bias,
        jqp_resonance_biases,
        singularity_matching_biases,
    )
    from repro.circuit import Electrostatics
    from repro.core import symmetric_bias

    def compute():
        rows = []
        for vg in (0.002, 0.005, 0.008):
            circuit = device(vg, 0.0)
            stat = Electrostatics(circuit)
            jqp = jqp_resonance_biases(
                circuit, stat, symmetric_bias(), max_bias=1.3e-3
            )
            matching = singularity_matching_biases(
                circuit, stat, symmetric_bias(), max_bias=1.3e-3
            )
            gap = 0.21 * MEV
            qp_threshold = blockade_threshold_bias(
                circuit, stat, symmetric_bias(), gap_cost=2 * gap
            )
            # locate the strongest ridge strictly inside the gap (the
            # region Fig. 5's sub-gap features live in)
            biases = np.linspace(1e-4, min(1.2e-3, 0.95 * qp_threshold), 45)
            currents = [abs(me_current(vg, vb)) for vb in biases]
            ridge = biases[int(np.argmax(currents))]
            rows.append((vg, ridge, jqp, matching, qp_threshold))
        return rows

    rows = run_once(benchmark, compute)
    print()
    for vg, ridge, jqp, matching, qp_threshold in rows:
        features = [("JQP", b) for b in jqp]
        features += [("singularity-matching", b) for b in matching]
        family, nearest = min(features, key=lambda fb: abs(fb[1] - ridge))
        print(
            f"  Vg={vg*1e3:4.1f}mV: ridge at {ridge*1e3:6.3f} mV -> "
            f"{family} line at {nearest*1e3:6.3f} mV "
            f"(qp threshold {qp_threshold*1e3:6.3f} mV)"
        )
        # every simulated sub-gap ridge lies on a predicted feature
        # line, inside the quasi-particle gap — the paper's Fig. 5
        # overlay in numbers
        assert ridge < qp_threshold
        assert abs(nearest - ridge) < 8e-5  # within ~3 scan pixels


def test_fig5_mc_spot_checks(benchmark):
    """Monte Carlo agrees with the master equation at map pixels."""

    def spot():
        results = []
        for vg, vb in ((0.002, 1.5e-3), (0.006, 1.6e-3)):
            reference = me_current(vg, vb)
            engine = MonteCarloEngine(
                device(vg, vb),
                SimulationConfig(temperature=TEMPERATURE, solver="nonadaptive",
                                 seed=21),
            )
            mc = engine.measure_current([0], jumps=20000)
            results.append((vg, vb, reference, mc))
        return results

    results = run_once(benchmark, spot)
    print()
    for vg, vb, reference, mc in results:
        print(
            f"  Vg={vg*1e3:.1f}mV Vb={vb*1e3:.2f}mV: ME={reference:+.3e} "
            f"MC={mc:+.3e}"
        )
        assert mc == pytest.approx(reference, rel=0.25)
