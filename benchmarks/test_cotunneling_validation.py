"""Sec. IV-A — cotunneling validation against analytic theory.

The paper validates its cotunneling model against analytic
approximations and SIMON example results.  We regenerate the
closed-form comparison: deep in the blockade of a two-junction array
the current must follow the Averin-Nazarov law with the circuit's own
virtual-state energies, including the characteristic cubic voltage
dependence (softened at finite temperature by the (2 pi k T)^2 term).
"""

import numpy as np

from repro.analysis import format_table
from repro.circuit import Electrostatics, build_junction_array
from repro.constants import E_CHARGE
from repro.master import MasterEquationSolver
from repro.physics import cotunneling_current_t0

from _harness import run_once

BIASES = np.array([0.004, 0.006, 0.008, 0.012, 0.016])


def _virtual_energies(bias: float):
    """Hop-on / hop-off costs along the *conducting* direction.

    At positive bias electrons flow from the negative lead through the
    island to the positive lead; the virtual-state costs entering the
    Averin-Nazarov formula belong to that direction (they shrink with
    bias, which is what bends the I-V above the pure cubic).
    """
    circuit = build_junction_array(
        2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
        bias=bias,
    )
    stat = Electrostatics(circuit)
    vext = circuit.external_voltages()
    occ = np.zeros(circuit.n_islands, dtype=np.int64)
    v = stat.potentials(occ, vext)
    j_left, j_right = circuit.resolved_junctions()
    # electron enters from the right lead (negative) and exits left
    e_on = stat.free_energy_change(j_right.ref_b, j_right.ref_a, v, vext)
    e_off = stat.free_energy_change(j_left.ref_b, j_left.ref_a, v, vext)
    return e_on, e_off


def simulate():
    rows = []
    for bias in BIASES:
        circuit = build_junction_array(
            2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
            bias=bias,
        )
        me = MasterEquationSolver(
            circuit, temperature=0.3, include_cotunneling=True
        ).steady_state()
        e1, e2 = _virtual_energies(bias)
        analytic = cotunneling_current_t0(bias, e1, e2, 1e6, 1e6)
        rows.append((bias, float(me.junction_currents[0]), analytic))
    return rows


def test_cotunneling_validation(benchmark):
    rows = run_once(benchmark, simulate)

    print()
    print(format_table(
        ["Vds(mV)", "simulated I(A)", "analytic I(A)", "ratio"],
        [
            [f"{b * 1e3:.1f}", f"{sim:+.3e}", f"{ana:+.3e}",
             f"{sim / ana:.2f}"]
            for b, sim, ana in rows
        ],
        title="Cotunneling in blockade vs the Averin-Nazarov law (T = 0.3 K)",
    ))

    simulated = np.array([r[1] for r in rows])
    analytic = np.array([r[2] for r in rows])

    # (1) quantitative agreement with the analytic approximation
    ratios = simulated / analytic
    assert np.all(ratios > 0.5) and np.all(ratios < 2.0)

    # (2) near-cubic voltage dependence
    exponent = np.polyfit(np.log(BIASES), np.log(simulated), 1)[0]
    print(f"\nfitted exponent: {exponent:.2f} (theory: 3)")
    assert 2.5 < exponent < 4.0

    # (3) far below what sequential transport could carry: compare with
    # the sequential-only channel
    circuit = build_junction_array(
        2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
        bias=float(BIASES[-1]),
    )
    seq = MasterEquationSolver(circuit, temperature=0.3).steady_state()
    assert abs(simulated[-1]) > 100 * abs(float(seq.junction_currents[0]))
