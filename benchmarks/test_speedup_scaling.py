"""The >40x claim — how the adaptive advantage scales with size.

The paper attributes the speedup growth to "the ratio of the total
number of tunnel rate and node potential calculations solved for the
adaptive approach over ... the non-adaptive approach decreas[ing] as
the number of junctions increases".  This bench measures exactly that
ratio on a controlled family of circuits (parallel inverter chains, so
activity per event is constant while size grows) plus the resulting
wall-clock ratio.
"""

import numpy as np

from repro.analysis import format_table, measure_engine_run
from repro.core import MonteCarloEngine, SimulationConfig
from repro.logic import Gate, GateKind, LogicNetlist, map_to_circuit

from _harness import full_scale, record_bench_telemetry, run_once

CHAIN_COUNTS = (2, 8, 24, 64) if not full_scale() else (2, 8, 24, 64, 160)
CHAIN_LENGTH = 5  # gates per chain


def _chains_netlist(n_chains: int) -> LogicNetlist:
    gates = []
    outputs = []
    for c in range(n_chains):
        previous = f"in{c}"
        for i in range(CHAIN_LENGTH):
            net = f"c{c}n{i}"
            gates.append(Gate(f"c{c}g{i}", GateKind.INV, (previous,), net))
            previous = net
        outputs.append(previous)
    return LogicNetlist(
        f"chains{n_chains}", [f"in{c}" for c in range(n_chains)], outputs, gates
    )


def measure(n_chains: int):
    mapped = map_to_circuit(_chains_netlist(n_chains))
    vector = {n: False for n in mapped.netlist.inputs}
    events = 1500
    out = {"junctions": mapped.n_junctions}
    for solver in ("nonadaptive", "adaptive"):
        engine = MonteCarloEngine(
            mapped.circuit,
            SimulationConfig(temperature=mapped.params.temperature,
                             solver=solver, seed=3),
            initial_occupation=mapped.initial_occupation(vector),
        )
        engine.set_sources(mapped.input_voltages(vector))
        engine.run(max_jumps=200)
        start_evals = engine.solver.stats.sequential_rate_evaluations
        timed = measure_engine_run(engine, events)
        evals = engine.solver.stats.sequential_rate_evaluations - start_evals
        out[solver] = {
            "wall": timed.wall_seconds,
            "evals_per_event": evals / events,
        }
    return out


def test_speedup_scaling(benchmark):
    results = run_once(benchmark, lambda: [measure(n) for n in CHAIN_COUNTS])
    record_bench_telemetry("speedup_scaling", {
        "chain_counts": list(CHAIN_COUNTS),
        "chain_length": CHAIN_LENGTH,
        "rows": results,
    })

    rows = []
    eval_ratios = []
    wall_ratios = []
    for res in results:
        ratio = (
            res["nonadaptive"]["evals_per_event"]
            / res["adaptive"]["evals_per_event"]
        )
        wall_ratio = res["nonadaptive"]["wall"] / res["adaptive"]["wall"]
        eval_ratios.append(ratio)
        wall_ratios.append(wall_ratio)
        rows.append([
            res["junctions"],
            f"{res['nonadaptive']['evals_per_event']:.0f}",
            f"{res['adaptive']['evals_per_event']:.1f}",
            f"{ratio:.0f}x",
            f"{wall_ratio:.2f}x",
        ])
    print()
    print(format_table(
        ["junctions", "rate evals/event (non-ad.)", "(adaptive)",
         "work ratio", "wall ratio"],
        rows,
        title="Adaptive work reduction vs circuit size",
    ))

    # (1) the work ratio grows monotonically with circuit size
    assert all(b > a for a, b in zip(eval_ratios, eval_ratios[1:]))

    # (2) adaptive work per event is roughly size-independent (local
    # updates), while the non-adaptive work is proportional to size
    adaptive_evals = [r["adaptive"]["evals_per_event"] for r in results]
    assert max(adaptive_evals) < 12 * min(adaptive_evals)
    nonadaptive_evals = [r["nonadaptive"]["evals_per_event"] for r in results]
    size = [r["junctions"] for r in results]
    growth = (nonadaptive_evals[-1] / nonadaptive_evals[0])
    assert growth > 0.5 * (size[-1] / size[0])

    # (3) wall-clock speedup on the largest configuration
    assert wall_ratios[-1] > 1.5
