"""Parallel sweep scaling: wall-clock versus worker count.

The ``repro.parallel`` layer promises two things: (1) the results of a
sharded sweep are a function of the shard layout alone — ``jobs=4``
reproduces ``jobs=1`` bit for bit — and (2) on a multi-core machine the
wall-clock drops as workers are added.  This bench measures both on a
Fig. 5-style (bias, gate) current map, appends the ``{jobs, seconds,
speedup}`` rows to ``BENCH_parallel.json``, and asserts the speedup
only where the hardware can deliver one (a single-CPU container can
verify identity but not parallelism).
"""

import os

import numpy as np

from repro.analysis import format_table
from repro.circuit import build_set
from repro.core import SimulationConfig, sweep_map
from repro.telemetry.clock import Stopwatch

from _harness import (
    events_per_second, full_scale, record_parallel_bench, run_once,
)

JOBS = (1, 2, 4)


def _grid():
    if full_scale():
        return np.linspace(-0.04, 0.04, 33), np.linspace(0.0, 0.08, 16), 4000
    return np.linspace(-0.04, 0.04, 17), np.linspace(0.0, 0.08, 8), 2000


def run_measurements():
    circuit = build_set()
    config = SimulationConfig(temperature=5.0, solver="adaptive", seed=11)
    biases, gates, jumps = _grid()
    rows = []
    maps = {}
    for jobs in JOBS:
        watch = Stopwatch()
        maps[jobs] = sweep_map(
            circuit, biases, gates, config, jumps_per_point=jumps, jobs=jobs,
        )
        seconds = watch.elapsed()
        rows.append({
            "jobs": jobs,
            "solver": config.solver,
            "seconds": seconds,
            "speedup": None,  # filled against the serial row below
            "events_per_second": events_per_second(maps[jobs].stats, seconds),
            "rows": len(gates),
            "points": len(biases),
            "jumps_per_point": jumps,
        })
    serial = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = serial / row["seconds"]
    return rows, maps


def test_parallel_scaling(benchmark):
    rows, maps = run_once(benchmark, run_measurements)

    print()
    print(format_table(
        ["jobs", "seconds", "speedup"],
        [[r["jobs"], f"{r['seconds']:.2f}", f"{r['speedup']:.2f}x"]
         for r in rows],
        title=f"sweep_map scaling ({os.cpu_count()} CPUs available)",
    ))
    record_parallel_bench("sweep_map_scaling", rows)

    # (1) the headline guarantee: worker count never changes the numbers
    serial = maps[JOBS[0]]
    for jobs in JOBS[1:]:
        assert np.array_equal(serial.currents, maps[jobs].currents)
        assert serial.stats.as_dict() == maps[jobs].stats.as_dict()

    # (2) scaling, where the hardware allows it: with >= 4 cores the
    # 4-worker map must beat serial; a single-CPU box can only pay the
    # pool overhead, so there identity is the whole test
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        four = next(r for r in rows if r["jobs"] == 4)
        assert four["speedup"] > 1.2, (
            f"jobs=4 gave {four['speedup']:.2f}x on {cpus} CPUs"
        )
