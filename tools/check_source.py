#!/usr/bin/env python
"""Repository-rule AST linter for ``src/repro`` (thin shim).

The rule implementations (``REPRO001-004``) live in
:mod:`repro.dsan.repo_rules`, sharing the visitor framework of the
determinism sanitizer (``repro sanitize``); this file keeps the
historical entry point and public surface (:func:`check_module`,
:func:`main`) stable for CI and the test suite.

Rules, waivers (``# repro-lint: allow``) and exit codes are documented
in the rules module.  Usage::

    python tools/check_source.py [root ...]    # default: src/repro
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.dsan import repo_rules as _repo_rules
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.dsan import repo_rules as _repo_rules

FORBIDDEN_RAISES = _repo_rules.FORBIDDEN_RAISES
PHYSICS_FRAGMENTS = _repo_rules.PHYSICS_FRAGMENTS
PHYSICS_NAMES = _repo_rules.PHYSICS_NAMES
WAIVER = _repo_rules.WAIVER
check_module = _repo_rules.check_module
main = _repo_rules.main

if __name__ == "__main__":
    sys.exit(main())
