#!/usr/bin/env python
"""Repository-rule AST linter for ``src/repro`` (thin shim).

The rule implementations (``REPRO001-004``) live in
:mod:`repro.static.repo` on the unified static-analysis framework;
``repro check`` is the full entry point running every rule family.
This file keeps the historical entry point and public surface
(:func:`check_module`, :func:`main`) stable for CI and the test suite.

Rules, waivers and exit codes are documented in the rules module.
Usage::

    python tools/check_source.py [root ...]    # default: src/repro
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.static import repo as _repo
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.static import repo as _repo

FORBIDDEN_RAISES = _repo.FORBIDDEN_RAISES
PHYSICS_FRAGMENTS = _repo.PHYSICS_FRAGMENTS
PHYSICS_NAMES = _repo.PHYSICS_NAMES
check_module = _repo.check_module
main = _repo.main

if __name__ == "__main__":
    sys.exit(main())
