#!/usr/bin/env python
"""Repository-rule AST linter for ``src/repro``.

Static analysis of the *codebase* (the companion of ``repro.lint``,
which analyses simulation inputs).  Enforced rules:

``REPRO001``
    No ``except Exception:`` / bare ``except:`` inside ``src/repro`` —
    the package contract is a precise :class:`SemsimError` hierarchy,
    and blanket handlers hide solver bugs as physics.
``REPRO002``
    No raising of bare builtin exceptions (``ValueError``,
    ``TypeError``, ``RuntimeError``, ``KeyError``, ``IndexError``,
    ``Exception``, ``OSError``, ``ArithmeticError``) — deliberate
    errors must derive from ``SemsimError`` so callers can catch one
    type at the API boundary (``NotImplementedError`` on abstract
    hooks is exempt).
``REPRO003``
    No ``==``/``!=`` comparisons against non-zero float literals, and
    none at all on identifiers that look like energies or voltages
    (``*energy*``, ``*voltage*``, ``dw``, ``delta_w``, ``ej``) unless
    the other side is a literal ``0``/``0.0`` sentinel — floating-point
    physics must compare with tolerances.
``REPRO004``
    ``from __future__ import annotations`` must be present in every
    module.

A violation can be waived for one line with a trailing
``# repro-lint: allow`` comment.  Exit status: 0 clean, 1 violations,
2 usage/IO trouble.

Usage: ``python tools/check_source.py [root ...]`` (default ``src/repro``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

FORBIDDEN_RAISES = frozenset({
    "ValueError", "TypeError", "RuntimeError", "KeyError", "IndexError",
    "Exception", "BaseException", "OSError", "ArithmeticError",
    "ZeroDivisionError", "AttributeError", "AssertionError",
})

#: identifier fragments that mark a float-physics quantity
PHYSICS_FRAGMENTS = ("energy", "voltage", "delta_w")
PHYSICS_NAMES = frozenset({"dw", "ej", "e_c", "e_j", "bias", "vds", "vgs"})

WAIVER = "# repro-lint: allow"


def _is_zero_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


def _is_physics_name(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    lowered = name.lower()
    return lowered in PHYSICS_NAMES or any(
        fragment in lowered for fragment in PHYSICS_FRAGMENTS
    )


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, source_lines: list[str]):
        self.path = path
        self.lines = source_lines
        self.violations: list[tuple[int, str, str]] = []

    # ------------------------------------------------------------------
    def _waived(self, lineno: int) -> bool:
        line = self.lines[lineno - 1] if lineno - 1 < len(self.lines) else ""
        return WAIVER in line

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        if not self._waived(lineno):
            self.violations.append((lineno, code, message))

    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        if broad:
            self._report(
                node, "REPRO001",
                "broad exception handler; catch specific SemsimError "
                "subclasses (or builtin types you expect)",
            )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in FORBIDDEN_RAISES:
            self._report(
                node, "REPRO002",
                f"raises builtin {name}; deliberate errors must derive "
                "from SemsimError (see repro.errors)",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        eq_ops = [
            op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))
        ]
        if eq_ops:
            for operand in operands:
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                    and operand.value != 0.0
                ):
                    self._report(
                        node, "REPRO003",
                        f"float equality against literal {operand.value!r}; "
                        "compare with a tolerance (math.isclose / pytest.approx)",
                    )
            if len(operands) == 2:
                left, right = operands
                for this, other in ((left, right), (right, left)):
                    if _is_physics_name(this) and not _is_zero_literal(other) \
                            and not isinstance(other, ast.Constant):
                        self._report(
                            node, "REPRO003",
                            "float equality on a physics quantity "
                            f"({ast.unparse(this)}); compare with a tolerance",
                        )
                        break
        self.generic_visit(node)


def check_module(path: Path) -> list[tuple[int, str, str]]:
    """All rule violations of one source file."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    checker = _Checker(path, source.splitlines())
    checker.visit(tree)

    has_future = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "__future__"
        and any(alias.name == "annotations" for alias in node.names)
        for node in tree.body
    )
    if not has_future:
        checker.violations.append((
            1, "REPRO004",
            "missing 'from __future__ import annotations'",
        ))
    return sorted(checker.violations)


def main(argv: list[str] | None = None) -> int:
    roots = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not roots:
        roots = [Path(__file__).resolve().parent.parent / "src" / "repro"]

    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            print(f"error: no such file or directory: {root}", file=sys.stderr)
            return 2

    total = 0
    for path in files:
        for lineno, code, message in check_module(path):
            print(f"{path}:{lineno}: {code} {message}")
            total += 1
    if total:
        print(f"{total} violation(s) in {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"{len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
