"""Tests for the thermal cap on the adaptive testing threshold."""

import numpy as np
import pytest

from repro.core import MonteCarloEngine, SimulationConfig
from repro.errors import SimulationError
from repro.logic import build_benchmark, find_step_stimulus


class TestConfigValidation:
    def test_nonpositive_cap_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(adaptive_thermal_cap=0.0)
        with pytest.raises(SimulationError):
            SimulationConfig(adaptive_thermal_cap=-1.0)

    def test_default_cap(self):
        assert SimulationConfig().adaptive_thermal_cap == 4.0

    def test_infinite_cap_allowed(self):
        cfg = SimulationConfig(adaptive_thermal_cap=float("inf"))
        assert np.isinf(cfg.adaptive_thermal_cap)


class TestCapBehaviour:
    @pytest.fixture(scope="class")
    def mapped(self):
        return build_benchmark("74LS138")

    def _evals_per_event(self, mapped, cap: float) -> float:
        stim = find_step_stimulus(mapped.netlist, 0)
        engine = MonteCarloEngine(
            mapped.circuit,
            SimulationConfig(
                temperature=mapped.params.temperature, solver="adaptive",
                seed=3, adaptive_thermal_cap=cap,
            ),
            initial_occupation=mapped.initial_occupation(stim.before),
        )
        engine.set_sources(mapped.input_voltages(stim.before))
        engine.run(max_jumps=2000)
        stats = engine.solver.stats
        return stats.sequential_rate_evaluations / stats.events

    def test_tighter_cap_means_more_recomputation(self, mapped):
        tight = self._evals_per_event(mapped, 1.0)
        default = self._evals_per_event(mapped, 4.0)
        loose = self._evals_per_event(mapped, float("inf"))
        assert tight >= default >= loose

    def test_cap_still_far_below_nonadaptive_cost(self, mapped):
        default = self._evals_per_event(mapped, 4.0)
        nonadaptive_cost = 2 * mapped.n_junctions
        assert default < nonadaptive_cost / 5

    def test_zero_temperature_disables_cap(self):
        """At T = 0 every rate is a sharp threshold, so the log-rate
        argument does not apply and the cap must not divide by zero."""
        from repro.circuit import build_set

        circuit = build_set(vs=0.04, vd=-0.04)
        engine = MonteCarloEngine(
            circuit,
            SimulationConfig(temperature=0.0, solver="adaptive", seed=1),
        )
        engine.run(max_jumps=200)  # must simply not crash
        assert engine.solver.stats.events == 200
