"""Tests for metrics, timing and table formatting."""

import pytest

from repro.analysis import (
    TimedRun,
    crossover_index,
    format_table,
    mean_percent_error,
    percent_error,
    relative_spread,
)
from repro.errors import SimulationError


class TestMetrics:
    def test_percent_error(self):
        assert percent_error(11.0, 10.0) == pytest.approx(10.0)
        assert percent_error(9.0, 10.0) == pytest.approx(10.0)

    def test_percent_error_zero_reference(self):
        with pytest.raises(SimulationError):
            percent_error(1.0, 0.0)

    def test_mean_percent_error(self):
        assert mean_percent_error([11, 9], [10, 10]) == pytest.approx(10.0)

    def test_mean_percent_error_shape_mismatch(self):
        with pytest.raises(SimulationError):
            mean_percent_error([1.0], [1.0, 2.0])

    def test_relative_spread(self):
        assert relative_spread([1.0, 1.0, 1.0]) == 0.0
        assert relative_spread([1.0, 3.0]) == pytest.approx(0.5)

    def test_crossover_index(self):
        assert crossover_index([5, 4, 2, 1], [3, 3, 3, 3]) == 2
        assert crossover_index([5, 4], [3, 3]) is None


class TestTimedRun:
    def test_extrapolate_events(self):
        run = TimedRun(wall_seconds=2.0, events=1000, simulated_seconds=1e-8)
        assert run.extrapolate_to_events(10000) == pytest.approx(20.0)

    def test_extrapolate_time(self):
        run = TimedRun(wall_seconds=2.0, events=1000, simulated_seconds=1e-8)
        # the paper's "adjusted for a circuit simulation time of 10 us"
        assert run.extrapolate_to_time(1e-5) == pytest.approx(2000.0)

    def test_zero_basis_rejected(self):
        run = TimedRun(wall_seconds=2.0, events=0, simulated_seconds=0.0)
        with pytest.raises(SimulationError):
            run.extrapolate_to_events(10)
        with pytest.raises(SimulationError):
            run.extrapolate_to_time(1e-5)


class TestTables:
    def test_format_contains_rows_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["b", 2e-9]], title="T"
        )
        assert text.splitlines()[0] == "T"
        assert "a" in text and "2.000e-09" in text

    def test_columns_aligned(self):
        text = format_table(["x", "longer"], [["aa", 1], ["b", 22]])
        lines = text.splitlines()
        assert len(set(line.index("longer") for line in lines[:1])) == 1
