"""Tests for the per-circuit TunnelingModel bundle."""

import numpy as np
import pytest

from repro.circuit import Electrostatics, JunctionTable, build_set
from repro.constants import MEV
from repro.errors import PhysicsError
from repro.physics import TunnelingModel
from repro.physics.orthodox import orthodox_rates_both


def make_model(circuit, **kwargs):
    stat = Electrostatics(circuit)
    table = JunctionTable(circuit, stat)
    return TunnelingModel(circuit, stat, table, **kwargs)


class TestNormalModel:
    def test_sequential_rates_are_orthodox(self, set_circuit):
        model = make_model(set_circuit, temperature=4.2)
        dw_fw = np.array([-1e-22, 2e-22])
        dw_bw = np.array([1e-22, -2e-22])
        fw, bw = model.sequential_rates(dw_fw, dw_bw)
        expected = orthodox_rates_both(
            dw_fw, dw_bw, model.junction_table.resistance, 4.2
        )
        np.testing.assert_allclose(fw, expected[0])
        np.testing.assert_allclose(bw, expected[1])

    def test_no_cooper_pairs_on_normal_circuit(self, set_circuit):
        model = make_model(set_circuit, temperature=4.2)
        assert not model.include_cooper_pairs
        fw, bw = model.cooper_pair_rates(np.zeros(2), np.zeros(2))
        assert np.all(fw == 0.0) and np.all(bw == 0.0)

    def test_forcing_cooper_pairs_on_normal_circuit_rejected(self, set_circuit):
        with pytest.raises(PhysicsError):
            make_model(set_circuit, temperature=4.2, include_cooper_pairs=True)

    def test_cotunneling_paths_prepared(self, set_circuit):
        model = make_model(set_circuit, temperature=4.2, include_cotunneling=True)
        assert len(model.paths) == 2
        assert model.energy_floor > 0.0

    def test_negative_temperature_rejected(self, set_circuit):
        with pytest.raises(PhysicsError):
            make_model(set_circuit, temperature=-1.0)


class TestSuperconductingModel:
    def test_gap_evaluated_at_temperature(self, sset_circuit):
        model = make_model(sset_circuit, temperature=0.05)
        assert model.gap == pytest.approx(0.2 * MEV, rel=1e-3)

    def test_cooper_pairs_enabled_by_default(self, sset_circuit):
        model = make_model(sset_circuit, temperature=0.05)
        assert model.include_cooper_pairs
        assert np.all(model.josephson > 0.0)
        assert model.cooper_linewidth > 0.0

    def test_above_tc_rejected_with_guidance(self, sset_circuit):
        with pytest.raises(PhysicsError):
            make_model(sset_circuit, temperature=2.0)

    def test_qp_tables_shared_between_identical_junctions(self, sset_circuit):
        model = make_model(sset_circuit, temperature=0.05)
        assert model._qp_tables[0] is model._qp_tables[1]

    def test_cotunneling_on_superconducting_circuit_rejected(self, sset_circuit):
        with pytest.raises(PhysicsError):
            make_model(sset_circuit, temperature=0.05, include_cotunneling=True)

    def test_sequential_rates_respect_gap(self, sset_circuit):
        model = make_model(sset_circuit, temperature=0.05,
                           include_cooper_pairs=False)
        gap = model.gap
        inside = np.array([-1.5 * gap, -1.5 * gap])
        outside = np.array([-6.0 * gap, -6.0 * gap])
        fw_in, _ = model.sequential_rates(inside, inside)
        fw_out, _ = model.sequential_rates(outside, outside)
        assert np.all(fw_out > 1e6 * np.maximum(fw_in, 1e-300))
