"""Tests for the static determinism sanitizer (``repro sanitize``)."""

from __future__ import annotations

from pathlib import Path

from repro.cli import main as cli_main
from repro.dsan import (
    DET_CODES,
    code_table,
    report_as_json,
    sanitize_paths,
    waived_codes,
)

REPO = Path(__file__).parent.parent

HEADER = "from __future__ import annotations\nimport numpy as np\n"


def report_of(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(HEADER + source)
    # anchor relpaths at tmp_path so module-scoped exemptions
    # (telemetry/clock.py, parallel/seeds.py) resolve as in a real scan
    return sanitize_paths([path], relative_to=tmp_path)


def codes_of(tmp_path, source, name="mod.py"):
    return [f.code for f in report_of(tmp_path, source, name)]


class TestRngRules:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        src = "def f():\n    return np.random.default_rng()\n"
        assert codes_of(tmp_path, src) == ["DET001"]

    def test_explicit_none_seed_flagged(self, tmp_path):
        src = "def f():\n    return np.random.default_rng(None)\n"
        assert codes_of(tmp_path, src) == ["DET001"]

    def test_seed_parameter_allowed(self, tmp_path):
        src = "def f(seed):\n    return np.random.default_rng(seed)\n"
        assert codes_of(tmp_path, src) == []

    def test_rng_parameter_allowed(self, tmp_path):
        src = "def f(rng_seed):\n    return np.random.default_rng(rng_seed)\n"
        assert codes_of(tmp_path, src) == []

    def test_hardcoded_seed_flagged(self, tmp_path):
        src = "def f():\n    return np.random.default_rng(1234)\n"
        assert codes_of(tmp_path, src) == ["DET003"]

    def test_unrelated_variable_flagged(self, tmp_path):
        src = (
            "def f(n_points):\n"
            "    return np.random.default_rng(n_points)\n"
        )
        assert codes_of(tmp_path, src) == ["DET003"]

    def test_spawn_seeds_flow_allowed(self, tmp_path):
        src = (
            "from repro.parallel.seeds import spawn_seeds\n"
            "def f():\n"
            "    return np.random.default_rng(spawn_seeds(7, 4)[0])\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_config_seed_sequence_flow_allowed(self, tmp_path):
        src = (
            "def f(config):\n"
            "    return np.random.default_rng(config.seed_sequence())\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_assigned_seed_flows_through_name(self, tmp_path):
        src = (
            "def f(config):\n"
            "    root = config.seed_sequence()\n"
            "    return np.random.default_rng(root)\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_global_numpy_draw_flagged(self, tmp_path):
        src = "def f():\n    return np.random.random()\n"
        assert codes_of(tmp_path, src) == ["DET002"]

    def test_global_numpy_seed_flagged(self, tmp_path):
        src = "def f():\n    np.random.seed(0)\n"
        assert codes_of(tmp_path, src) == ["DET002"]

    def test_global_stdlib_draw_flagged(self, tmp_path):
        src = "import random\ndef f(x):\n    random.shuffle(x)\n"
        assert codes_of(tmp_path, src) == ["DET002"]

    def test_generator_method_not_confused_with_global(self, tmp_path):
        src = "def f(rng):\n    return rng.random()\n"
        assert codes_of(tmp_path, src) == []

    def test_seed_plumbing_module_exempt(self, tmp_path):
        src = "def f():\n    return np.random.default_rng()\n"
        assert codes_of(tmp_path, src, name="parallel/seeds.py") == []


class TestClockRule:
    def test_perf_counter_flagged(self, tmp_path):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert codes_of(tmp_path, src) == ["DET010"]

    def test_urandom_flagged(self, tmp_path):
        src = "import os\ndef f():\n    return os.urandom(8)\n"
        assert codes_of(tmp_path, src) == ["DET010"]

    def test_datetime_now_flagged(self, tmp_path):
        src = (
            "from datetime import datetime\n"
            "def f():\n    return datetime.now()\n"
        )
        assert codes_of(tmp_path, src) == ["DET010"]

    def test_clock_module_exempt(self, tmp_path):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert codes_of(tmp_path, src, name="telemetry/clock.py") == []


class TestWorkerStateRule:
    def test_mutation_in_pool_worker_flagged(self, tmp_path):
        src = (
            "STATE = []\n"
            "def work(x):\n"
            "    STATE.append(x)\n"
            "    return x\n"
            "def launch(pool, items):\n"
            "    return pool.execute_shards(work, items)\n"
        )
        assert codes_of(tmp_path, src) == ["DET020"]

    def test_global_statement_in_worker_flagged(self, tmp_path):
        src = (
            "COUNT = 0\n"
            "def work(x):\n"
            "    global COUNT\n"
            "    COUNT += 1\n"
            "def launch(pool, items):\n"
            "    return pool.execute_shards(work, items)\n"
        )
        assert codes_of(tmp_path, src) == ["DET020"]

    def test_transitively_reachable_write_flagged(self, tmp_path):
        src = (
            "CACHE = {}\n"
            "def work(x):\n"
            "    return helper(x)\n"
            "def helper(x):\n"
            "    CACHE[x] = 1\n"
            "    return x\n"
            "def launch(pool, items):\n"
            "    return pool.execute_shards(work, items)\n"
        )
        report = report_of(tmp_path, src)
        assert [f.code for f in report] == ["DET020"]
        # the message names a witness chain to the worker entry
        assert "work" in report.findings[0].message

    def test_shard_entry_is_implicit_worker(self, tmp_path):
        src = (
            "CACHE = {}\n"
            "def _shard_entry(worker, payload):\n"
            "    CACHE[0] = payload\n"
            "    return worker(payload)\n"
        )
        assert codes_of(tmp_path, src) == ["DET020"]

    def test_write_outside_worker_paths_allowed(self, tmp_path):
        src = (
            "STATE = []\n"
            "def record(x):\n"
            "    STATE.append(x)\n"
        )
        assert codes_of(tmp_path, src) == []


class TestPoolBoundaryRule:
    def test_lambda_worker_flagged(self, tmp_path):
        src = (
            "def launch(pool, items):\n"
            "    return pool.execute_shards(lambda x: x, items)\n"
        )
        assert codes_of(tmp_path, src) == ["DET021"]

    def test_nested_function_worker_flagged(self, tmp_path):
        src = (
            "def launch(pool, items):\n"
            "    def work(x):\n"
            "        return x\n"
            "    return pool.execute_shards(work, items)\n"
        )
        assert codes_of(tmp_path, src) == ["DET021"]

    def test_module_level_worker_allowed(self, tmp_path):
        src = (
            "def work(x):\n"
            "    return x\n"
            "def launch(pool, items):\n"
            "    return pool.execute_shards(work, items)\n"
        )
        assert codes_of(tmp_path, src) == []


class TestSetOrderRule:
    def test_sum_over_set_flagged(self, tmp_path):
        src = "def f(values):\n    return sum(set(values))\n"
        assert codes_of(tmp_path, src) == ["DET022"]

    def test_float_accumulation_over_set_flagged(self, tmp_path):
        src = (
            "def f(items):\n"
            "    total = 0.0\n"
            "    for x in set(items):\n"
            "        total += x\n"
            "    return total\n"
        )
        assert codes_of(tmp_path, src) == ["DET022"]

    def test_rng_draw_over_set_flagged(self, tmp_path):
        src = (
            "def f(items, rng):\n"
            "    return [rng.random() for _ in set(items)]\n"
        )
        assert codes_of(tmp_path, src) == ["DET022"]

    def test_sorted_set_allowed(self, tmp_path):
        src = (
            "def f(items):\n"
            "    total = 0.0\n"
            "    for x in sorted(set(items)):\n"
            "        total += x\n"
            "    return total\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_order_insensitive_set_loop_allowed(self, tmp_path):
        src = (
            "def f(items):\n"
            "    out = {}\n"
            "    for x in set(items):\n"
            "        out[x] = x\n"
            "    return out\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_dict_iteration_allowed(self, tmp_path):
        # dicts preserve insertion order (language guarantee since 3.7)
        src = (
            "def f(table):\n"
            "    total = 0.0\n"
            "    for x in table.values():\n"
            "        total += x\n"
            "    return total\n"
        )
        assert codes_of(tmp_path, src) == []


class TestWaivers:
    def test_trailing_waiver_suppresses(self, tmp_path):
        src = (
            "def f():\n"
            "    return np.random.default_rng()"
            "  # dsan: allow[DET001] replay tool\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_comment_block_above_suppresses(self, tmp_path):
        src = (
            "def f():\n"
            "    # dsan: allow[DET001] seeded by the caller's harness\n"
            "    return np.random.default_rng()\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_waiver_is_per_code(self, tmp_path):
        src = (
            "def f():\n"
            "    return np.random.default_rng()"
            "  # dsan: allow[DET022]\n"
        )
        assert codes_of(tmp_path, src) == ["DET001"]

    def test_waived_codes_parses_lists(self):
        line = "x = 1  # dsan: allow[DET001,DET005] because reasons"
        assert waived_codes(line) == frozenset({"DET001", "DET005"})
        assert waived_codes("x = 1  # a plain comment") == frozenset()


class TestReport:
    def test_clean_report(self, tmp_path):
        report = report_of(tmp_path, "def f(x):\n    return x\n")
        assert report.exit_code == 0
        assert len(report) == 0
        assert "clean" in report.summary()

    def test_error_exits_two(self, tmp_path):
        report = report_of(
            tmp_path, "def f():\n    return np.random.default_rng()\n"
        )
        assert report.exit_code == 2
        assert report.has("DET001")

    def test_warning_exits_one(self, tmp_path):
        report = report_of(
            tmp_path, "def f(values):\n    return sum(set(values))\n"
        )
        assert report.exit_code == 1

    def test_finding_format_carries_location(self, tmp_path):
        report = report_of(
            tmp_path, "def f():\n    return np.random.default_rng()\n"
        )
        text = report.findings[0].format()
        assert "mod.py" in text and "DET001" in text

    def test_json_rendering(self, tmp_path):
        import json

        report = report_of(
            tmp_path, "def f():\n    return np.random.default_rng()\n"
        )
        payload = json.loads(report_as_json(report))
        assert payload["exit_code"] == 2
        assert payload["findings"][0]["code"] == "DET001"

    def test_registry_is_consistent(self):
        assert set(DET_CODES) == {
            "DET001", "DET002", "DET003", "DET010",
            "DET020", "DET021", "DET022",
        }
        table = code_table()
        for code in DET_CODES:
            assert code in table


class TestRepoIsClean:
    def test_src_repro_passes(self):
        report = sanitize_paths([REPO / "src" / "repro"])
        assert report.exit_code == 0, report.format()
        assert report.files_scanned > 50


class TestCli:
    def test_sanitize_default_root_clean(self, capsys):
        assert cli_main(["sanitize"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_sanitize_reports_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        assert cli_main(["sanitize", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_sanitize_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        assert cli_main(["sanitize", str(bad), "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "DET001"

    def test_sanitize_codes_table(self, capsys):
        assert cli_main(["sanitize", "--codes"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "DET022" in out
