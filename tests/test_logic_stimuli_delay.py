"""Tests for stimulus generation and delay extraction."""

import numpy as np
import pytest

from repro.core import SimulationConfig
from repro.errors import SimulationError
from repro.logic import (
    Gate,
    GateKind,
    LogicNetlist,
    build_benchmark,
    exhaustive_vectors,
    find_step_stimulus,
    map_to_circuit,
    measure_propagation_delay,
)
from repro.logic.delay import _find_crossing
from repro.logic.stimuli import StepStimulus, random_vector


class TestStimuli:
    def test_step_toggles_an_output(self):
        net = build_benchmark("74LS138").netlist
        stim = find_step_stimulus(net, 0)
        before = net.output_values(stim.before)
        after = net.output_values(stim.after)
        assert any(before[n] != after[n] for n in net.outputs)
        for name, value in stim.toggled_outputs:
            assert after[name] == value

    def test_deterministic_for_seed(self):
        net = build_benchmark("74154").netlist
        assert find_step_stimulus(net, 5) == find_step_stimulus(net, 5)

    def test_seed_sequence_matches_int_seed(self):
        # the contract SimulationConfig documents for its own seed:
        # an integer s and SeedSequence(s) are bit-identical
        net = build_benchmark("74154").netlist
        assert find_step_stimulus(net, np.random.SeedSequence(5)) == \
            find_step_stimulus(net, 5)

    def test_spawned_seeds_give_independent_searches(self):
        from repro.parallel.seeds import spawn_seeds

        net = build_benchmark("74154").netlist
        children = spawn_seeds(5, 2)
        assert find_step_stimulus(net, children[0]) == \
            find_step_stimulus(net, children[0])
        # distinct children explore distinct base vectors (overwhelmingly)
        assert find_step_stimulus(net, children[0]) != \
            find_step_stimulus(net, children[1])

    def test_impossible_toggle_raises(self):
        # constant function: output never toggles
        net = LogicNetlist(
            "const", ["a"], ["y"],
            [
                Gate("g1", GateKind.INV, ("a",), "an"),
                Gate("g2", GateKind.NAND2, ("a", "an"), "y"),  # always 1
            ],
        )
        with pytest.raises(SimulationError):
            find_step_stimulus(net, 0, max_tries=10)

    def test_random_vector_covers_inputs(self, rng):
        net = build_benchmark("Full-Adder").netlist
        vec = random_vector(net, rng)
        assert set(vec) == set(net.inputs)

    def test_exhaustive_vectors(self):
        net = build_benchmark("Full-Adder").netlist
        vectors = exhaustive_vectors(net)
        assert len(vectors) == 2 ** len(net.inputs)
        assert len({tuple(sorted(v.items())) for v in vectors}) == len(vectors)

    def test_exhaustive_rejects_wide_inputs(self):
        net = build_benchmark("c432").netlist
        with pytest.raises(SimulationError):
            exhaustive_vectors(net)


class TestCrossingDetector:
    def test_simple_rise(self):
        t = np.linspace(0, 1, 11)
        v = np.linspace(0, 1, 11)
        crossing = _find_crossing(t, v, 0.5, rises=True, start_time=0.0)
        assert crossing == pytest.approx(0.6)

    def test_requires_stability(self):
        t = np.arange(10.0)
        v = np.array([0, 1, 0, 1, 0, 1, 1, 1, 1, 1], dtype=float)
        crossing = _find_crossing(t, v, 0.5, rises=True, start_time=0.0)
        assert crossing == 5.0  # first index of the stable run

    def test_respects_start_time(self):
        t = np.arange(10.0)
        v = np.ones(10)
        crossing = _find_crossing(t, v, 0.5, rises=True, start_time=4.0)
        assert crossing == 4.0

    def test_none_when_never_crossing(self):
        t = np.arange(10.0)
        v = np.zeros(10)
        assert _find_crossing(t, v, 0.5, rises=True, start_time=0.0) is None

    def test_falling_direction(self):
        t = np.arange(10.0)
        v = np.linspace(1, 0, 10)
        crossing = _find_crossing(t, v, 0.5, rises=False, start_time=0.0)
        assert crossing is not None


class TestDelayMeasurement:
    def test_inverter_chain_delay_positive_and_reproducible_scale(self):
        gates = []
        prev = "x"
        for i in range(3):
            gates.append(Gate(f"i{i}", GateKind.INV, (prev,), f"n{i}"))
            prev = f"n{i}"
        net = LogicNetlist("chain3", ["x"], [prev], gates)
        mapped = map_to_circuit(net)
        stim = StepStimulus({"x": False}, {"x": True}, ((prev, False),))
        config = SimulationConfig(temperature=1.5, solver="nonadaptive", seed=2)
        result = measure_propagation_delay(
            mapped, stim, config, settle_jumps=2000, max_jumps=150000,
        )
        assert 0.0 < result.delay < 1e-6
        assert result.output_net == prev
        assert not result.rises

    def test_invalid_output_net_rejected(self):
        mapped = build_benchmark("Full-Adder")
        stim = find_step_stimulus(mapped.netlist, 1)
        with pytest.raises(SimulationError):
            measure_propagation_delay(
                mapped, stim, output_net="not_a_net",
                config=SimulationConfig(temperature=1.5, seed=0),
            )

    def test_stimulus_without_toggles_rejected(self):
        mapped = build_benchmark("Full-Adder")
        vec = {n: False for n in mapped.netlist.inputs}
        stim = StepStimulus(vec, vec, ())
        with pytest.raises(SimulationError):
            measure_propagation_delay(mapped, stim)
