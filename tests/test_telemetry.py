"""Unit tests for ``repro.telemetry``: registry, spans, exporters."""

import json
import time

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    TelemetryRegistry,
    chrome_trace,
    phase_timings,
    summary,
    write_jsonl,
    write_trace,
)
from repro.telemetry import registry as telemetry
from repro.telemetry.clock import Stopwatch, time_call, wall_time


@pytest.fixture(autouse=True)
def _telemetry_disabled():
    """Every test starts and ends with telemetry off."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestClock:
    def test_wall_time_is_monotonic(self):
        a = wall_time()
        b = wall_time()
        assert b >= a

    def test_stopwatch_elapsed_grows(self):
        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0.0 <= first <= second
        watch.restart()
        assert watch.elapsed() < second + 1.0

    def test_time_call_returns_duration_and_result(self):
        seconds, value = time_call(lambda x: x * 2, 21)
        assert value == 42
        assert seconds >= 0.0


class TestMetrics:
    def test_counter_accumulates(self):
        reg = TelemetryRegistry()
        reg.counter("events").add()
        reg.counter("events").add(4)
        assert reg.counter("events").value == 5

    def test_counter_rejects_negative(self):
        reg = TelemetryRegistry()
        with pytest.raises(TelemetryError):
            reg.counter("events").add(-1)

    def test_gauge_last_value_wins(self):
        reg = TelemetryRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == pytest.approx(2.5)

    def test_histogram_moments(self):
        reg = TelemetryRegistry()
        hist = reg.histogram("dt")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        # population variance of (1, 2, 3) is 2/3; m2 = count * variance
        assert hist.as_dict() == pytest.approx(
            {
                "count": 3.0, "total": 6.0, "mean": 2.0,
                "min": 1.0, "max": 3.0,
                "m2": 2.0, "std": (2.0 / 3.0) ** 0.5,
            }
        )

    def test_empty_histogram_is_well_defined(self):
        hist = TelemetryRegistry().histogram("empty")
        assert hist.mean == 0.0
        assert hist.as_dict()["min"] == 0.0

    def test_metrics_snapshot_shape(self):
        reg = TelemetryRegistry()
        reg.counter("c").add(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(1.0)
        snap = reg.metrics()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1.0


class TestSpans:
    def test_span_records_complete_event(self):
        reg = TelemetryRegistry()
        with reg.span("work", category="test", size=3) as live:
            live.set("extra", True)
        (event,) = reg.events
        assert event.name == "work"
        assert event.phase == "X"
        assert event.dur >= 0.0
        assert event.args == {"size": 3, "extra": True}
        assert event.category == "test"

    def test_nested_spans_order(self):
        reg = TelemetryRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        names = [event.name for event in reg.events]
        assert names == ["inner", "outer"]  # inner exits first
        inner, outer = reg.events
        assert outer.ts <= inner.ts
        assert outer.ts + outer.dur >= inner.ts + inner.dur

    def test_instant_event(self):
        reg = TelemetryRegistry()
        reg.instant("tick", junction=4)
        (event,) = reg.events
        assert event.phase == "i"
        assert event.args == {"junction": 4}

    def test_trace_buffer_bound(self):
        reg = TelemetryRegistry(max_trace_events=3)
        for i in range(10):
            reg.instant("tick", i=i)
        assert len(reg.events) == 3
        assert reg.dropped_events == 7

    def test_negative_bound_rejected(self):
        with pytest.raises(TelemetryError):
            TelemetryRegistry(max_trace_events=-1)

    def test_metrics_only_mode_records_no_events(self):
        reg = TelemetryRegistry(trace=False)
        with reg.span("work"):
            reg.instant("tick")
        reg.counter("c").add()
        assert reg.events == []
        assert reg.counter("c").value == 1


class TestActivation:
    def test_disabled_by_default(self):
        assert telemetry.get_registry() is None

    def test_disabled_span_is_shared_noop(self):
        first = telemetry.span("a", key=1)
        second = telemetry.span("b")
        assert first is second  # the singleton: no allocation when off
        with first as entered:
            entered.set("ignored", 0)  # must be a silent no-op

    def test_enable_disable(self):
        reg = telemetry.enable()
        try:
            assert telemetry.get_registry() is reg
            with telemetry.span("work"):
                pass
            assert [event.name for event in reg.events] == ["work"]
        finally:
            telemetry.disable()
        assert telemetry.get_registry() is None

    def test_session_restores_previous(self):
        outer = telemetry.enable()
        try:
            with telemetry.session() as inner:
                assert telemetry.get_registry() is inner
                assert inner is not outer
            assert telemetry.get_registry() is outer
        finally:
            telemetry.disable()

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry.session():
                raise RuntimeError("boom")
        assert telemetry.get_registry() is None

    def test_disabled_overhead_is_negligible(self):
        """The zero-cost-when-off contract, measured.

        A disabled ``span()`` call is one attribute load, one ``is
        None`` test and a constant return — it must cost far less than
        a microsecond-scale tunnel event.  The bound is deliberately
        loose (CI machines are noisy) but would still catch an
        accidental allocation or format call on the disabled path.
        """
        span = telemetry.span
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            with span("hot"):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 20e-6  # 20 us: ~100x a realistic no-op cost


class TestExporters:
    def _populated(self) -> TelemetryRegistry:
        reg = TelemetryRegistry()
        with reg.span("phase.a", category="test", n=1):
            reg.instant("tick", junction=2)
        with reg.span("phase.a"):
            pass
        with reg.span("phase.b"):
            pass
        reg.counter("solver.events").add(3)
        reg.histogram("solver.dt").observe(1e-9)
        return reg

    def test_chrome_trace_shape(self):
        payload = chrome_trace(self._populated())
        events = payload["traceEvents"]
        assert len(events) == 4
        for record in events:
            assert set(record) >= {"name", "ph", "ts", "pid", "tid",
                                   "cat", "args"}
            if record["ph"] == "X":
                assert record["dur"] >= 0.0
            else:
                assert record["s"] == "g"
        metrics = payload["otherData"]["metrics"]
        assert metrics["counters"]["solver.events"] == 3
        # the whole payload must be valid JSON
        json.loads(json.dumps(payload))

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(self._populated(), path)
        lines = path.read_text().strip().splitlines()
        assert count == len(lines) == 4
        records = [json.loads(line) for line in lines]
        assert {record["name"] for record in records} == {
            "phase.a", "phase.b", "tick"
        }

    def test_write_trace_auto_by_suffix(self, tmp_path):
        reg = self._populated()
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        write_trace(reg, jsonl)
        write_trace(reg, chrome)
        assert json.loads(jsonl.read_text().splitlines()[0])["name"]
        assert "traceEvents" in json.loads(chrome.read_text())

    def test_write_trace_rejects_unknown_format(self, tmp_path):
        with pytest.raises(TelemetryError):
            write_trace(self._populated(), tmp_path / "t.json", fmt="xml")

    def test_phase_timings_aggregate(self):
        timings = {t.name: t for t in phase_timings(self._populated())}
        assert timings["phase.a"].count == 2
        assert timings["phase.b"].count == 1
        assert timings["phase.a"].total_seconds >= 0.0
        assert timings["phase.a"].mean_seconds == pytest.approx(
            timings["phase.a"].total_seconds / 2
        )

    def test_summary_text(self):
        text = summary(self._populated())
        assert "phase wall time" in text
        assert "phase.a" in text
        assert "solver.events" in text
        assert "solver.dt" in text

    def test_summary_empty_registry(self):
        assert "no data" in summary(TelemetryRegistry())

    def test_summary_reports_dropped_events(self):
        reg = TelemetryRegistry(max_trace_events=1)
        reg.instant("a")
        reg.instant("b")
        assert "dropped" in summary(reg)

    def test_numpy_scalars_serialise(self, tmp_path):
        np = pytest.importorskip("numpy")
        reg = TelemetryRegistry()
        reg.instant("tick", dt=np.float64(1.5), junction=np.int64(3))
        path = tmp_path / "trace.json"
        write_trace(reg, path)
        record = json.loads(path.read_text())["traceEvents"][0]
        assert record["args"] == {"dt": 1.5, "junction": 3}
