"""Additional tests for SPICE helpers and transient bookkeeping."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.logic import Gate, GateKind, LogicNetlist, map_to_circuit
from repro.spice import SpiceSimulator, nset_model
from repro.spice.model import SETDeviceModel


class TestNsetModelHelper:
    def test_builds_two_gate_device(self):
        model = nset_model(1e6, 1e-18, 5e-18, 2e-18, 0.3, 1.5)
        assert isinstance(model, SETDeviceModel)
        assert model.gate_capacitances == (5e-18, 2e-18)
        assert model.total_capacitance == pytest.approx(9e-18)

    def test_bias_charge_shifts_oscillation(self):
        base = nset_model(1e6, 1e-18, 5e-18, 2e-18, 0.0, 1.5)
        shifted = nset_model(1e6, 1e-18, 5e-18, 2e-18, 0.5, 1.5)
        # half an electron of bias moves the device from blockade to
        # conduction at zero gate voltage
        i_base = abs(base.current(4e-3, 0.0, (0.0, 0.0)))
        i_shift = abs(shifted.current(4e-3, 0.0, (0.0, 0.0)))
        assert i_shift > 10 * i_base


class TestTransientBookkeeping:
    @pytest.fixture(scope="class")
    def simulator(self):
        net = LogicNetlist(
            "inv2", ["x"], ["z"],
            [
                Gate("g1", GateKind.INV, ("x",), "y"),
                Gate("g2", GateKind.INV, ("y",), "z"),
            ],
        )
        return SpiceSimulator(map_to_circuit(net))

    def test_empty_schedule_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.transient([])

    def test_times_are_uniform(self, simulator):
        result = simulator.transient([({"x": False}, 10 * simulator.dt)],
                                     record_nets=["z"])
        assert len(result.times) == 11
        np.testing.assert_allclose(np.diff(result.times), simulator.dt)

    def test_initial_voltages_track_booleans(self, simulator):
        x_low = simulator.initial_voltages({"x": False})
        x_high = simulator.initial_voltages({"x": True})
        # the intermediate net y flips between the two vectors
        y_index = simulator._unknown_index["y"]
        assert x_low[y_index] > x_high[y_index]

    def test_buffer_chain_settles_consistently(self, simulator):
        result = simulator.transient(
            [({"x": True}, 4e-9)], record_nets=["y", "z"]
        )
        threshold = simulator.mapped.params.logic_threshold
        assert result.traces["y"][-1] < threshold   # INV(high) = low
        assert result.traces["z"][-1] > threshold   # INV(low) = high
