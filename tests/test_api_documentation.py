"""Meta-tests: the public API is complete and documented.

A reproduction meant for adoption needs every public item documented;
these tests enforce that structurally instead of by review.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.circuit",
    "repro.core",
    "repro.logic",
    "repro.master",
    "repro.netlist",
    "repro.parallel",
    "repro.physics",
    "repro.spice",
]


def _walk_modules():
    modules = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        modules.append(module)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                if info.name == "__main__":
                    continue  # importing it would run the CLI
                modules.append(
                    importlib.import_module(f"{name}.{info.name}")
                )
    return modules


class TestDocumentation:
    @pytest.mark.parametrize("module", _walk_modules(),
                             ids=lambda m: m.__name__)
    def test_module_has_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_exported_items_are_documented(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        undocumented = []
        for name in exported:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports undocumented items: {undocumented}"
        )

    @pytest.mark.parametrize("package_name", PACKAGES[1:])
    def test_all_lists_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"


class TestPublicSurface:
    def test_top_level_quickstart_symbols(self):
        for symbol in ("build_set", "MonteCarloEngine", "SimulationConfig",
                       "sweep_iv", "Superconductor"):
            assert hasattr(repro, symbol)

    def test_version_is_exposed(self):
        assert repro.__version__

    def test_error_hierarchy_rooted(self):
        from repro.errors import (
            CircuitError,
            ConvergenceError,
            NetlistError,
            PhysicsError,
            SemsimError,
            SimulationError,
        )

        for exc in (CircuitError, ConvergenceError, NetlistError,
                    PhysicsError, SimulationError):
            assert issubclass(exc, SemsimError)
