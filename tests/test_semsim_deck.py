"""Tests for the SEMSIM input-format parser and writer."""

import pytest

from repro.constants import EV
from repro.errors import NetlistError
from repro.netlist import parse_semsim, write_semsim

#: Example Input File 1 from the paper, verbatim semantics
PAPER_DECK = """
#SET component definitions
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
charge 4 0.0

#Input source information
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1

#Overall node information
num j 2
num ext 3
num nodes 4

#Simulation specific information
temp 5
cotunnel
record 1 2 2
jumps 100000 1
sweep 2 0.02 0.00005
"""


class TestParsePaperDeck:
    @pytest.fixture(scope="class")
    def deck(self):
        return parse_semsim(PAPER_DECK)

    def test_junctions(self, deck):
        assert len(deck.junctions) == 2
        name, a, b, conductance, capacitance = deck.junctions[0]
        assert (a, b) == ("1", "4")
        assert conductance == 1e-6  # siemens -> 1 MOhm
        assert capacitance == 1e-18

    def test_sources_and_symmetry(self, deck):
        assert deck.sources == [("1", 0.02), ("2", -0.02), ("3", 0.0)]
        assert deck.symmetric_node == "1"

    def test_simulation_directives(self, deck):
        assert deck.temperature == 5.0
        assert deck.cotunnel
        assert deck.jumps == 100000
        assert deck.record.first_junction == 1
        assert deck.record.last_junction == 2
        assert deck.sweep.node == "2"
        assert deck.sweep.maximum == 0.02

    def test_declared_counts_checked(self, deck):
        assert deck.declared_junctions == 2
        assert deck.declared_external == 3
        assert deck.declared_nodes == 4

    def test_build_circuit(self, deck):
        circuit = deck.build_circuit()
        assert circuit.n_junctions == 2
        assert circuit.n_islands == 1
        assert circuit.junctions[0].resistance == pytest.approx(1e6)

    def test_config(self, deck):
        config = deck.config()
        assert config.temperature == 5.0
        assert config.include_cotunneling

    def test_sweep_values_cover_plus_minus_max(self, deck):
        values = deck.sweep.values()
        assert values[0] == pytest.approx(-0.02)
        assert values[-1] == pytest.approx(+0.02)


class TestValidation:
    def test_wrong_junction_count_rejected(self):
        bad = PAPER_DECK.replace("num j 2", "num j 3")
        with pytest.raises(NetlistError):
            parse_semsim(bad)

    def test_wrong_source_count_rejected(self):
        bad = PAPER_DECK.replace("num ext 3", "num ext 5")
        with pytest.raises(NetlistError):
            parse_semsim(bad)

    def test_wrong_node_count_rejected(self):
        bad = PAPER_DECK.replace("num nodes 4", "num nodes 9")
        with pytest.raises(NetlistError):
            parse_semsim(bad)

    def test_unknown_directive_reports_line(self):
        with pytest.raises(NetlistError) as excinfo:
            parse_semsim("junc 1 1 2 1e-6 1e-18\nfrobnicate 3")
        assert "line 2" in str(excinfo.value)

    def test_negative_conductance_rejected(self):
        with pytest.raises(NetlistError):
            parse_semsim("junc 1 1 2 -1e-6 1e-18\nvdc 1 0.0")

    def test_empty_deck_rejected(self):
        with pytest.raises(NetlistError):
            parse_semsim("# nothing here\n")

    def test_count_mismatch_error_carries_directive_line(self):
        bad = PAPER_DECK.replace("num j 2", "num j 3")
        with pytest.raises(NetlistError) as excinfo:
            parse_semsim(bad)
        lines = bad.splitlines()
        expected = next(
            i for i, l in enumerate(lines, start=1) if l.startswith("num j")
        )
        assert excinfo.value.line_number == expected

    def test_bad_directive_error_carries_its_line(self):
        with pytest.raises(NetlistError) as excinfo:
            parse_semsim("junc 1 1 2 1e-6 1e-18\nvdc 1 0.0\njunc 2 2 3 -1 1e-18\n")
        assert excinfo.value.line_number == 3

    def test_directive_lines_recorded(self):
        deck = parse_semsim(PAPER_DECK)
        lines = PAPER_DECK.splitlines()
        assert lines[deck.line_of("junc 1") - 1].startswith("junc 1")
        assert lines[deck.line_of("cap 1") - 1].startswith("cap")
        assert lines[deck.line_of("sweep") - 1].startswith("sweep")

    def test_validate_false_defers_count_checks(self):
        bad = PAPER_DECK.replace("num j 2", "num j 3")
        deck = parse_semsim(bad, validate=False)  # does not raise
        problems = deck.validation_problems()
        assert any("num j 3" in message for message, _line in problems)

    def test_superconductor_directive(self):
        deck = parse_semsim(
            "junc 1 1 2 1e-6 1e-18\ncap 2 0 3e-18\nvdc 1 0.01\n"
            "super 0.0002 1.2\n"
        )
        assert deck.superconductor is not None
        assert deck.superconductor.delta0 == pytest.approx(0.0002 * EV)
        assert deck.superconductor.tc == 1.2


class TestRoundTrip:
    def test_write_then_parse_preserves_deck(self):
        deck = parse_semsim(PAPER_DECK)
        text = write_semsim(deck)
        again = parse_semsim(text)
        assert again.junctions == deck.junctions
        assert again.capacitors == deck.capacitors
        assert again.sources == deck.sources
        assert again.symmetric_node == deck.symmetric_node
        assert again.temperature == deck.temperature
        assert again.cotunnel == deck.cotunnel
        assert again.jumps == deck.jumps
        assert again.sweep == deck.sweep
        assert again.record == deck.record


class TestDeckExecution:
    def test_single_point_run(self):
        deck = parse_semsim(
            "junc 1 1 3 1e-6 1e-18\njunc 2 2 3 1e-6 1e-18\ncap 4 3 3e-18\n"
            "vdc 1 0.02\nvdc 2 -0.02\nvdc 4 0.0\ntemp 5\njumps 4000\nrecord 1 2 1\n"
        )
        curve = deck.run(solver="nonadaptive", seed=3)
        assert len(curve.currents) == 1
        assert curve.currents[0] > 1e-10  # conducting above threshold
