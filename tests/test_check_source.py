"""Tests for the repository-rule linter (``tools/check_source.py``)."""

import importlib.util
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
TOOL = REPO / "tools" / "check_source.py"

spec = importlib.util.spec_from_file_location("check_source", TOOL)
check_source = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_source)

HEADER = "from __future__ import annotations\n"


def violations_of(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return check_source.check_module(path)


def codes_of(tmp_path, source):
    return [code for _, code, _ in violations_of(tmp_path, source)]


class TestRules:
    def test_clean_module_passes(self, tmp_path):
        src = HEADER + "def f(x: float) -> float:\n    return 2 * x\n"
        assert violations_of(tmp_path, src) == []

    def test_bare_except_flagged(self, tmp_path):
        src = HEADER + "try:\n    pass\nexcept:\n    pass\n"
        assert "REPRO001" in codes_of(tmp_path, src)

    def test_except_exception_flagged(self, tmp_path):
        src = HEADER + "try:\n    pass\nexcept Exception:\n    pass\n"
        assert "REPRO001" in codes_of(tmp_path, src)

    def test_specific_except_allowed(self, tmp_path):
        src = HEADER + "try:\n    pass\nexcept (OSError, KeyError):\n    pass\n"
        assert codes_of(tmp_path, src) == []

    def test_raise_valueerror_flagged(self, tmp_path):
        src = HEADER + "def f():\n    raise ValueError('no')\n"
        assert "REPRO002" in codes_of(tmp_path, src)

    def test_raise_bare_name_flagged(self, tmp_path):
        src = HEADER + "def f():\n    raise RuntimeError\n"
        assert "REPRO002" in codes_of(tmp_path, src)

    def test_raise_semsim_error_allowed(self, tmp_path):
        src = HEADER + (
            "from repro.errors import PhysicsError\n"
            "def f():\n    raise PhysicsError('no')\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_reraise_allowed(self, tmp_path):
        src = HEADER + "try:\n    pass\nexcept OSError:\n    raise\n"
        assert codes_of(tmp_path, src) == []

    def test_notimplementederror_allowed(self, tmp_path):
        src = HEADER + "def f():\n    raise NotImplementedError\n"
        assert codes_of(tmp_path, src) == []

    def test_float_literal_equality_flagged(self, tmp_path):
        src = HEADER + "def f(x):\n    return x == 0.5\n"
        assert "REPRO003" in codes_of(tmp_path, src)

    def test_zero_sentinel_allowed(self, tmp_path):
        src = HEADER + "def f(temperature):\n    return temperature == 0.0\n"
        assert codes_of(tmp_path, src) == []

    def test_physics_name_equality_flagged(self, tmp_path):
        src = HEADER + "def f(energy, other):\n    return energy == other\n"
        assert "REPRO003" in codes_of(tmp_path, src)

    def test_physics_attribute_equality_flagged(self, tmp_path):
        src = HEADER + "def f(a, b):\n    return a.voltage != b.limit\n"
        assert "REPRO003" in codes_of(tmp_path, src)

    def test_int_equality_allowed(self, tmp_path):
        src = HEADER + "def f(n):\n    return n == 3\n"
        assert codes_of(tmp_path, src) == []

    def test_missing_future_import_flagged(self, tmp_path):
        assert codes_of(tmp_path, "x = 1\n") == ["REPRO004"]

    def test_waiver_comment_suppresses(self, tmp_path):
        src = HEADER + (
            "def f():\n"
            "    raise ValueError('x')  # repro-lint: allow\n"
        )
        assert codes_of(tmp_path, src) == []


class TestRepoIsClean:
    def test_src_repro_passes(self, capsys):
        assert check_source.main([str(REPO / "src" / "repro")]) == 0

    def test_tool_lints_itself(self, capsys):
        assert check_source.main([str(TOOL)]) == 0

    def test_violations_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    raise ValueError('x')\n")
        assert check_source.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REPRO002" in out and "REPRO004" in out
        assert f"{bad}:2:" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert check_source.main([str(tmp_path / "gone")]) == 2


class TestTypeGate:
    def test_mypy_config_covers_lint_surface(self):
        text = (REPO / "pyproject.toml").read_text()
        assert "[tool.mypy]" in text
        for module in ("repro.lint", "repro.errors", "repro.constants",
                       "repro.cli"):
            assert f'"{module}' in text

    @pytest.mark.skipif(shutil.which("mypy") is None,
                        reason="mypy not installed")
    def test_mypy_passes_on_typed_surface(self):
        result = subprocess.run(
            [shutil.which("mypy"), "-p", "repro.lint", "-m", "repro.errors",
             "-m", "repro.constants", "-m", "repro.cli"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
