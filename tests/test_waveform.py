"""Tests for AC source drive (waveforms + piecewise-constant KMC)."""

import numpy as np
import pytest

from repro.circuit import build_electron_pump, build_set, pump_cycle_voltages
from repro.constants import E_CHARGE
from repro.core import (
    Constant,
    MonteCarloEngine,
    PiecewiseLinear,
    SimulationConfig,
    Sine,
    Square,
    run_with_waveforms,
)
from repro.errors import SimulationError


class TestWaveformShapes:
    def test_constant(self):
        assert Constant(0.01).value(123.0) == 0.01

    def test_sine(self):
        wave = Sine(amplitude=1.0, frequency=1.0, offset=0.5)
        assert wave.value(0.0) == pytest.approx(0.5)
        assert wave.value(0.25) == pytest.approx(1.5)
        assert wave.value(0.75) == pytest.approx(-0.5)

    def test_square(self):
        wave = Square(low=0.0, high=1.0, frequency=1.0, duty=0.25)
        assert wave.value(0.1) == 1.0
        assert wave.value(0.5) == 0.0
        assert wave.value(1.1) == 1.0  # periodic

    def test_piecewise_linear(self):
        wave = PiecewiseLinear(times=(0.0, 1.0, 2.0), values=(0.0, 1.0, 0.0))
        assert wave.value(-5.0) == 0.0
        assert wave.value(0.5) == pytest.approx(0.5)
        assert wave.value(1.5) == pytest.approx(0.5)
        assert wave.value(9.0) == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            Sine(1.0, frequency=0.0)
        with pytest.raises(SimulationError):
            Square(0.0, 1.0, frequency=1.0, duty=1.5)
        with pytest.raises(SimulationError):
            PiecewiseLinear(times=(0.0,), values=(1.0,))
        with pytest.raises(SimulationError):
            PiecewiseLinear(times=(1.0, 0.5), values=(0.0, 1.0))


class TestDeadlineStepping:
    def test_boundary_event_discarded_in_blockade(self):
        """Deep in blockade the next event is astronomically far away;
        a deadline must stop the clock exactly there with no event."""
        circuit = build_set(vs=0.005, vd=-0.005)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=1.0, solver="nonadaptive",
                                      seed=1)
        )
        t0 = engine.solver.time
        event = engine.solver.step(deadline=t0 + 1e-9)
        assert event is None
        assert engine.solver.time == pytest.approx(t0 + 1e-9)
        assert engine.solver.stats.events == 0

    def test_conducting_events_fire_before_deadline(self):
        circuit = build_set(vs=0.04, vd=-0.04)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=1.0, solver="nonadaptive",
                                      seed=2)
        )
        deadline = engine.solver.time + 1e-9
        fired = 0
        while engine.solver.time < deadline:
            if engine.solver.step(deadline=deadline) is None:
                break
            fired += 1
        assert fired > 10
        assert engine.solver.time <= deadline * (1 + 1e-12)

    @pytest.mark.parametrize("solver", ["nonadaptive", "adaptive"])
    def test_frozen_interval_advances_clock(self, solver):
        circuit = build_set(vs=0.0, vd=0.0)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=0.0, solver=solver, seed=3)
        )
        t0 = engine.solver.time
        assert engine.solver.step(deadline=t0 + 5e-9) is None
        assert engine.solver.time == pytest.approx(t0 + 5e-9)


class TestDrivenCircuits:
    def test_square_gate_modulates_current(self):
        """A square-wave gate switches the SET between blockade and
        conduction; events concentrate in the conducting half-cycles."""
        circuit = build_set(vs=0.005, vd=-0.005)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=1.0, solver="adaptive",
                                      seed=4)
        )
        period = 1e-8
        result = run_with_waveforms(
            engine,
            {"vg": Square(low=0.0, high=0.03, frequency=1.0 / period)},
            duration=4 * period,
            time_step=period / 10,
        )
        assert result.events > 50          # conducts during high gate
        assert result.discarded_boundaries > 0  # frozen during low gate
        assert result.duration == pytest.approx(4 * period, rel=1e-9)

    def test_sine_driven_pump_transfers_charge(self):
        """Phase-shifted sine gates implement the quantised pump under
        true AC drive (one electron per cycle)."""
        pump = build_electron_pump()
        engine = MonteCarloEngine(
            pump, SimulationConfig(temperature=0.3, solver="adaptive", seed=5)
        )
        e_over_cg = E_CHARGE / 2e-18
        period = 1e-7
        cycles = 8
        waves = {
            "vg1": Sine(0.25 * e_over_cg, 1.0 / period,
                        offset=0.4 * e_over_cg),
            "vg2": Sine(0.25 * e_over_cg, 1.0 / period,
                        offset=0.4 * e_over_cg, phase=-np.pi / 2),
        }
        start = int(engine.solver.flux[2])
        run_with_waveforms(engine, waves, duration=cycles * period,
                           time_step=period / 24)
        pumped = (int(engine.solver.flux[2]) - start) / cycles
        assert pumped == pytest.approx(1.0, abs=0.4)

    def test_validation(self):
        circuit = build_set(vs=0.02, vd=-0.02)
        engine = MonteCarloEngine(circuit, SimulationConfig(temperature=1.0))
        with pytest.raises(SimulationError):
            run_with_waveforms(engine, {}, duration=1e-9, time_step=1e-10)
        with pytest.raises(SimulationError):
            run_with_waveforms(engine, {"vg": Constant(0.0)},
                               duration=0.0, time_step=1e-10)
