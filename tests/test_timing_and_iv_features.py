"""Tests for static timing analysis and I-V feature extraction."""

import numpy as np
import pytest

from repro.analysis import (
    blockade_extent,
    differential_conductance,
    oscillation_period,
)
from repro.constants import E_CHARGE
from repro.errors import NetlistError, SimulationError
from repro.logic import (
    Gate,
    GateKind,
    LogicNetlist,
    analyze_mapped,
    analyze_timing,
    build_benchmark,
    decompose,
)


class TestStaticTiming:
    def _chain(self, n):
        gates, prev = [], "x"
        for i in range(n):
            gates.append(Gate(f"g{i}", GateKind.INV, (prev,), f"n{i}"))
            prev = f"n{i}"
        return LogicNetlist("chain", ["x"], [prev], gates)

    def test_depth_counts_gates(self):
        report = analyze_timing(self._chain(5))
        assert report.depth[report.critical_outputs[0]] == 5

    def test_arrival_accumulates_cell_delays(self):
        report = analyze_timing(self._chain(3), fanout_penalty=0.0)
        assert report.critical_path_delay == pytest.approx(3 * 1.0e-9)

    def test_fanout_penalty_applies(self):
        no_load = analyze_timing(self._chain(2), fanout_penalty=0.0)
        loaded = analyze_timing(self._chain(2), fanout_penalty=1e-9)
        assert loaded.critical_path_delay > no_load.critical_path_delay

    def test_critical_path_walks_back_to_an_input(self):
        net = decompose(build_benchmark("Full-Adder").netlist)
        report = analyze_timing(net)
        path = report.critical_path(net)
        assert path[0] in net.inputs
        assert path[-1] == report.critical_outputs[0]

    def test_non_primitive_gate_rejected(self):
        net = LogicNetlist(
            "x", ["a", "b"], ["y"], [Gate("g", GateKind.XOR2, ("a", "b"), "y")]
        )
        with pytest.raises(NetlistError):
            analyze_timing(net)

    def test_deeper_benchmark_has_longer_estimate(self):
        shallow = analyze_mapped(build_benchmark("2-to-10 decoder"))
        deep = analyze_mapped(build_benchmark("54LS181"))
        assert deep.critical_path_delay > shallow.critical_path_delay

    def test_estimates_rank_measured_depths(self):
        """Depth ordering should agree with the structural intuition:
        the parity tree (XOR-heavy) runs much deeper than a decoder."""
        decoder = analyze_mapped(build_benchmark("74154"))
        parity = analyze_mapped(build_benchmark("74LS280"))
        d_dec = decoder.depth[decoder.critical_outputs[0]]
        d_par = parity.depth[parity.critical_outputs[0]]
        assert d_par > d_dec


class TestIVFeatures:
    def test_differential_conductance_of_linear_iv(self):
        v = np.linspace(-1, 1, 21)
        g = differential_conductance(v, v / 50.0)
        np.testing.assert_allclose(g, 0.02, rtol=1e-9)

    def test_blockade_extent_on_synthetic_curve(self):
        v = np.linspace(-0.04, 0.04, 81)
        i = np.where(np.abs(v) > 0.032, (np.abs(v) - 0.032) * np.sign(v), 0.0)
        region = blockade_extent(v, i)
        assert region.lower == pytest.approx(-0.032, abs=2e-3)
        assert region.upper == pytest.approx(+0.032, abs=2e-3)
        assert region.width == pytest.approx(0.064, abs=4e-3)

    def test_blockade_extent_of_simulated_set(self):
        from repro.core import SimulationConfig, sweep_iv
        from repro.circuit import build_set

        v = np.linspace(-0.04, 0.04, 33)
        curve = sweep_iv(
            build_set(), v,
            SimulationConfig(temperature=1.0, solver="adaptive", seed=4),
            jumps_per_point=1500,
        )
        region = blockade_extent(curve.voltages, curve.currents)
        assert region.width == pytest.approx(2 * 0.032, rel=0.15)

    def test_flat_curve_rejected(self):
        with pytest.raises(SimulationError):
            blockade_extent(np.linspace(-1, 1, 9), np.zeros(9))

    def test_oscillation_period_measures_e_over_cg(self):
        from repro.master import MasterEquationSolver
        from repro.circuit import build_set

        period_expected = E_CHARGE / 3e-18
        gates = np.linspace(0.0, 2.2 * period_expected, 45)
        currents = []
        for vg in gates:
            circuit = build_set(vs=0.002, vd=-0.002, vg=float(vg))
            solver = MasterEquationSolver(circuit, temperature=2.0)
            currents.append(float(solver.steady_state().junction_currents[0]))
        measured = oscillation_period(gates, np.array(currents))
        assert measured == pytest.approx(period_expected, rel=0.1)

    def test_too_few_points_rejected(self):
        with pytest.raises(SimulationError):
            differential_conductance(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        with pytest.raises(SimulationError):
            oscillation_period(np.zeros(3), np.zeros(3))
