"""Tests for Cooper-pair tunneling (Josephson energy + Lorentzian rate)."""

import numpy as np
import pytest

from repro.constants import E_CHARGE, H_PLANCK, HBAR, K_B, MEV, R_QUANTUM
from repro.errors import PhysicsError
from repro.physics.cooper import (
    cooper_pair_rate,
    default_linewidth,
    josephson_energy,
    validate_regime,
)

DELTA = 0.21 * MEV


class TestJosephsonEnergy:
    def test_zero_temperature_ambegaokar_baratoff(self):
        r = 2.1e5
        expected = H_PLANCK * DELTA / (8 * E_CHARGE**2 * r)
        assert josephson_energy(r, DELTA, 0.0) == pytest.approx(expected)

    def test_finite_temperature_reduces_ej(self):
        r = 2.1e5
        cold = josephson_energy(r, DELTA, 0.0)
        warm = josephson_energy(r, DELTA, DELTA / K_B)  # kT = Delta
        assert warm < cold

    def test_low_temperature_tanh_correction_negligible(self):
        r = 2.1e5
        cold = josephson_energy(r, DELTA, 0.0)
        nearly_cold = josephson_energy(r, DELTA, 0.05 * DELTA / K_B)
        assert nearly_cold == pytest.approx(cold, rel=1e-6)

    def test_scales_inversely_with_resistance(self):
        assert josephson_energy(1e5, DELTA, 0.0) == pytest.approx(
            2 * josephson_energy(2e5, DELTA, 0.0)
        )

    def test_normal_junction_has_zero_ej(self):
        assert josephson_energy(1e5, 0.0, 0.0) == 0.0

    def test_rejects_bad_resistance(self):
        with pytest.raises(PhysicsError):
            josephson_energy(0.0, DELTA, 0.0)


class TestRegimeValidation:
    def test_accepts_high_resistance_small_ej(self):
        validate_regime(1e6, 1e-26, 1e-22)

    def test_rejects_low_resistance(self):
        with pytest.raises(PhysicsError):
            validate_regime(0.5 * R_QUANTUM, 1e-26, 1e-22)

    def test_rejects_large_josephson_energy(self):
        with pytest.raises(PhysicsError):
            validate_regime(1e6, 1e-22, 1e-23)


class TestCooperPairRate:
    EJ = 5e-25
    GAMMA = 4e-24

    def test_peak_at_zero_detuning(self):
        on_peak = cooper_pair_rate(0.0, self.EJ, self.GAMMA)
        off_peak = cooper_pair_rate(10 * self.GAMMA, self.EJ, self.GAMMA)
        assert on_peak > off_peak

    def test_peak_value(self):
        expected = 2.0 * self.EJ**2 / (HBAR * self.GAMMA)
        assert cooper_pair_rate(0.0, self.EJ, self.GAMMA) == pytest.approx(expected)

    def test_half_width_at_half_maximum(self):
        peak = cooper_pair_rate(0.0, self.EJ, self.GAMMA)
        at_hwhm = cooper_pair_rate(self.GAMMA / 2.0, self.EJ, self.GAMMA)
        assert at_hwhm == pytest.approx(peak / 2.0)

    def test_symmetric_lorentzian(self):
        dw = 2.7 * self.GAMMA
        assert cooper_pair_rate(dw, self.EJ, self.GAMMA) == pytest.approx(
            cooper_pair_rate(-dw, self.EJ, self.GAMMA)
        )

    def test_scales_with_ej_squared(self):
        assert cooper_pair_rate(0.0, 2 * self.EJ, self.GAMMA) == pytest.approx(
            4 * cooper_pair_rate(0.0, self.EJ, self.GAMMA)
        )

    def test_vector_input(self):
        dw = np.linspace(-5 * self.GAMMA, 5 * self.GAMMA, 21)
        rates = cooper_pair_rate(dw, self.EJ, self.GAMMA)
        assert rates.shape == dw.shape
        assert rates.argmax() == 10

    def test_rejects_nonpositive_linewidth(self):
        with pytest.raises(PhysicsError):
            cooper_pair_rate(0.0, self.EJ, 0.0)


class TestDefaultLinewidth:
    def test_cold_limit_is_small_fraction_of_gap(self):
        assert default_linewidth(DELTA, 0.0) == pytest.approx(0.02 * DELTA)

    def test_thermal_broadening_takes_over_when_warm(self):
        t = 0.52
        assert default_linewidth(DELTA, t) == pytest.approx(K_B * t)

    def test_rejects_zero_gap(self):
        with pytest.raises(PhysicsError):
            default_linewidth(0.0)

    def test_rejects_negative_temperature(self):
        with pytest.raises(PhysicsError):
            default_linewidth(DELTA, -1.0)
