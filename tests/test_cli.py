"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

DECK = """
junc 1 1 3 1e-6 1e-18
junc 2 2 3 1e-6 1e-18
cap 4 3 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 4 0.0
temp 5
record 1 2 1
jumps 2000
sweep 1 0.02 0.02
symm 2
"""


@pytest.fixture
def deck_file(tmp_path):
    path = tmp_path / "set.deck"
    path.write_text(DECK)
    return path


class TestInfo:
    def test_reports_circuit_stats(self, deck_file, capsys):
        assert main(["info", str(deck_file)]) == 0
        out = capsys.readouterr().out
        assert "junctions:      2" in out
        assert "islands:        1" in out
        assert "temperature:    5.0 K" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "nope.deck")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_deck_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.deck"
        bad.write_text("frobnicate 7\n")
        assert main(["info", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_prints_csv(self, deck_file, capsys):
        assert main(["run", str(deck_file), "--solver", "nonadaptive",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0] == "sweep_voltage_V,current_A"
        assert len(lines) == 4  # header + 3 sweep points

    def test_writes_csv_file(self, deck_file, tmp_path, capsys):
        out_path = tmp_path / "iv.csv"
        assert main([
            "run", str(deck_file), "--solver", "nonadaptive",
            "--output", str(out_path),
        ]) == 0
        assert out_path.exists()
        assert out_path.read_text().startswith("sweep_voltage_V")


class TestBenchmarks:
    def test_lists_all_fifteen(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "c1908" in out and "6988" in out
        assert out.count("junctions") == 15

    def test_benchmark_detail(self, capsys):
        assert main(["benchmark", "74LS138"]) == 0
        out = capsys.readouterr().out
        assert "junctions:   168" in out

    def test_unknown_benchmark_is_an_error(self, capsys):
        assert main(["benchmark", "c6288"]) == 1
        assert "error" in capsys.readouterr().err
