"""Tests for the ``python -m repro`` command-line interface."""

from pathlib import Path

import pytest

from repro.cli import main

DATA = Path(__file__).parent / "data"

DECK = """
junc 1 1 3 1e-6 1e-18
junc 2 2 3 1e-6 1e-18
cap 4 3 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 4 0.0
temp 5
record 1 2 1
jumps 2000
sweep 1 0.02 0.02
symm 2
"""


@pytest.fixture
def deck_file(tmp_path):
    path = tmp_path / "set.deck"
    path.write_text(DECK)
    return path


class TestInfo:
    def test_reports_circuit_stats(self, deck_file, capsys):
        assert main(["info", str(deck_file)]) == 0
        out = capsys.readouterr().out
        assert "junctions:      2" in out
        assert "islands:        1" in out
        assert "temperature:    5.0 K" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "nope.deck")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_deck_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.deck"
        bad.write_text("frobnicate 7\n")
        assert main(["info", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_prints_csv(self, deck_file, capsys):
        assert main(["run", str(deck_file), "--solver", "nonadaptive",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0] == "sweep_voltage_V,current_A"
        assert len(lines) == 4  # header + 3 sweep points

    def test_writes_csv_file(self, deck_file, tmp_path, capsys):
        out_path = tmp_path / "iv.csv"
        assert main([
            "run", str(deck_file), "--solver", "nonadaptive",
            "--output", str(out_path),
        ]) == 0
        assert out_path.exists()
        assert out_path.read_text().startswith("sweep_voltage_V")


class TestLint:
    def test_clean_deck_exits_zero(self, deck_file, capsys):
        assert main(["lint", str(deck_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_deck_exits_two(self, capsys):
        code = main(["lint", str(DATA / "floating_island.deck")])
        assert code == 2
        out = capsys.readouterr().out
        assert "SEM010" in out and "error" in out

    def test_warning_deck_exits_one(self, capsys):
        code = main(["lint", str(DATA / "low_resistance.deck")])
        assert code == 1
        assert "SEM030" in capsys.readouterr().out

    def test_logic_netlist_is_sniffed(self, capsys):
        code = main(["lint", str(DATA / "combinational_loop.net")])
        assert code == 2
        assert "SEM052" in capsys.readouterr().out

    def test_explicit_format_overrides_sniffing(self, capsys):
        code = main(["lint", "--format", "logic",
                     str(DATA / "undriven_input.net")])
        assert code == 2
        assert "SEM050" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.deck")]) == 2
        assert "error" in capsys.readouterr().err

    def test_nothing_to_lint_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_unparseable_text_reports_sem001(self, tmp_path, capsys):
        bad = tmp_path / "bad.deck"
        bad.write_text("junc 1 1\n")
        assert main(["lint", str(bad)]) == 2
        assert "SEM001" in capsys.readouterr().out

    def test_single_benchmark(self, capsys):
        assert main(["lint", "--benchmark", "c1908"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_all_benchmarks_have_no_errors(self, capsys):
        code = main(["lint", "--benchmarks"])
        assert code <= 1  # warnings allowed, errors not
        out = capsys.readouterr().out
        assert "error" not in out

    def test_codes_table(self, capsys):
        assert main(["lint", "--codes"]) == 0
        out = capsys.readouterr().out
        assert "SEM010" in out and "SEM052" in out and "fix:" in out

    def test_unknown_benchmark_exits_one(self, capsys):
        assert main(["lint", "--benchmark", "c6288"]) == 1
        assert "error" in capsys.readouterr().err


class TestStrictRun:
    def test_strict_refuses_defective_deck(self, capsys):
        code = main(["run", "--strict", str(DATA / "floating_island.deck")])
        assert code == 1
        err = capsys.readouterr().err
        assert "SEM010" in err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback

    def test_defective_deck_without_strict_still_fails_cleanly(self, capsys):
        # the singular electrostatics problem surfaces as a SemsimError
        code = main(["run", str(DATA / "floating_island.deck")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestInfoLintSummary:
    def test_clean_deck_reports_clean(self, deck_file, capsys):
        assert main(["info", str(deck_file)]) == 0
        assert "lint:           clean" in capsys.readouterr().out

    def test_warning_deck_points_at_lint(self, capsys):
        assert main(["info", str(DATA / "low_resistance.deck")]) == 0
        out = capsys.readouterr().out
        assert "warnings" in out and "repro lint" in out


class TestBenchmarks:
    def test_lists_all_fifteen(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "c1908" in out and "6988" in out
        assert out.count("junctions") == 15

    def test_benchmark_detail(self, capsys):
        assert main(["benchmark", "74LS138"]) == 0
        out = capsys.readouterr().out
        assert "junctions:   168" in out

    def test_unknown_benchmark_is_an_error(self, capsys):
        assert main(["benchmark", "c6288"]) == 1
        assert "error" in capsys.readouterr().err


class TestRunTrace:
    def test_trace_file_is_written(self, deck_file, tmp_path, capsys):
        trace = tmp_path / "run.json"
        assert main(["run", str(deck_file), "--seed", "1",
                     "--trace", str(trace)]) == 0
        captured = capsys.readouterr()
        # stdout stays a clean CSV; telemetry goes to stderr
        assert captured.out.startswith("sweep_voltage_V")
        assert "trace events" in captured.err
        import json

        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_jsonl_suffix_selects_jsonl(self, deck_file, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["run", str(deck_file), "--trace", str(trace)]) == 0
        import json

        first = json.loads(trace.read_text().splitlines()[0])
        assert "name" in first and "ph" not in first  # raw records, not chrome

    def test_stats_table_on_stderr(self, deck_file, capsys):
        assert main(["run", str(deck_file), "--seed", "1"]) == 0
        err = capsys.readouterr().err
        assert "solver stats" in err
        assert "sequential_rate_evaluations" in err


class TestInfoProbe:
    def test_probe_prints_stats_table(self, deck_file, capsys):
        assert main(["info", str(deck_file), "--probe", "200"]) == 0
        out = capsys.readouterr().out
        assert "solver stats (200-event probe)" in out
        assert "full_refreshes" in out


class TestProfile:
    def test_summary_and_chrome_trace(self, deck_file, tmp_path, capsys):
        trace = tmp_path / "profile.json"
        assert main(["profile", str(deck_file), "--seed", "2",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "profile: solver=adaptive" in out
        assert "phase wall time" in out
        assert "work saved" in out
        assert "hottest junctions" in out
        import json

        payload = json.loads(trace.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "engine.run" in names and "solver.event" in names
        assert payload["otherData"]["metrics"]["counters"]["solver.events"] > 0

    def test_nonadaptive_profile(self, deck_file, capsys):
        assert main(["profile", str(deck_file), "--solver",
                     "nonadaptive"]) == 0
        assert "solver=nonadaptive" in capsys.readouterr().out

    def test_baseline_comparison(self, deck_file, capsys):
        assert main(["profile", str(deck_file), "--baseline"]) == 0
        assert "measured baseline" in capsys.readouterr().out

    def test_missing_deck_exits_two(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope.deck")]) == 2
        assert "error" in capsys.readouterr().err
