"""Tests for component definitions and validation."""

import pytest

from repro.circuit.components import (
    GROUND,
    BackgroundCharge,
    Capacitor,
    NodeKind,
    NodeRef,
    Superconductor,
    TunnelJunction,
    VoltageSource,
    canonical_label,
)
from repro.errors import CircuitError


class TestCanonicalLabel:
    def test_integer_zero_is_ground(self):
        assert canonical_label(0) == GROUND

    def test_string_zero_is_ground(self):
        assert canonical_label("0") == GROUND

    def test_other_labels_untouched(self):
        assert canonical_label("island") == "island"
        assert canonical_label(7) == 7


class TestTunnelJunction:
    def test_valid_junction(self):
        j = TunnelJunction("j1", "a", "b", 1e6, 1e-18)
        assert j.resistance == 1e6

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(CircuitError):
            TunnelJunction("j1", "a", "b", 0.0, 1e-18)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(CircuitError):
            TunnelJunction("j1", "a", "b", 1e6, -1e-18)

    def test_rejects_self_loop(self):
        with pytest.raises(CircuitError):
            TunnelJunction("j1", "a", "a", 1e6, 1e-18)

    def test_rejects_self_loop_via_ground_aliases(self):
        with pytest.raises(CircuitError):
            TunnelJunction("j1", 0, "0", 1e6, 1e-18)


class TestCapacitor:
    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(CircuitError):
            Capacitor("c1", "a", "b", 0.0)

    def test_rejects_self_loop(self):
        with pytest.raises(CircuitError):
            Capacitor("c1", "x", "x", 1e-18)


class TestVoltageSource:
    def test_rejects_driving_ground(self):
        with pytest.raises(CircuitError):
            VoltageSource("v1", 0, 0.1)

    def test_negative_voltage_allowed(self):
        assert VoltageSource("v1", "n", -0.02).voltage == -0.02


class TestBackgroundCharge:
    def test_rejects_ground(self):
        with pytest.raises(CircuitError):
            BackgroundCharge("0", 0.5)

    def test_fractional_charge_allowed(self):
        assert BackgroundCharge("island", 0.65).charge_e == 0.65


class TestSuperconductor:
    def test_valid(self):
        sc = Superconductor(delta0=3e-23, tc=1.2)
        assert sc.tc == 1.2

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(CircuitError):
            Superconductor(delta0=0.0, tc=1.2)

    def test_rejects_nonpositive_tc(self):
        with pytest.raises(CircuitError):
            Superconductor(delta0=3e-23, tc=0.0)


class TestNodeRef:
    def test_island_flag(self):
        assert NodeRef(NodeKind.ISLAND, 3).is_island
        assert not NodeRef(NodeKind.EXTERNAL, 0).is_island

    def test_frozen_and_hashable(self):
        a = NodeRef(NodeKind.ISLAND, 1)
        b = NodeRef(NodeKind.ISLAND, 1)
        assert a == b
        assert hash(a) == hash(b)
