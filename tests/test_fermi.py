"""Tests for the Fermi occupation and detailed-balance weight."""

import numpy as np
import pytest

from repro.constants import K_B
from repro.errors import PhysicsError
from repro.physics.fermi import bose_weight, fermi


class TestFermi:
    def test_zero_energy_is_half(self):
        assert fermi(0.0, 1.0) == pytest.approx(0.5)

    def test_deep_below_fermi_level_is_one(self):
        assert fermi(-100 * K_B, 1.0) == pytest.approx(1.0)

    def test_far_above_fermi_level_is_zero(self):
        assert fermi(+100 * K_B, 1.0) == pytest.approx(0.0)

    def test_zero_temperature_is_step_function(self):
        assert fermi(-1e-22, 0.0) == 1.0
        assert fermi(+1e-22, 0.0) == 0.0
        assert fermi(0.0, 0.0) == 0.5

    def test_symmetry_f_of_minus_e(self):
        e = 2.5 * K_B
        assert fermi(-e, 1.0) == pytest.approx(1.0 - fermi(e, 1.0))

    def test_no_overflow_at_extreme_argument(self):
        assert fermi(1e-15, 0.001) == 0.0
        assert fermi(-1e-15, 0.001) == 1.0

    def test_array_input(self):
        out = fermi(np.array([-1e-25, 0.0, 1e-25]), 1.0)
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)

    def test_negative_temperature_rejected(self):
        with pytest.raises(PhysicsError):
            fermi(0.0, -1.0)


class TestBoseWeight:
    def test_limit_at_zero_energy_is_kt(self):
        kt = K_B * 2.0
        assert bose_weight(0.0, 2.0) == pytest.approx(kt)

    def test_large_negative_energy_is_linear(self):
        e = -50 * K_B
        assert bose_weight(e, 1.0) == pytest.approx(-e, rel=1e-6)

    def test_large_positive_energy_vanishes(self):
        assert bose_weight(1000 * K_B, 1.0) == pytest.approx(0.0, abs=1e-30)

    def test_zero_temperature_limits(self):
        assert bose_weight(-1e-22, 0.0) == pytest.approx(1e-22)
        assert bose_weight(+1e-22, 0.0) == 0.0

    def test_detailed_balance_identity(self):
        # w(-E) / w(E) = exp(E / kT)
        t, e = 1.3, 3.7 * K_B
        ratio = bose_weight(-e, t) / bose_weight(e, t)
        assert ratio == pytest.approx(np.exp(e / (K_B * t)), rel=1e-10)

    def test_always_nonnegative(self):
        energies = np.linspace(-1e-21, 1e-21, 101)
        assert np.all(bose_weight(energies, 0.5) >= 0.0)

    def test_extreme_argument_no_overflow(self):
        assert np.isfinite(bose_weight(1e-12, 0.001))
