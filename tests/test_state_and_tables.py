"""Tests for charge state, junction tables and circuit topology views."""

import numpy as np
import pytest

from repro.circuit import (
    ChargeState,
    CircuitBuilder,
    Electrostatics,
    JunctionTable,
    build_set,
)
from repro.constants import E_CHARGE
from repro.errors import CircuitError


class TestChargeState:
    def test_neutral(self):
        s = ChargeState.neutral(3)
        assert s.key() == (0, 0, 0)

    def test_transfer_island_island(self, double_dot_circuit):
        s = ChargeState.neutral(2)
        rj = double_dot_circuit.resolved_junctions()[1]
        s.apply_transfer(rj.ref_a, rj.ref_b)
        assert s.occupation[rj.ref_a.index] == -1
        assert s.occupation[rj.ref_b.index] == +1

    def test_transfer_from_lead_changes_one_island(self, set_circuit):
        s = ChargeState.neutral(1)
        rj = set_circuit.resolved_junctions()[0]  # source -> island
        s.apply_transfer(rj.ref_a, rj.ref_b, n_electrons=2)
        assert s.occupation[0] == 2

    def test_transfer_requires_positive_count(self, set_circuit):
        s = ChargeState.neutral(1)
        rj = set_circuit.resolved_junctions()[0]
        with pytest.raises(CircuitError):
            s.apply_transfer(rj.ref_a, rj.ref_b, n_electrons=0)

    def test_copy_is_independent(self):
        a = ChargeState.neutral(2)
        b = a.copy()
        b.occupation[0] = 5
        assert a.occupation[0] == 0

    def test_equality(self):
        assert ChargeState.neutral(2) == ChargeState.neutral(2)


class TestJunctionTable:
    def test_free_energy_matches_scalar_path(self, set_circuit, set_stat, set_table):
        vext = set_circuit.external_voltages()
        occ = np.array([1], dtype=np.int64)
        v = set_stat.potentials(occ, vext)
        dw_fw, dw_bw = set_table.free_energy_changes(v, vext)
        for j, rj in enumerate(set_circuit.resolved_junctions()):
            expected_fw = set_stat.free_energy_change(rj.ref_a, rj.ref_b, v, vext)
            expected_bw = set_stat.free_energy_change(rj.ref_b, rj.ref_a, v, vext)
            assert dw_fw[j] == pytest.approx(expected_fw, rel=1e-12)
            assert dw_bw[j] == pytest.approx(expected_bw, rel=1e-12)

    def test_cooper_pair_free_energy_scaling(self, set_circuit, set_stat, set_table):
        # the charging self-energy term scales with (2e)^2 = 4x
        vext = set_circuit.external_voltages()
        v = set_stat.potentials(np.zeros(1, dtype=np.int64), vext)
        dw1_fw, dw1_bw = set_table.free_energy_changes(v, vext)
        dw2_fw, dw2_bw = set_table.free_energy_changes(v, vext, dq=-2 * E_CHARGE)
        charging_1 = (dw1_fw + dw1_bw) / 2.0
        charging_2 = (dw2_fw + dw2_bw) / 2.0
        assert np.allclose(charging_2, 4.0 * charging_1)

    def test_forward_backward_sum_is_twice_charging(self, set_table, set_circuit,
                                                    set_stat):
        vext = set_circuit.external_voltages()
        v = set_stat.potentials(np.zeros(1, dtype=np.int64), vext)
        dw_fw, dw_bw = set_table.free_energy_changes(v, vext)
        assert np.allclose(
            dw_fw + dw_bw, E_CHARGE**2 * set_table.charging, rtol=1e-12
        )


class TestTopologyViews:
    def test_set_junctions_are_neighbors(self, set_circuit):
        neighbors = set_circuit.junction_neighbors()
        assert neighbors[0] == (1,)
        assert neighbors[1] == (0,)

    def test_junctions_on_island(self, set_circuit):
        assert set_circuit.junctions_on_island()[0] == (0, 1)

    def test_capacitive_coupling_extends_neighbors(self):
        # two SETs whose islands are linked only by a capacitor: their
        # junctions must still test each other (the adaptive BFS walks
        # capacitive hops)
        b = CircuitBuilder()
        b.add_junction("a1", "l1", "i1", 1e6, 1e-18)
        b.add_junction("a2", "i1", "0", 1e6, 1e-18)
        b.add_junction("b1", "l2", "i2", 1e6, 1e-18)
        b.add_junction("b2", "i2", "0", 1e6, 1e-18)
        b.add_capacitor("cc", "i1", "i2", 2e-18)
        b.add_voltage_source("v1", "l1", 0.01)
        b.add_voltage_source("v2", "l2", 0.01)
        c = b.build()
        neighbors = c.junction_neighbors()
        a1 = c.junction_index("a1")
        b1 = c.junction_index("b1")
        assert b1 in neighbors[a1]
        assert a1 in neighbors[b1]

    def test_island_adjacency_symmetric(self, double_dot_circuit):
        adjacency = double_dot_circuit.island_adjacency()
        for i, nbrs in enumerate(adjacency):
            for j in nbrs:
                assert i in adjacency[j]

    def test_with_source_voltages_does_not_mutate(self, set_circuit):
        updated = set_circuit.with_source_voltages({"vg": 0.02})
        assert set_circuit.sources[2].voltage == 0.0
        assert updated.sources[2].voltage == 0.02

    def test_with_unknown_source_rejected(self, set_circuit):
        with pytest.raises(CircuitError):
            set_circuit.with_source_voltages({"nope": 0.1})

    def test_index_lookups(self, set_circuit):
        assert set_circuit.junction_index("j2") == 1
        assert set_circuit.source_index("vg") == 3
        assert set_circuit.island_index("island") == 0
        with pytest.raises(CircuitError):
            set_circuit.junction_index("zzz")
        with pytest.raises(CircuitError):
            set_circuit.island_index("source")
