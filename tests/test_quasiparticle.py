"""Tests for quasi-particle tunneling (Eq. 3) and its rate tables."""

import numpy as np
import pytest

from repro.constants import E_CHARGE, K_B, MEV
from repro.errors import PhysicsError
from repro.physics.orthodox import orthodox_rate
from repro.physics.quasiparticle import (
    QuasiparticleRateTable,
    qp_current,
    qp_rate,
)

DELTA = 0.2 * MEV
R = 1e5


class TestQpRate:
    def test_reduces_to_orthodox_when_gaps_vanish(self):
        for dw in (-5e-23, -1e-23, 1e-23):
            assert qp_rate(dw, R, 0.0, 0.0, 1.0) == pytest.approx(
                float(orthodox_rate(dw, R, 1.0)), rel=1e-9
            )

    def test_gapped_at_zero_temperature(self):
        # no quasi-particle transport unless the energy gain exceeds
        # Delta1 + Delta2
        dw = -1.5 * DELTA
        assert qp_rate(dw, R, DELTA, DELTA, 0.0) == 0.0

    def test_flows_beyond_combined_gap_at_zero_temperature(self):
        dw = -3.0 * DELTA
        assert qp_rate(dw, R, DELTA, DELTA, 0.0) > 0.0

    def test_ohmic_asymptote_far_beyond_gap(self):
        dw = -60.0 * DELTA
        rate = qp_rate(dw, R, DELTA, DELTA, 0.05)
        ohmic = -dw / (E_CHARGE**2 * R)
        assert rate == pytest.approx(ohmic, rel=0.08)

    def test_detailed_balance(self):
        t = 0.5
        dw = 2.2 * DELTA
        forward = qp_rate(-dw, R, DELTA, DELTA, t)
        backward = qp_rate(+dw, R, DELTA, DELTA, t)
        assert backward / forward == pytest.approx(
            np.exp(-dw / (K_B * t)), rel=1e-3
        )

    def test_subgap_thermal_rate_is_finite_at_finite_temperature(self):
        # thermally excited quasi-particles give sub-gap transport -
        # the origin of the singularity-matching features
        rate_cold = qp_rate(-0.5 * DELTA, R, DELTA, DELTA, 0.1)
        rate_warm = qp_rate(-0.5 * DELTA, R, DELTA, DELTA, 0.8)
        assert rate_warm > rate_cold

    def test_rejects_bad_resistance(self):
        with pytest.raises(PhysicsError):
            qp_rate(-1e-23, -1e5, DELTA, DELTA, 1.0)

    def test_rejects_negative_gap(self):
        with pytest.raises(PhysicsError):
            qp_rate(-1e-23, R, -DELTA, DELTA, 1.0)


class TestQpCurrent:
    def test_antisymmetric_in_voltage(self):
        v = 3.0 * DELTA / E_CHARGE
        ip = qp_current(+v, R, DELTA, DELTA, 0.1)
        im = qp_current(-v, R, DELTA, DELTA, 0.1)
        assert ip == pytest.approx(-im, rel=1e-9)

    def test_gap_structure_in_iv(self):
        t = 0.05
        v_below = 1.0 * DELTA / E_CHARGE
        v_above = 4.0 * DELTA / E_CHARGE
        i_below = qp_current(v_below, R, DELTA, DELTA, t)
        i_above = qp_current(v_above, R, DELTA, DELTA, t)
        assert abs(i_below) < 1e-3 * abs(i_above)

    def test_ohmic_far_above_gap(self):
        v = 100.0 * DELTA / E_CHARGE
        assert qp_current(v, R, DELTA, DELTA, 0.1) == pytest.approx(
            v / R, rel=0.05
        )


class TestRateTable:
    @pytest.fixture(scope="class")
    def table(self):
        return QuasiparticleRateTable(R, DELTA, DELTA, 0.3, n_points=2001)

    def test_matches_direct_quadrature_inside_span(self, table):
        for dw in (-4.0 * DELTA, -2.5 * DELTA, 0.7 * DELTA):
            direct = qp_rate(dw, R, DELTA, DELTA, 0.3)
            assert table(dw) == pytest.approx(direct, rel=2e-2, abs=1e-12)

    def test_extends_ohmically_below_span(self, table):
        # the extension is the shifted ohmic rate with a continuity
        # factor matched at the table edge; far below the span it must
        # agree with direct quadrature to a few percent
        dw = -3.0 * table.dw_max
        direct = qp_rate(dw, R, DELTA, DELTA, 0.3)
        assert table(dw) == pytest.approx(direct, rel=0.05)

    def test_extension_continuous_at_span_edge(self, table):
        inside = table(-table.dw_max * (1.0 - 1e-9))
        outside = table(-table.dw_max * (1.0 + 1e-9))
        assert outside == pytest.approx(inside, rel=1e-3)

    def test_vanishes_above_span(self, table):
        assert table(+3.0 * table.dw_max) == 0.0

    def test_vector_evaluation(self, table):
        dw = np.linspace(-5 * DELTA, 5 * DELTA, 11)
        out = table(dw)
        assert out.shape == dw.shape
        assert np.all(out >= 0.0)

    def test_rejects_tiny_table(self):
        with pytest.raises(PhysicsError):
            QuasiparticleRateTable(R, DELTA, DELTA, 0.3, n_points=2)
