"""Tests for the fault-tolerant checkpoint/resume layer (repro.recovery).

The contracts under test:

* an interrupted-then-resumed sweep is **bit-identical** (arrays and
  fold-order combined event hash) to an uninterrupted run, for
  ``jobs in {1, 2, 4}``;
* a shard retried after an injected worker crash or timeout reproduces
  the no-fault run exactly, because retries reuse the shard's own
  spawned seed;
* corrupted, mismatched or missing checkpoint manifests are rejected
  with a clear :class:`RecoveryError` — never silently reused;
* ``repro run`` reports a retry-exhausted shard's cause chain and
  exits non-zero instead of surfacing a raw executor traceback.

Faults are staged through :mod:`repro.recovery.faults`; nothing here
monkeypatches executor internals.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.circuit import build_set
from repro.core import SimulationConfig, sweep_iv, sweep_map
from repro.errors import RecoveryError, SimulationError
from repro.parallel import ensemble_iv
from repro.parallel.pool import execute_shards
from repro.recovery import (
    CheckpointStore,
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_record,
    injected_faults,
)
from repro.telemetry import registry as telemetry

# fast-but-fault-tolerant policy for tests: tiny deterministic backoff
FAST = ExecutionPolicy(backoff_base=0.01, backoff_cap=0.05)


def _double(x):
    return 2 * x


def _fragile(x):
    if x < 0:
        raise SimulationError(f"shard input {x} is negative")
    return x + 1


def _map_args(points=5, rows=3):
    return (
        build_set(),
        np.linspace(-0.04, 0.04, points),
        np.linspace(0.0, 0.01, rows),
    )


def _run_map(jobs=1, seed=7, checkpoint=None, policy=None, jumps=250):
    circuit, volts, gates = _map_args()
    return sweep_map(
        circuit, volts, gates,
        SimulationConfig(temperature=5.0, seed=seed, event_hash=True),
        jumps_per_point=jumps, jobs=jobs,
        checkpoint=checkpoint, policy=policy,
    )


class TestExecutionPolicy:
    def test_defaults_are_valid(self):
        ExecutionPolicy()

    @pytest.mark.parametrize("kwargs", (
        {"max_attempts": 0},
        {"shard_timeout": 0.0},
        {"shard_timeout": -1.0},
        {"backoff_base": -0.1},
        {"max_pool_rebuilds": -1},
    ))
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(SimulationError):
            ExecutionPolicy(**kwargs)

    def test_backoff_is_deterministic_and_capped(self):
        policy = ExecutionPolicy(backoff_base=0.1, backoff_cap=0.3)
        delays = [policy.backoff_delay(n) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.0, 0.1, 0.2, 0.3, 0.3]
        assert delays == [policy.backoff_delay(n) for n in (1, 2, 3, 4, 5)]


class TestFaultPlan:
    def test_spec_selection_by_shard_and_attempt(self):
        plan = FaultPlan((
            FaultSpec(shard=1, action="raise", attempts=(2,)),
            FaultSpec(shard=1, action="kill", attempts=(3,)),
        ))
        assert plan.spec_for(0, 1) is None
        assert plan.spec_for(1, 1) is None
        assert plan.spec_for(1, 2).action == "raise"
        assert plan.spec_for(1, 3).action == "kill"

    def test_empty_attempts_fire_every_attempt(self):
        plan = FaultPlan((FaultSpec(shard=0, action="raise", attempts=()),))
        assert all(plan.spec_for(0, n) is not None for n in range(1, 6))

    def test_rejects_unknown_action(self):
        with pytest.raises(SimulationError, match="unknown fault action"):
            FaultSpec(shard=0, action="explode")

    def test_injection_context_is_scoped(self):
        from repro.recovery import current_plan

        assert current_plan() is None
        with injected_faults(FaultPlan()):
            assert current_plan() is not None
        assert current_plan() is None


class TestCheckpointStore:
    def test_fresh_store_writes_versioned_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        out = execute_shards(_double, [1, 2, 3], jobs=1, checkpoint=store)
        assert out == [2, 4, 6]
        data = json.loads(store.manifest_path.read_text())
        assert data["version"] == 1
        assert len(data["shards"]) == 3
        assert all(rec["status"] == "done" for rec in data["shards"])

    def test_unwritable_directory_rejected_eagerly(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        with pytest.raises(RecoveryError, match="not writable"):
            CheckpointStore(blocker / "ckpt")

    def test_resume_without_manifest_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", resume=True)
        with pytest.raises(RecoveryError, match="no checkpoint manifest"):
            execute_shards(_double, [1, 2], jobs=1, checkpoint=store)

    def test_resume_replays_without_rerunning(self, tmp_path):
        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1, 2, 3], jobs=1, checkpoint=store)
        # if any shard re-ran, the every-attempt fault would detonate
        plan = FaultPlan(tuple(
            FaultSpec(shard=i, action="raise", attempts=()) for i in range(3)
        ))
        with injected_faults(plan):
            out = execute_shards(
                _double, [1, 2, 3], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )
        assert out == [2, 4, 6]

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1, 2, 3], jobs=1, checkpoint=store)
        with pytest.raises(RecoveryError, match="different run"):
            execute_shards(
                _double, [1, 2, 4], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )

    def test_fingerprint_mismatch_names_payload_change(self, tmp_path):
        # same interpreter, different payloads: the message must blame
        # the workload, not the environment
        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1, 2, 3], jobs=1, checkpoint=store)
        with pytest.raises(RecoveryError, match="workload itself changed"):
            execute_shards(
                _double, [1, 2, 4], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )

    def test_fingerprint_mismatch_names_version_skew(self, tmp_path):
        import json

        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1, 2, 3], jobs=1, checkpoint=store)
        # simulate a manifest written by another interpreter/numpy: the
        # fingerprint cannot match, and the diagnostic must say why
        data = json.loads(store.manifest_path.read_text())
        data["meta"]["python"] = "3.0.0"
        data["meta"]["numpy"] = "0.1"
        data["fingerprint"] = "0" * len(data["fingerprint"])
        store.manifest_path.write_text(json.dumps(data))
        with pytest.raises(
            RecoveryError, match=r"version skew \(python 3\.0\.0 -> "
        ):
            execute_shards(
                _double, [1, 2, 3], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )

    def test_manifest_records_environment_versions(self, tmp_path):
        import json
        import platform

        import numpy as np

        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1, 2], jobs=1, checkpoint=store)
        meta = json.loads(store.manifest_path.read_text())["meta"]
        assert meta["python"] == platform.python_version()
        assert meta["numpy"] == np.__version__

    def test_shard_count_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1, 2, 3], jobs=1, checkpoint=store)
        with pytest.raises(RecoveryError, match="shard layout changed"):
            execute_shards(
                _double, [1, 2], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )

    def test_corrupted_record_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1, 2, 3], jobs=1, checkpoint=store)
        corrupt_record(tmp_path, 1)
        with pytest.raises(RecoveryError, match="corrupt"):
            execute_shards(
                _double, [1, 2, 3], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )

    def test_manifest_version_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        execute_shards(_double, [1], jobs=1, checkpoint=store)
        data = json.loads(store.manifest_path.read_text())
        data["version"] = 99
        store.manifest_path.write_text(json.dumps(data))
        with pytest.raises(RecoveryError, match="version"):
            execute_shards(
                _double, [1], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )

    def test_unparseable_manifest_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.manifest_path.write_text("{ not json")
        with pytest.raises(RecoveryError, match="not valid JSON"):
            execute_shards(
                _double, [1], jobs=1,
                checkpoint=CheckpointStore(tmp_path, resume=True),
            )

    def test_fresh_store_overwrites_stale_manifest(self, tmp_path):
        execute_shards(_double, [1, 2], jobs=1, checkpoint=CheckpointStore(tmp_path))
        out = execute_shards(
            _double, [5, 6], jobs=1, checkpoint=CheckpointStore(tmp_path)
        )
        assert out == [10, 12]


class TestResumeEquivalence:
    """The acceptance contract: interrupt, resume, get identical bits."""

    @pytest.mark.parametrize("jobs", (1, 2, 4))
    def test_interrupted_sweep_map_resumes_bit_identical(self, tmp_path, jobs):
        base = _run_map(jobs=jobs)
        plan = FaultPlan((FaultSpec(shard=1, action="raise", attempts=()),))
        with injected_faults(plan):
            with pytest.raises(SimulationError):
                _run_map(jobs=jobs, checkpoint=CheckpointStore(tmp_path))
        resumed = _run_map(
            jobs=jobs, checkpoint=CheckpointStore(tmp_path, resume=True)
        )
        assert np.array_equal(base.currents, resumed.currents)
        assert base.event_hash is not None
        assert base.event_hash == resumed.event_hash

    def test_resume_hits_counted(self, tmp_path):
        plan = FaultPlan((FaultSpec(shard=2, action="raise", attempts=()),))
        with injected_faults(plan):
            with pytest.raises(SimulationError):
                _run_map(jobs=1, checkpoint=CheckpointStore(tmp_path))
        with telemetry.session(trace=False) as reg:
            _run_map(jobs=1, checkpoint=CheckpointStore(tmp_path, resume=True))
        # serially, shards 0 and 1 completed before shard 2 detonated
        assert reg.metrics()["counters"]["recovery.resume_hits"] == 2

    def test_interrupted_chunked_sweep_iv_resumes_bit_identical(self, tmp_path):
        circuit = build_set()
        volts = np.linspace(-0.02, 0.02, 6)
        cfg = SimulationConfig(temperature=5.0, seed=11, event_hash=True)
        base = sweep_iv(
            circuit, volts, cfg, jumps_per_point=200, chunks=3, jobs=2
        )
        plan = FaultPlan((FaultSpec(shard=2, action="raise", attempts=()),))
        with injected_faults(plan):
            with pytest.raises(SimulationError):
                sweep_iv(
                    circuit, volts, cfg, jumps_per_point=200, chunks=3,
                    jobs=2, checkpoint=CheckpointStore(tmp_path),
                )
        resumed = sweep_iv(
            circuit, volts, cfg, jumps_per_point=200, chunks=3, jobs=2,
            checkpoint=CheckpointStore(tmp_path, resume=True),
        )
        assert np.array_equal(base.currents, resumed.currents)
        assert base.event_hash == resumed.event_hash
        # merged solver work survives the round-trip through the manifest
        assert base.stats is not None and resumed.stats is not None
        assert base.stats.events == resumed.stats.events

    def test_interrupted_ensemble_resumes_bit_identical(self, tmp_path):
        circuit = build_set()
        volts = np.linspace(-0.02, 0.02, 4)
        cfg = SimulationConfig(temperature=5.0, seed=3, event_hash=True)
        base = ensemble_iv(
            circuit, volts, 3, cfg, jumps_per_point=200, jobs=2
        )
        plan = FaultPlan((FaultSpec(shard=0, action="raise", attempts=()),))
        with injected_faults(plan):
            with pytest.raises(SimulationError):
                ensemble_iv(
                    circuit, volts, 3, cfg, jumps_per_point=200, jobs=2,
                    checkpoint=CheckpointStore(tmp_path),
                )
        resumed = ensemble_iv(
            circuit, volts, 3, cfg, jumps_per_point=200, jobs=2,
            checkpoint=CheckpointStore(tmp_path, resume=True),
        )
        assert np.array_equal(base.replica_currents, resumed.replica_currents)
        assert base.event_hash == resumed.event_hash


class TestRetryEquivalence:
    def test_killed_shard_retries_bit_identical(self):
        base = _run_map(jobs=2)
        with telemetry.session(trace=False) as reg:
            with injected_faults(
                FaultPlan((FaultSpec(shard=0, action="kill"),))
            ):
                recovered = _run_map(jobs=2, policy=FAST)
        assert np.array_equal(base.currents, recovered.currents)
        assert base.event_hash == recovered.event_hash
        counters = reg.metrics()["counters"]
        assert counters["recovery.shards_retried"] >= 1
        assert counters["recovery.pool_rebuilds"] >= 1

    def test_inline_retry_after_raise_bit_identical(self):
        base = _run_map(jobs=1)
        policy = ExecutionPolicy(retry_raised=True, backoff_base=0.01)
        with injected_faults(
            FaultPlan((FaultSpec(shard=1, action="raise", attempts=(1,)),))
        ):
            recovered = _run_map(jobs=1, policy=policy)
        assert np.array_equal(base.currents, recovered.currents)
        assert base.event_hash == recovered.event_hash

    def test_pooled_exhaustion_raises_recovery_error(self):
        policy = ExecutionPolicy(
            max_attempts=2, backoff_base=0.01, inline_fallback=False,
            max_pool_rebuilds=10,
        )
        plan = FaultPlan((FaultSpec(shard=0, action="kill", attempts=()),))
        with injected_faults(plan):
            with pytest.raises(RecoveryError, match="failed after"):
                execute_shards(
                    _fragile, [1, 2, 3], jobs=2, policy=policy
                )

    def test_inline_exhaustion_chains_the_cause(self):
        policy = ExecutionPolicy(
            max_attempts=2, retry_raised=True, backoff_base=0.01
        )
        plan = FaultPlan((FaultSpec(shard=0, action="raise", attempts=()),))
        with injected_faults(plan):
            with pytest.raises(RecoveryError, match="failed after 2") as info:
                execute_shards(_fragile, [1, 2], jobs=1, policy=policy)
        assert info.value.shard == 0
        assert info.value.attempts == 2
        assert isinstance(info.value.__cause__, InjectedFault)

    def test_raised_exception_propagates_unchanged_by_default(self):
        # the historical contract: no retry_raised means a worker
        # exception reaches the caller as-is, inline and pooled
        with pytest.raises(SimulationError, match="negative"):
            execute_shards(_fragile, [1, -2, 3], jobs=1)
        with pytest.raises(SimulationError, match="negative"):
            execute_shards(_fragile, [1, -2, 3], jobs=2)


class TestTimeoutAndDegradation:
    def test_hung_shard_times_out_and_retries_bit_identical(self):
        base = _run_map(jobs=2, jumps=150)
        policy = ExecutionPolicy(
            shard_timeout=0.5, backoff_base=0.01, max_pool_rebuilds=5
        )
        plan = FaultPlan((
            FaultSpec(shard=0, action="hang", attempts=(1,), delay=2.0),
        ))
        with telemetry.session(trace=False) as reg:
            with injected_faults(plan):
                recovered = _run_map(jobs=2, jumps=150, policy=policy)
        assert np.array_equal(base.currents, recovered.currents)
        assert base.event_hash == recovered.event_hash
        assert reg.metrics()["counters"]["recovery.pool_rebuilds"] >= 1

    def test_degrades_to_inline_after_rebuild_budget(self):
        policy = ExecutionPolicy(
            max_attempts=5, backoff_base=0.01, max_pool_rebuilds=0,
            inline_fallback=True,
        )
        plan = FaultPlan((FaultSpec(shard=0, action="kill", attempts=(1,)),))
        with telemetry.session(trace=False) as reg:
            with injected_faults(plan):
                out = execute_shards(_fragile, [1, 2, 3], jobs=2, policy=policy)
        assert out == [2, 3, 4]
        assert reg.metrics()["counters"]["recovery.pool_rebuilds"] == 1

    def test_rebuild_budget_without_fallback_fails(self):
        policy = ExecutionPolicy(
            max_attempts=5, backoff_base=0.01, max_pool_rebuilds=0,
            inline_fallback=False,
        )
        plan = FaultPlan((FaultSpec(shard=0, action="kill", attempts=(1,)),))
        with injected_faults(plan):
            with pytest.raises(RecoveryError, match="pool broke"):
                execute_shards(_fragile, [1, 2, 3], jobs=2, policy=policy)


DECK = """\
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
temp 5
record 1 2 2
jumps 400 1
sweep 2 0.02 0.01
"""

NO_SWEEP_DECK = """\
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
temp 5
record 1 2 2
jumps 400 1
"""


class TestDeckCheckpointing:
    def test_checkpoint_forces_event_hash(self, tmp_path):
        from repro.netlist import parse_semsim

        curve = parse_semsim(DECK).run(
            seed=3, chunks=2, checkpoint=CheckpointStore(tmp_path)
        )
        assert curve.event_hash is not None

    def test_operating_point_deck_rejects_checkpoint(self, tmp_path):
        from repro.netlist import parse_semsim

        with pytest.raises(SimulationError, match="sweep deck"):
            parse_semsim(NO_SWEEP_DECK).run(
                seed=3, checkpoint=CheckpointStore(tmp_path)
            )


class TestCliRecovery:
    def _write_deck(self, tmp_path):
        deck_file = tmp_path / "tiny.deck"
        deck_file.write_text(DECK)
        return deck_file

    def test_checkpoint_resume_roundtrip_matches_plain_run(
        self, tmp_path, capsys
    ):
        from repro.cli import main as cli_main

        deck_file = self._write_deck(tmp_path)
        ckpt = tmp_path / "ckpt"
        assert cli_main(["run", str(deck_file), "--chunks", "2"]) == 0
        plain = capsys.readouterr().out
        plan = FaultPlan((FaultSpec(shard=1, action="raise", attempts=()),))
        with injected_faults(plan):
            code = cli_main([
                "run", str(deck_file), "--chunks", "2",
                "--checkpoint", str(ckpt),
            ])
        assert code == 1
        assert "error:" in capsys.readouterr().err
        assert cli_main([
            "run", str(deck_file), "--chunks", "2",
            "--checkpoint", str(ckpt), "--resume",
        ]) == 0
        resumed = capsys.readouterr().out
        assert resumed == plain

    def test_retry_exhaustion_exits_nonzero_with_cause_chain(
        self, tmp_path, capsys
    ):
        # the bugfix: a sweep shard that exhausts its retries must
        # surface as exit 1 + the shard's cause chain on stderr, not as
        # a raw ProcessPoolExecutor traceback
        from repro.cli import main as cli_main

        deck_file = self._write_deck(tmp_path)
        plan = FaultPlan((FaultSpec(shard=0, action="kill", attempts=()),))
        with injected_faults(plan):
            code = cli_main([
                "run", str(deck_file), "--chunks", "2", "--jobs", "2",
                "--retries", "1",
            ])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err
        assert "attempt" in err
        assert "caused by:" in err
        assert "Traceback" not in err

    def test_resume_requires_checkpoint_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        deck_file = self._write_deck(tmp_path)
        assert cli_main(["run", str(deck_file), "--resume"]) == 1
        assert "--checkpoint" in capsys.readouterr().err

    def test_unusable_checkpoint_dir_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        deck_file = self._write_deck(tmp_path)
        blocker = tmp_path / "blocker"
        blocker.write_text("a file")
        code = cli_main([
            "run", str(deck_file), "--checkpoint", str(blocker / "ckpt"),
        ])
        assert code == 1
        assert "not writable" in capsys.readouterr().err


@pytest.mark.slow
class TestLongCampaign:
    """A fuller campaign: many shards, a mid-run crash at jobs=4, then
    resume — the scaled-up version of the tier-1 equivalence tests."""

    def test_large_map_interrupt_resume_and_retry(self, tmp_path):
        circuit = build_set()
        volts = np.linspace(-0.04, 0.04, 7)
        gates = np.linspace(0.0, 0.012, 8)
        cfg = SimulationConfig(temperature=5.0, seed=23, event_hash=True)
        base = sweep_map(
            circuit, volts, gates, cfg, jumps_per_point=800, jobs=4
        )
        plan = FaultPlan((
            FaultSpec(shard=3, action="kill", attempts=(1,)),
            FaultSpec(shard=5, action="raise", attempts=()),
        ))
        with injected_faults(plan):
            with pytest.raises(SimulationError):
                sweep_map(
                    circuit, volts, gates, cfg, jumps_per_point=800,
                    jobs=4, policy=FAST,
                    checkpoint=CheckpointStore(tmp_path),
                )
        resumed = sweep_map(
            circuit, volts, gates, cfg, jumps_per_point=800, jobs=4,
            checkpoint=CheckpointStore(tmp_path, resume=True),
        )
        assert np.array_equal(base.currents, resumed.currents)
        assert base.event_hash == resumed.event_hash
