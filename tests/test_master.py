"""Tests for the master-equation reference solver."""

import numpy as np
import pytest

from repro.circuit import build_set
from repro.core import MonteCarloEngine, SimulationConfig
from repro.master import MasterEquationSolver, enumerate_transitions


class TestStateExploration:
    def test_set_at_moderate_bias_has_few_states(self):
        circuit = build_set(vs=0.02, vd=-0.02)
        me = MasterEquationSolver(circuit, temperature=5.0)
        states, edges = me.explore()
        assert 2 <= len(states) <= 10
        assert len(edges) == len(states)

    def test_occupation_bound_respected(self):
        circuit = build_set(vs=0.02, vd=-0.02)
        me = MasterEquationSolver(circuit, temperature=5.0, occupation_bound=1)
        states, _ = me.explore()
        assert all(abs(n) <= 1 for state in states for n in state)

    def test_max_states_cap(self):
        circuit = build_set(vs=0.04, vd=-0.04)
        me = MasterEquationSolver(circuit, temperature=10.0, max_states=3)
        states, _ = me.explore()
        assert len(states) == 3


class TestSteadyState:
    def test_probabilities_normalised(self):
        circuit = build_set(vs=0.02, vd=-0.02, vg=0.01)
        me = MasterEquationSolver(circuit, temperature=5.0)
        result = me.steady_state()
        assert result.probabilities.sum() == pytest.approx(1.0)
        assert np.all(result.probabilities >= 0.0)

    def test_current_continuity(self):
        # steady state: current in through j1 equals current out via j2
        circuit = build_set(vs=0.02, vd=-0.02, vg=0.007)
        me = MasterEquationSolver(circuit, temperature=5.0)
        result = me.steady_state()
        assert result.junction_currents[0] == pytest.approx(
            -result.junction_currents[1], rel=1e-9
        )

    def test_zero_bias_zero_current(self):
        circuit = build_set(vs=0.0, vd=0.0, vg=0.01)
        me = MasterEquationSolver(circuit, temperature=5.0)
        result = me.steady_state()
        assert result.junction_currents[0] == pytest.approx(0.0, abs=1e-18)

    def test_detailed_balance_at_equilibrium(self):
        # with no bias the stationary distribution is Gibbs: every
        # edge satisfies pi_s Gamma_st = pi_t Gamma_ts
        circuit = build_set(vs=0.0, vd=0.0, vg=0.012)
        me = MasterEquationSolver(circuit, temperature=5.0)
        states, edges = me.explore()
        result = me.steady_state()
        index_of = {s: i for i, s in enumerate(states)}
        for s, outgoing in enumerate(edges):
            for target, transition in outgoing:
                reverse = [
                    tr for t2, tr in edges[target] if t2 == s
                ]
                if not reverse:
                    continue
                flow_fwd = result.probabilities[s] * transition.rate
                flow_bwd = result.probabilities[target] * reverse[0].rate
                if flow_fwd > 1e-6 * max(transition.rate, reverse[0].rate):
                    assert flow_fwd == pytest.approx(flow_bwd, rel=1e-6)

    def test_gate_periodicity_of_current(self):
        # SET current is periodic in gate charge with period e/Cg
        from repro.constants import E_CHARGE

        cg = 3e-18
        period = E_CHARGE / cg
        base = build_set(vs=0.01, vd=-0.01, vg=0.004)
        shifted = build_set(vs=0.01, vd=-0.01, vg=0.004 + period)
        i0 = MasterEquationSolver(base, temperature=2.0).steady_state()
        i1 = MasterEquationSolver(shifted, temperature=2.0).steady_state()
        assert i0.junction_currents[0] == pytest.approx(
            i1.junction_currents[0], rel=1e-6
        )


class TestAgainstMonteCarlo:
    def test_mc_converges_to_me_current(self):
        circuit = build_set(vs=0.02, vd=-0.02, vg=0.01)
        me_current = MasterEquationSolver(circuit, temperature=5.0).steady_state()
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=5.0, solver="nonadaptive", seed=17)
        )
        mc_current = engine.measure_current([0], jumps=60000)
        assert mc_current == pytest.approx(
            float(me_current.junction_currents[0]), rel=0.05
        )

    def test_mc_occupation_distribution_matches_me(self):
        circuit = build_set(vs=0.015, vd=-0.015, vg=0.015)
        me = MasterEquationSolver(circuit, temperature=5.0)
        result = me.steady_state()
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=5.0, solver="nonadaptive", seed=4)
        )
        # time-weighted occupancy histogram from the MC trajectory
        durations: dict[int, float] = {}
        last_time = 0.0
        for _ in range(40000):
            n = int(engine.solver.occupation[0])
            engine.run(max_jumps=1)
            now = engine.solver.time
            durations[n] = durations.get(n, 0.0) + (now - last_time)
            last_time = now
        total = sum(durations.values())
        for state, probability in zip(result.states, result.probabilities):
            if probability > 0.05:
                mc_probability = durations.get(state[0], 0.0) / total
                assert mc_probability == pytest.approx(probability, abs=0.04)


class TestTransitionEnumeration:
    def test_transitions_match_solver_channels(self, set_circuit):
        me = MasterEquationSolver(set_circuit, temperature=5.0)
        occupation = np.zeros(1, dtype=np.int64)
        transitions = enumerate_transitions(
            me.stat, me.table, me.model, occupation,
            set_circuit.external_voltages(),
        )
        kinds = {t.kind for t in transitions}
        assert kinds <= {"sequential"}
        assert all(t.rate > 0.0 for t in transitions)
