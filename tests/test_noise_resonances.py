"""Tests for counting statistics and analytic resonance positions."""

import numpy as np
import pytest

from repro.analysis import (
    blockade_threshold_bias,
    fano_factor,
    jqp_resonance_biases,
    singularity_matching_bias,
    windowed_counts,
)
from repro.analysis.resonances import affine_free_energy
from repro.circuit import Electrostatics, Superconductor, build_set
from repro.constants import E_CHARGE, MEV
from repro.core import MonteCarloEngine, SimulationConfig, symmetric_bias
from repro.errors import SimulationError


class TestFanoFactor:
    def test_symmetric_set_shows_suppression(self):
        circuit = build_set(vs=0.1, vd=-0.1)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=1.0, solver="nonadaptive",
                                      seed=5)
        )
        stats = fano_factor(engine, 0, n_windows=120)
        # double-junction partition noise: F between 1/2 and ~0.7
        assert 0.3 < stats.fano_factor < 0.75

    def test_asymmetric_set_approaches_poisson(self):
        circuit = build_set(r1=5e7, r2=1e6, vs=0.1, vd=-0.1)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=1.0, solver="nonadaptive",
                                      seed=6)
        )
        stats = fano_factor(engine, 0, n_windows=120)
        assert 0.75 < stats.fano_factor < 1.3

    def test_mean_current_consistent_with_direct_measurement(self):
        circuit = build_set(vs=0.1, vd=-0.1)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=1.0, solver="nonadaptive",
                                      seed=7)
        )
        stats = fano_factor(engine, 0, n_windows=60)
        engine2 = MonteCarloEngine(
            circuit, SimulationConfig(temperature=1.0, solver="nonadaptive",
                                      seed=8)
        )
        direct = abs(engine2.measure_current([0], 20000))
        assert stats.mean_current == pytest.approx(direct, rel=0.15)

    def test_requires_multiple_windows(self):
        circuit = build_set(vs=0.1, vd=-0.1)
        engine = MonteCarloEngine(circuit, SimulationConfig(temperature=1.0))
        with pytest.raises(SimulationError):
            windowed_counts(engine, 0, n_windows=1, window_time=1e-9)

    def test_frozen_circuit_rejected(self):
        circuit = build_set(vs=0.001, vd=-0.001)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=0.0, solver="nonadaptive")
        )
        with pytest.raises(SimulationError):
            fano_factor(engine, 0, n_windows=10, warmup_jumps=0)


class TestResonancePositions:
    def test_affine_energy_is_exact(self, set_circuit, set_stat):
        affine = affine_free_energy(
            set_circuit, set_stat, 0, symmetric_bias()
        )
        # check against a third, independent bias point
        vext = set_circuit.with_source_voltages(
            {"vs": 0.004, "vd": -0.004}
        ).external_voltages()
        v = set_stat.potentials(np.zeros(1, dtype=np.int64), vext)
        rj = set_circuit.resolved_junctions()[0]
        direct = set_stat.free_energy_change(rj.ref_a, rj.ref_b, v, vext)
        assert affine.offset + affine.slope * 0.008 == pytest.approx(
            direct, rel=1e-9
        )

    def test_set_threshold_is_e_over_csigma(self, set_circuit, set_stat):
        threshold = blockade_threshold_bias(
            set_circuit, set_stat, symmetric_bias()
        )
        assert threshold == pytest.approx(E_CHARGE / 5e-18, rel=1e-9)

    def test_gate_voltage_moves_threshold(self):
        stat_for = Electrostatics
        lo = build_set(vg=0.0)
        hi = build_set(vg=0.01)
        t_lo = blockade_threshold_bias(lo, stat_for(lo), symmetric_bias())
        t_hi = blockade_threshold_bias(hi, stat_for(hi), symmetric_bias())
        assert t_hi < t_lo  # the gate pulls the blockade edge in

    def test_gap_cost_widens_threshold(self, set_circuit, set_stat):
        bare = blockade_threshold_bias(set_circuit, set_stat, symmetric_bias())
        gapped = blockade_threshold_bias(
            set_circuit, set_stat, symmetric_bias(), gap_cost=2 * 0.2 * MEV
        )
        assert gapped > bare

    def test_jqp_positions_move_with_gate(self):
        sc = Superconductor(delta0=0.21 * MEV, tc=1.4)

        def sset(vg):
            return build_set(
                r1=2.1e5, r2=2.1e5, c1=1.1e-16, c2=1.1e-16, cg=1.4e-17,
                vg=vg, background_charge_e=0.65, superconductor=sc,
            )

        c0, c1 = sset(0.0), sset(0.004)
        biases0 = jqp_resonance_biases(
            c0, Electrostatics(c0), symmetric_bias(), max_bias=2e-3
        )
        biases1 = jqp_resonance_biases(
            c1, Electrostatics(c1), symmetric_bias(), max_bias=2e-3
        )
        assert biases0 and biases1
        assert biases0 != biases1  # the JQP lines are gate-dependent

    def test_singularity_matching_below_qp_threshold(self):
        sc = Superconductor(delta0=0.21 * MEV, tc=1.4)
        circuit = build_set(
            r1=2.1e5, r2=2.1e5, c1=1.1e-16, c2=1.1e-16, cg=1.4e-17,
            background_charge_e=0.65, superconductor=sc,
        )
        stat = Electrostatics(circuit)
        matching = singularity_matching_bias(
            circuit, stat, symmetric_bias(), gap=0.21 * MEV
        )
        qp_threshold = blockade_threshold_bias(
            circuit, stat, symmetric_bias(), gap_cost=2 * 0.21 * MEV
        )
        assert 0.0 < matching < qp_threshold
