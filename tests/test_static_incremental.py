"""Tests for the incremental / parallel static-analysis engine.

Covers the on-disk summary cache (content-keyed, transitively
invalidated through the callgraph), the ``changed=`` closure, the
``jobs`` fan-out, and the line-number-insensitive baseline
fingerprints with legacy acceptance.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.static import check_paths, load_baseline, write_baseline

HEADER = "from __future__ import annotations\n\n"


def _write_project(root: Path) -> None:
    """Three modules in a chain: leaf <- mid <- top, plus a bystander."""
    (root / "leaf.py").write_text(HEADER + textwrap.dedent(
        """
        from repro.static import units


        @units("charge: C, capacitance: F -> V")
        def potential(charge, capacitance):
            return charge / capacitance
        """
    ).lstrip())
    (root / "mid.py").write_text(HEADER + textwrap.dedent(
        """
        from leaf import potential

        from repro.constants import E_CHARGE
        from repro.static import units


        @units("capacitance: F -> J")
        def charging_energy(capacitance):
            return -E_CHARGE * potential(-E_CHARGE, capacitance)
        """
    ).lstrip())
    (root / "top.py").write_text(HEADER + textwrap.dedent(
        """
        from mid import charging_energy

        from repro.static import units


        @units("capacitance: F -> J")
        def doubled(capacitance):
            return 2.0 * charging_energy(capacitance)
        """
    ).lstrip())
    (root / "bystander.py").write_text(HEADER + textwrap.dedent(
        """
        def unrelated(x):
            return x + 1
        """
    ).lstrip())


def run(root: Path, cache: Path | None, **kw):
    return check_paths([root], relative_to=root, cache_dir=cache, **kw)


class TestIncrementalCache:
    def test_warm_rerun_reanalyzes_nothing(self, tmp_path):
        project, cache = tmp_path / "p", tmp_path / "cache"
        project.mkdir()
        _write_project(project)
        cold = run(project, cache)
        assert cold.findings == ()
        assert cold.analyzed == 4 and cold.cached == 0
        warm = run(project, cache)
        assert warm.findings == ()
        assert warm.analyzed == 0 and warm.cached == 4

    def test_same_content_different_mtime_still_hits(self, tmp_path):
        import os

        project, cache = tmp_path / "p", tmp_path / "cache"
        project.mkdir()
        _write_project(project)
        run(project, cache)
        # a no-op touch changes the mtime but not the content hash
        os.utime(project / "leaf.py")
        warm = run(project, cache)
        assert warm.analyzed == 0 and warm.cached == 4

    def test_edit_invalidates_dependents_transitively(self, tmp_path):
        project, cache = tmp_path / "p", tmp_path / "cache"
        project.mkdir()
        _write_project(project)
        run(project, cache)
        # change leaf's *declared return*: mid and top summaries depend
        # on it through the callgraph, so all three must re-analyse
        source = (project / "leaf.py").read_text()
        (project / "leaf.py").write_text(
            source + "\n\ndef helper(x):\n    return x\n"
        )
        after = run(project, cache)
        assert after.analyzed == 3 and after.cached == 1

    def test_cached_findings_identical_to_fresh(self, tmp_path):
        project, cache = tmp_path / "p", tmp_path / "cache"
        project.mkdir()
        _write_project(project)
        # seed a violation so there is a finding to rehydrate
        (project / "bad.py").write_text(HEADER + textwrap.dedent(
            """
            from repro.static import units


            @units("charge: C, voltage: V -> V")
            def energy(charge, voltage):
                return charge * voltage
            """
        ).lstrip())
        cold = run(project, cache)
        warm = run(project, cache)
        fresh = run(project, None)
        as_tuples = lambda r: [  # noqa: E731 - local shorthand
            (f.relpath, f.line, f.code, f.message, f.context)
            for f in r.findings
        ]
        assert as_tuples(cold) == as_tuples(fresh)
        assert as_tuples(warm) == as_tuples(fresh)
        assert warm.analyzed == 0

    def test_cache_disabled_for_partial_pass_runs(self, tmp_path):
        project, cache = tmp_path / "p", tmp_path / "cache"
        project.mkdir()
        _write_project(project)
        partial = run(project, cache, passes=("units",))
        assert partial.analyzed == -1  # sentinel: no cache accounting
        assert not cache.exists() or not any(cache.iterdir())


class TestJobs:
    def test_parallel_matches_serial(self, tmp_path):
        project, cache = tmp_path / "p", tmp_path / "cache"
        project.mkdir()
        _write_project(project)
        (project / "bad.py").write_text(HEADER + textwrap.dedent(
            """
            from repro.static import units


            @units("energy: J, temperature: K -> J")
            def f(energy, temperature):
                return energy + temperature
            """
        ).lstrip())
        serial = run(project, None)
        parallel = run(project, None, jobs=4)
        key = lambda r: [  # noqa: E731 - local shorthand
            (f.relpath, f.line, f.code, f.message) for f in r.findings
        ]
        assert key(parallel) == key(serial)
        assert key(serial) == [("bad.py", 8, "UNIT001",
                                serial.findings[0].message)]

    def test_parallel_cold_cache_populates_correctly(self, tmp_path):
        project, cache = tmp_path / "p", tmp_path / "cache"
        project.mkdir()
        _write_project(project)
        cold = run(project, cache, jobs=4)
        assert cold.analyzed == 4
        warm = run(project, cache)  # serial warm read of parallel write
        assert warm.analyzed == 0 and warm.cached == 4


class TestChanged:
    def test_changed_closure_limits_the_report(self, tmp_path):
        project = tmp_path / "p"
        project.mkdir()
        _write_project(project)
        # introduce a violation in every module so reporting scope shows
        for name in ("leaf", "mid", "top", "bystander"):
            path = project / f"{name}.py"
            path.write_text(
                path.read_text()
                + "\n\ndef bad():\n    return 1.38e-23\n"
            )
        full = run(project, None)
        assert sorted({f.relpath for f in full.findings}) == [
            "bystander.py", "leaf.py", "mid.py", "top.py",
        ]
        # changing only leaf.py must report leaf + its dependents
        scoped = run(project, None, changed=[str(project / "leaf.py")])
        assert sorted({f.relpath for f in scoped.findings}) == [
            "leaf.py", "mid.py", "top.py",
        ]

    def test_changed_outside_scan_set_is_ignored(self, tmp_path):
        project = tmp_path / "p"
        project.mkdir()
        _write_project(project)
        report = run(project, None, changed=[str(tmp_path / "elsewhere.py")])
        assert report.findings == ()


class TestBaselines:
    def _report_with_finding(self, tmp_path):
        project = tmp_path / "p"
        project.mkdir(exist_ok=True)
        (project / "bad.py").write_text(HEADER + textwrap.dedent(
            """
            from repro.static import units


            @units("charge: C, voltage: V -> V")
            def energy(charge, voltage):
                return charge * voltage
            """
        ).lstrip())
        return project, run(project, None)

    def test_fingerprint_survives_line_shifts(self, tmp_path):
        project, report = self._report_with_finding(tmp_path)
        (finding,) = report.findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(report, baseline_file)
        # shift the finding down two lines without touching its text
        source = (project / "bad.py").read_text()
        (project / "bad.py").write_text(
            source.replace(HEADER, HEADER + "\n\n", 1)
        )
        shifted = run(project, None, baseline=load_baseline(baseline_file))
        assert shifted.findings == ()
        (baselined,) = shifted.baselined
        assert baselined.line == finding.line + 2
        assert shifted.baseline_legacy_matches == 0

    def test_legacy_line_fingerprints_still_accepted(self, tmp_path):
        project, report = self._report_with_finding(tmp_path)
        (finding,) = report.findings
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(
            {"fingerprints": [finding.legacy_fingerprint()]}
        ))
        masked = run(project, None, baseline=load_baseline(baseline_file))
        assert masked.findings == ()
        assert masked.baseline_legacy_matches == 1

    def test_written_baselines_use_context_hashes(self, tmp_path):
        project, report = self._report_with_finding(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(report, baseline_file)
        payload = json.loads(baseline_file.read_text())
        assert all(":h" in fp for fp in payload["fingerprints"])
