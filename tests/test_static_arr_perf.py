"""Tests for the ARR/PERF passes against the seeded-bug corpus.

``tests/data/static/`` holds small kernel modules, each carrying exactly
one known defect, next to a ``*_clean.py`` twin with the defect fixed.
The analyzer must flag every seeded bug with exactly its expected code
and stay silent on every twin — both directions guard against rule
regressions (missed bugs *and* new false positives).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.static import check_paths

CORPUS = Path(__file__).parent / "data" / "static"

#: module stem -> the one code its seeded bug must produce
EXPECTED = {
    "arr001_broadcast": "ARR001",
    "arr001_matmul": "ARR001",
    "arr002_narrowing": "ARR002",
    "arr003_mutation": "ARR003",
    "arr004_axis": "ARR004",
    "arr004_rank": "ARR004",
    "perf001_loop": "PERF001",
    "perf002_alloc": "PERF002",
    "perf003_append": "PERF003",
    "perf004_lowerable": "PERF004",
}


def codes_in(path: Path) -> list[str]:
    report = check_paths([path], relative_to=CORPUS)
    return [f.code for f in report.findings]


class TestSeededBugs:
    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_bug_module_yields_exactly_its_code(self, stem):
        assert codes_in(CORPUS / f"{stem}.py") == [EXPECTED[stem]]

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_clean_twin_is_silent(self, stem):
        assert codes_in(CORPUS / f"{stem}_clean.py") == []

    def test_corpus_is_complete(self):
        stems = {p.stem for p in CORPUS.glob("*.py")}
        for stem in EXPECTED:
            assert stem in stems
            assert f"{stem}_clean" in stems


class TestArrUnit:
    """Targeted checks of interpreter behaviour beyond the corpus."""

    HEADER = (
        "from __future__ import annotations\n"
        "import numpy as np\n"
        "from repro.static import array_contract, hot\n"
    )

    def run(self, tmp_path, body):
        path = tmp_path / "kernel.py"
        path.write_text(self.HEADER + body)
        return [f.code for f in
                check_paths([path], relative_to=tmp_path).findings]

    def test_symbolic_dims_never_conflict(self, tmp_path):
        # (n_islands,) + (n_leads,) may be fine at runtime; no ARR001
        body = (
            '@array_contract(q="(n_islands,) float64",'
            ' b="(n_leads,) float64")\n'
            "def f(q, b):\n"
            "    return q + b\n"
        )
        assert self.run(tmp_path, body) == []

    def test_branch_join_widens_instead_of_flagging(self, tmp_path):
        body = (
            '@array_contract(q="(3,) float64", out="any float64")\n'
            "def f(q, flag):\n"
            "    if flag:\n"
            "        v = np.zeros(3)\n"
            "    else:\n"
            "        v = np.zeros(5)\n"
            "    return q * 1.0 + 0.0 * np.sum(v)\n"
        )
        assert self.run(tmp_path, body) == []

    def test_declared_mutates_allows_inplace(self, tmp_path):
        body = (
            '@array_contract(occ="(n,) int64", mutates=("occ",))\n'
            "def f(occ):\n"
            "    occ[0] += 1\n"
        )
        assert self.run(tmp_path, body) == []

    def test_view_of_parameter_still_guarded(self, tmp_path):
        # np.asarray returns the caller's array unchanged when dtypes
        # match: writing through the "local" name is still a mutation
        body = (
            '@array_contract(q="(n,) float64")\n'
            "def f(q):\n"
            "    view = np.asarray(q)\n"
            "    view[0] = 0.0\n"
        )
        assert self.run(tmp_path, body) == ["ARR003"]

    def test_copy_clears_the_alias(self, tmp_path):
        body = (
            '@array_contract(q="(n,) float64")\n'
            "def f(q):\n"
            "    local = q.copy()\n"
            "    local[0] = 0.0\n"
        )
        assert self.run(tmp_path, body) == []

    def test_out_kwarg_counts_as_mutation(self, tmp_path):
        body = (
            '@array_contract(q="(n,) float64")\n'
            "def f(q):\n"
            "    np.multiply(q, 2.0, out=q)\n"
        )
        assert self.run(tmp_path, body) == ["ARR003"]

    def test_contract_naming_missing_parameter_is_arr005(self, tmp_path):
        body = (
            '@array_contract(nope="(n,) float64")\n'
            "def f(q):\n"
            "    return q\n"
        )
        assert self.run(tmp_path, body) == ["ARR005"]

    def test_unannotated_functions_are_not_interpreted(self, tmp_path):
        # without a contract the ARR pass has no entry point: even a
        # provable conflict stays unreported (opt-in analysis)
        body = (
            "def f():\n"
            "    return np.zeros(3) + np.zeros(4)\n"
        )
        assert self.run(tmp_path, body) == []


class TestPerfUnit:
    HEADER = TestArrUnit.HEADER

    def run(self, tmp_path, body):
        path = tmp_path / "kernel.py"
        path.write_text(self.HEADER + body)
        return [f.code for f in
                check_paths([path], relative_to=tmp_path).findings]

    def test_cold_functions_are_exempt(self, tmp_path):
        # the same loop in an unmarked function is nobody's business
        body = (
            '@array_contract(dw="(n,) float64", out="(n,) float64")\n'
            "def f(dw):\n"
            "    out = np.empty_like(dw)\n"
            "    for i in range(len(dw)):\n"
            "        out[i] = dw[i] * 2.0\n"
            "    return out\n"
        )
        assert self.run(tmp_path, body) == []

    def test_scalar_loop_in_hot_kernel_allowed(self, tmp_path):
        body = (
            "@hot\n"
            '@array_contract(dw="(n,) float64", out="() float64")\n'
            "def f(dw):\n"
            "    total = 0.0\n"
            "    for _ in range(3):\n"
            "        total += float(np.sum(dw))\n"
            "    return total\n"
        )
        assert self.run(tmp_path, body) == []

    def test_list_growth_materialised_as_array(self, tmp_path):
        body = (
            "@hot\n"
            '@array_contract(dw="(n,) float64", out="any float64")\n'
            "def f(dw):\n"
            "    picked = []\n"
            "    for _ in range(3):\n"
            "        picked.append(float(np.sum(dw)))\n"
            "    return np.array(picked)\n"
        )
        assert self.run(tmp_path, body) == ["PERF003"]
