"""Tests for the numerical-stability (NUM) pass.

Corpus pins for every NUM code plus targeted checks of the guard
recognition — the pass must stay silent when the repo's own guarded
idioms (range tests, masked ``expm1``, log-sum-exp shifts) are used.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.static import check_paths

CORPUS = Path(__file__).parent / "data" / "static"

#: module stem -> the one code its seeded bug must produce
EXPECTED = {
    "num001_exp": "NUM001",
    "num002_expm1": "NUM002",
    "num003_equality": "NUM003",
    "num004_expdiff": "NUM004",
    "num005_float32": "NUM005",
}


def codes_in(path: Path) -> list[str]:
    report = check_paths([path], relative_to=CORPUS)
    return [f.code for f in report.findings]


class TestSeededBugs:
    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_bug_module_yields_exactly_its_code(self, stem):
        assert codes_in(CORPUS / f"{stem}.py") == [EXPECTED[stem]]

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_clean_twin_is_silent(self, stem):
        assert codes_in(CORPUS / f"{stem}_clean.py") == []

    def test_corpus_is_complete(self):
        stems = {p.stem for p in CORPUS.glob("*.py")}
        for stem in EXPECTED:
            assert stem in stems
            assert f"{stem}_clean" in stems


class TestGuardRecognition:
    """Idioms from the working kernels that must not be flagged."""

    HEADER = (
        "from __future__ import annotations\n"
        "import numpy as np\n"
    )

    def run(self, tmp_path, body):
        path = tmp_path / "kernel.py"
        path.write_text(self.HEADER + body)
        return [f.code for f in
                check_paths([path], relative_to=tmp_path).findings]

    def test_range_guard_bounds_the_name(self, tmp_path):
        # the bcs.py idiom: an early-return range test
        body = (
            "def f(arg):\n"
            "    if arg > 500.0:\n"
            "        return 0.0\n"
            "    return np.exp(arg)\n"
        )
        assert self.run(tmp_path, body) == []

    def test_max_shift_is_bounded(self, tmp_path):
        # the log-sum-exp shift used in repro.spice
        body = (
            "def f(x):\n"
            "    return np.exp(x - x.max())\n"
        )
        assert self.run(tmp_path, body) == []

    def test_mask_subscript_is_bounded(self, tmp_path):
        # the fermi.py idiom: expm1 over a pre-selected safe range
        body = (
            "def f(x, normal):\n"
            "    out = np.empty_like(x)\n"
            "    out[normal] = x[normal] / np.expm1(x[normal])\n"
            "    return out\n"
        )
        assert self.run(tmp_path, body) == []

    def test_comparison_against_zero_is_allowed(self, tmp_path):
        # exact zero tests of *names* are idiomatic (T == 0 dispatch)
        body = (
            "def f(temperature):\n"
            "    return temperature == 0.0\n"
        )
        assert self.run(tmp_path, body) == []

    def test_float32_sum_keyword_flagged(self, tmp_path):
        body = (
            "def f(x):\n"
            "    return np.sum(x, dtype=np.float32)\n"
        )
        assert self.run(tmp_path, body) == ["NUM005"]

    def test_float64_accumulation_is_silent(self, tmp_path):
        body = (
            "def f(chunks):\n"
            "    acc = np.zeros(4)\n"
            "    for chunk in chunks:\n"
            "        acc += chunk\n"
            "    return acc\n"
        )
        assert self.run(tmp_path, body) == []
