"""Additional property-based tests (sampling tree, waveforms, tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import format_table
from repro.core.pairtree import PairRateTree
from repro.core.waveform import PiecewiseLinear, Sine, Square

rates = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    min_size=1, max_size=40,
)


class TestPairTreeProperties:
    @given(fw=rates)
    @settings(max_examples=50, deadline=None)
    def test_total_is_sum(self, fw):
        fw = np.array(fw)
        bw = fw[::-1].copy()
        tree = PairRateTree(fw, bw)
        assert tree.total == pytest.approx(float((fw + bw).sum()), rel=1e-9,
                                           abs=1e-12)

    @given(fw=rates, fraction=st.floats(min_value=0.0, max_value=0.999999))
    @settings(max_examples=80, deadline=None)
    def test_sample_matches_linear_scan(self, fw, fraction):
        fw = np.array(fw)
        bw = np.zeros_like(fw)
        tree = PairRateTree(fw, bw)
        if tree.total <= 0.0:
            return
        target = fraction * tree.total
        j, residual = tree.sample(target)
        cumulative = np.cumsum(fw)
        expected = min(int(np.searchsorted(cumulative, target, side="right")),
                       len(fw) - 1)
        assert j == expected
        assert 0.0 <= residual <= fw[j] + 1e-6 * tree.total + 1e-12

    @given(fw=rates, updates=st.lists(
        st.tuples(st.integers(0, 39), st.floats(0.0, 1e12)), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_updates_keep_total_consistent(self, fw, updates):
        fw = np.array(fw)
        bw = np.zeros_like(fw)
        tree = PairRateTree(fw, bw)
        for j, value in updates:
            if j < len(fw):
                fw[j] = value
                tree.update(j, value)
        assert tree.total == pytest.approx(float(fw.sum()), rel=1e-9,
                                           abs=1e-12)


class TestWaveformProperties:
    @given(
        amplitude=st.floats(1e-6, 1.0), frequency=st.floats(1e3, 1e9),
        offset=st.floats(-1.0, 1.0),
        t=st.floats(0.0, 1e-3),
    )
    @settings(max_examples=100, deadline=None)
    def test_sine_bounded(self, amplitude, frequency, offset, t):
        wave = Sine(amplitude, frequency, offset)
        assert offset - amplitude - 1e-12 <= wave.value(t) <= (
            offset + amplitude + 1e-12
        )

    @given(
        low=st.floats(-1.0, 0.0), high=st.floats(0.0, 1.0),
        frequency=st.floats(1e3, 1e9), duty=st.floats(0.01, 0.99),
        t=st.floats(0.0, 1e-3),
    )
    @settings(max_examples=100, deadline=None)
    def test_square_takes_only_its_levels(self, low, high, frequency, duty, t):
        wave = Square(low, high, frequency, duty)
        assert wave.value(t) in (low, high)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_piecewise_linear_within_hull(self, data):
        n = data.draw(st.integers(2, 6))
        times = sorted(data.draw(st.lists(
            st.floats(0.0, 1.0), min_size=n, max_size=n, unique=True)))
        values = data.draw(st.lists(
            st.floats(-1.0, 1.0), min_size=n, max_size=n))
        wave = PiecewiseLinear(tuple(times), tuple(values))
        t = data.draw(st.floats(-0.5, 1.5))
        assert min(values) - 1e-9 <= wave.value(t) <= max(values) + 1e-9


class TestTableProperties:
    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("L", "N", "P", "Zs")
                    ),
                    max_size=8,
                ),
                st.floats(-1e9, 1e9, allow_nan=False),
            ),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_row_rendered(self, rows):
        text = format_table(["name", "value"], [list(r) for r in rows])
        assert len(text.splitlines()) == 2 + len(rows)
