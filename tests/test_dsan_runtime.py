"""Tests for the runtime determinism sanitizer (``--dsan``).

The headline guarantees under test:

* the event-stream hash is a pure function of (problem, seed, shard
  layout) — identical for every ``jobs`` value and across in-process
  repetitions;
* :func:`verify_shadow` catches a solver that consumes hidden entropy;
* in :func:`dsan_mode` the pool boundary rejects lambdas, unpicklable
  payloads and workers that leak process-global state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import build_set
from repro.core import MonteCarloEngine, SimulationConfig, sweep_iv
from repro.dsan import dsan_mode, fold_hashes, verify_shadow
from repro.dsan.runtime import (
    active,
    diff_fingerprints,
    state_fingerprint,
    verify_payload,
    verify_worker,
)
from repro.errors import DeterminismError
from repro.parallel.pool import execute_shards


def _engine_hash(seed, jumps=60, event_hash=True):
    engine = MonteCarloEngine(
        build_set(vs=0.01, vd=-0.01),
        SimulationConfig(temperature=5.0, seed=seed, event_hash=event_hash),
    )
    engine.run(max_jumps=jumps)
    return engine.event_hash()


class TestEventHash:
    def test_off_by_default(self):
        assert _engine_hash(0, event_hash=False) is None

    def test_reproducible_for_seed(self):
        assert _engine_hash(7) == _engine_hash(7)

    def test_sensitive_to_seed(self):
        assert _engine_hash(7) != _engine_hash(8)

    def test_sensitive_to_solver(self):
        circuit = build_set(vs=0.01, vd=-0.01)
        hashes = {}
        for solver in ("adaptive", "nonadaptive"):
            engine = MonteCarloEngine(
                circuit,
                SimulationConfig(
                    temperature=5.0, solver=solver, seed=3, event_hash=True
                ),
            )
            engine.run(max_jumps=60)
            hashes[solver] = engine.event_hash()
        # both produce a digest; at a nonzero adaptive threshold the
        # trajectories (and therefore the digests) may differ, but each
        # must be defined and reproducible
        assert all(h is not None for h in hashes.values())

    def test_fold_is_order_sensitive(self):
        a, b = _engine_hash(1), _engine_hash(2)
        assert fold_hashes([a, b]) != fold_hashes([b, a])

    def test_fold_of_one_is_not_identity(self):
        a = _engine_hash(1)
        assert fold_hashes([a]) != a


class TestSweepHash:
    def _sweep(self, seed=11, jobs=1, chunks=2, event_hash=True):
        return sweep_iv(
            build_set(),
            np.linspace(-0.02, 0.02, 6),
            SimulationConfig(temperature=5.0, seed=seed, event_hash=event_hash),
            jumps_per_point=200,
            chunks=chunks,
            jobs=jobs,
        )

    def test_none_when_hashing_off(self):
        assert self._sweep(event_hash=False).event_hash is None

    def test_golden_hash_across_jobs(self):
        # THE reproducibility contract: for a fixed chunk layout the
        # event stream digest is identical for every worker count
        hashes = {
            jobs: self._sweep(jobs=jobs).event_hash for jobs in (1, 2, 4)
        }
        assert all(h is not None for h in hashes.values())
        assert len(set(hashes.values())) == 1, hashes

    def test_two_in_process_runs_identical(self):
        assert self._sweep().event_hash == self._sweep().event_hash

    def test_seed_changes_hash(self):
        assert self._sweep(seed=11).event_hash != \
            self._sweep(seed=12).event_hash

    def test_chunk_layout_changes_hash(self):
        # the hash is a function of the shard layout (documented):
        # different chunking = different experiment
        assert self._sweep(chunks=1).event_hash != \
            self._sweep(chunks=2).event_hash


class TestVerifyShadow:
    def test_deterministic_run_passes(self):
        report = verify_shadow(lambda: _engine_hash(5), label="engine")
        assert report.match
        assert "identical" in report.format()

    def test_hidden_entropy_detected(self):
        # broken fixture: a solver whose RNG is replaced by a fresh
        # OS-entropy generator — exactly the defect DET001 catches
        # statically, here caught at runtime by the shadow comparison
        def broken_run():
            engine = MonteCarloEngine(
                build_set(vs=0.01, vd=-0.01),
                SimulationConfig(temperature=5.0, seed=5, event_hash=True),
            )
            engine.solver.rng = np.random.default_rng()  # dsan: allow[DET001] the test's deliberate defect
            engine.run(max_jumps=60)
            return engine.event_hash()

        with pytest.raises(DeterminismError, match="diverged"):
            verify_shadow(broken_run, label="broken")

    def test_missing_hash_rejected(self):
        with pytest.raises(DeterminismError, match="no event-stream hash"):
            verify_shadow(lambda: None, label="unhashed")


# ----------------------------------------------------------------------
# pool boundary under dsan_mode — workers must be module-level (they
# are pickled by reference into the subprocess)
# ----------------------------------------------------------------------

def _well_behaved(x):
    return 2 * x


def _leaky(x):
    np.random.random()  # dsan: allow[DET002] the test's deliberate leak
    return x


class TestPoolBoundary:
    def test_mode_flag_scoping(self):
        assert not active()
        with dsan_mode():
            assert active()
        assert not active()

    def test_verify_worker_rejects_lambda(self):
        with pytest.raises(DeterminismError, match="DET021"):
            verify_worker(lambda x: x)

    def test_verify_worker_rejects_nested(self):
        def nested(x):
            return x

        with pytest.raises(DeterminismError, match="DET021"):
            verify_worker(nested)

    def test_verify_worker_accepts_module_level(self):
        verify_worker(_well_behaved)

    def test_verify_payload_rejects_closures(self):
        with pytest.raises(DeterminismError, match="pickle"):
            verify_payload({"setter": lambda v: v}, 0)

    def test_verify_payload_accepts_plain_data(self):
        verify_payload({"voltages": np.linspace(0, 1, 5), "seed": 3}, 0)

    def test_fingerprint_sees_global_rng_draw(self):
        before = state_fingerprint()
        np.random.random()  # dsan: allow[DET002] the test's deliberate leak
        changed = diff_fingerprints(before, state_fingerprint())
        assert any("numpy" in name for name in changed)

    def test_inline_execution_unchecked_without_mode(self):
        # off by default: lambdas are fine on the inline (jobs=1) path
        assert execute_shards(lambda x: x + 1, [1, 2], jobs=1) == [2, 3]

    def test_lambda_worker_rejected_in_mode(self):
        with dsan_mode():
            with pytest.raises(DeterminismError, match="DET021"):
                execute_shards(lambda x: x, [1, 2], jobs=1)

    def test_unpicklable_payload_rejected_in_mode(self):
        with dsan_mode():
            with pytest.raises(DeterminismError, match="payload"):
                execute_shards(_well_behaved, [lambda: 1], jobs=1)

    def test_clean_worker_passes_inline(self):
        with dsan_mode():
            assert execute_shards(_well_behaved, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_leaky_worker_caught_inline(self):
        with dsan_mode():
            with pytest.raises(DeterminismError, match="state leak"):
                execute_shards(_leaky, [1, 2], jobs=1)

    def test_clean_worker_passes_pooled(self):
        with dsan_mode():
            assert execute_shards(_well_behaved, [1, 2, 3], jobs=2) == [2, 4, 6]

    def test_leaky_worker_caught_pooled(self):
        with dsan_mode():
            with pytest.raises(DeterminismError, match="state leak"):
                execute_shards(_leaky, [1, 2, 3], jobs=2)


class TestDeckDsan:
    DECK = """\
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
temp 5
record 1 2 2
jumps 300 1
sweep 2 0.02 0.01
"""

    def test_deck_run_dsan_produces_jobs_invariant_hash(self):
        from repro.netlist import parse_semsim

        deck = parse_semsim(self.DECK)
        hashes = {
            jobs: deck.run(seed=3, jobs=jobs, chunks=2, dsan=True).event_hash
            for jobs in (1, 2)
        }
        assert hashes[1] is not None and hashes[1] == hashes[2]
        # dsan=False leaves the historical result untouched (no hash)
        assert deck.run(seed=3).event_hash is None

    def test_deck_serial_and_sharded_paths_agree_under_dsan(self):
        # dsan forces the shard/merge path even at jobs=1/chunks=1; the
        # one-chunk layout is documented byte-identical to the serial
        # loop, so the currents must match exactly
        from repro.netlist import parse_semsim

        deck = parse_semsim(self.DECK)
        plain = deck.run(seed=3)
        checked = deck.run(seed=3, dsan=True)
        assert np.array_equal(plain.currents, checked.currents)
        assert checked.event_hash is not None

    def test_cli_run_dsan(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        deck_file = tmp_path / "tiny.deck"
        deck_file.write_text(self.DECK)
        assert cli_main(["run", str(deck_file), "--dsan", "--seed", "2"]) == 0
        captured = capsys.readouterr()
        assert "event streams identical" in captured.err
        assert "sweep_voltage_V,current_A" in captured.out
