"""Master-equation validation of the nSET/pSET cell library.

These tests check the *physics* of the standard cells: driven at the
family's logic levels, the steady-state output voltage of each cell
must land on the correct side of the logic threshold.  The master
equation is exact, so failures here mean the operating point is broken,
not that sampling was unlucky.
"""

import itertools

import numpy as np
import pytest

from repro.logic import Gate, GateKind, LogicNetlist, LogicParameters, map_to_circuit
from repro.master import MasterEquationSolver

PARAMS = LogicParameters()
#: steady logic levels of the family (measured fixed point)
VH = PARAMS.high_fraction * PARAMS.vdd
VL = PARAMS.low_fraction * PARAMS.vdd
THRESHOLD = PARAMS.logic_threshold


def steady_output(netlist, input_levels):
    mapped = map_to_circuit(netlist, PARAMS)
    volts = {mapped.input_sources[k]: v for k, v in input_levels.items()}
    circuit = mapped.circuit.with_source_voltages(volts)
    solver = MasterEquationSolver(
        circuit, temperature=PARAMS.temperature, max_states=8000,
        relative_rate_cutoff=1e-7,
    )
    result = solver.steady_state()
    island = circuit.island_index(netlist.outputs[0])
    vext = circuit.external_voltages()
    return sum(
        p * solver.stat.potentials(np.array(state), vext)[island]
        for state, p in zip(result.states, result.probabilities)
    )


class TestInverter:
    NET = LogicNetlist("inv", ["x"], ["y"], [Gate("g", GateKind.INV, ("x",), "y")])

    def test_output_high_for_low_input(self):
        assert steady_output(self.NET, {"x": VL}) > THRESHOLD

    def test_output_low_for_high_input(self):
        assert steady_output(self.NET, {"x": VH}) < THRESHOLD

    def test_levels_regenerate(self):
        # two stages restore degraded levels toward the rails
        v1 = steady_output(self.NET, {"x": VH})
        v2 = steady_output(self.NET, {"x": v1})
        assert v2 > THRESHOLD
        v3 = steady_output(self.NET, {"x": v2})
        assert v3 < THRESHOLD


class TestNand2:
    NET = LogicNetlist(
        "nand", ["a", "b"], ["y"], [Gate("g", GateKind.NAND2, ("a", "b"), "y")]
    )

    @pytest.mark.parametrize(
        "a,b", list(itertools.product((False, True), repeat=2))
    )
    def test_truth_table_at_logic_levels(self, a, b):
        levels = {"a": VH if a else VL, "b": VH if b else VL}
        v = steady_output(self.NET, levels)
        expected_high = not (a and b)
        assert (v > THRESHOLD) == expected_high, f"a={a} b={b} v={v*1e3:.2f}mV"


class TestNorCellOptIn:
    """The direct series-pSET NOR cell (kept for research use) works
    when driven rail-to-rail."""

    NET = LogicNetlist(
        "nor", ["a", "b"], ["y"], [Gate("g", GateKind.NOR2, ("a", "b"), "y")]
    )
    TARGETS = frozenset({GateKind.INV, GateKind.NAND2, GateKind.NOR2})

    def test_rail_driven_truth_table(self):
        mapped = map_to_circuit(self.NET, PARAMS, targets=self.TARGETS)
        assert mapped.n_sets == 4  # the direct cell, not the NAND lowering
        for a, b in itertools.product((False, True), repeat=2):
            volts = {
                mapped.input_sources["a"]: PARAMS.vdd if a else 0.0,
                mapped.input_sources["b"]: PARAMS.vdd if b else 0.0,
            }
            circuit = mapped.circuit.with_source_voltages(volts)
            solver = MasterEquationSolver(
                circuit, temperature=PARAMS.temperature, max_states=8000,
                relative_rate_cutoff=1e-7,
            )
            result = solver.steady_state()
            island = circuit.island_index("y")
            vext = circuit.external_voltages()
            v = sum(
                p * solver.stat.potentials(np.array(s), vext)[island]
                for s, p in zip(result.states, result.probabilities)
            )
            assert (v > THRESHOLD) == (not (a or b)), f"a={a} b={b}"
