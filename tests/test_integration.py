"""Cross-module integration tests.

These exercise the whole stack the way the paper's experiments do:
device physics through the MC engine, validated against the exact
master equation, plus the qualitative single-device signatures of
Sec. IV-A (blockade, gate modulation, superconducting gap, cotunneling
in blockade, JQP-style sub-gap current).
"""

import numpy as np
import pytest

from repro.circuit import Superconductor, build_junction_array, build_set
from repro.constants import E_CHARGE, MEV
from repro.core import MonteCarloEngine, SimulationConfig, sweep_iv
from repro.master import MasterEquationSolver


class TestSETPhysics:
    def test_coulomb_blockade_region(self):
        """Fig. 1b: current suppressed below e/C_sigma at Vg = 0."""
        circuit = build_set()
        curve = sweep_iv(
            circuit, [0.01, 0.04],
            SimulationConfig(temperature=5.0, solver="nonadaptive", seed=1),
            jumps_per_point=4000,
        )
        assert abs(curve.currents[0]) < 1e-3 * abs(curve.currents[1])

    def test_gate_lifts_blockade(self):
        """Fig. 1b: Vg = 30 mV conducts where Vg = 0 is blockaded."""
        config = SimulationConfig(temperature=5.0, solver="nonadaptive", seed=2)
        blocked = MonteCarloEngine(
            build_set(vs=0.01, vd=-0.01, vg=0.0), config
        ).measure_current([0], 5000)
        conducting = MonteCarloEngine(
            build_set(vs=0.01, vd=-0.01, vg=0.03), config
        ).measure_current([0], 5000)
        assert abs(conducting) > 100 * abs(blocked)

    def test_mc_matches_master_equation_over_gate_sweep(self):
        """Both solvers trace the same Coulomb oscillation."""
        for solver in ("nonadaptive", "adaptive"):
            for vg in (0.005, 0.015, 0.025):
                circuit = build_set(vs=0.015, vd=-0.015, vg=vg)
                reference = MasterEquationSolver(
                    circuit, temperature=5.0
                ).steady_state()
                engine = MonteCarloEngine(
                    circuit,
                    SimulationConfig(temperature=5.0, solver=solver, seed=7),
                )
                current = engine.measure_current([0], 40000)
                assert current == pytest.approx(
                    float(reference.junction_currents[0]), rel=0.08
                ), (solver, vg)

    def test_asymptotic_resistance(self):
        """Far above threshold the SET approaches its series resistance."""
        circuit = build_set(vs=0.1, vd=-0.1)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=5.0, solver="nonadaptive",
                                      seed=3),
        )
        current = engine.measure_current([0], 20000)
        # I -> (Vds - e/C) / 2R for Vds >> threshold
        expected = (0.2 - E_CHARGE / 5e-18) / 2e6
        assert current == pytest.approx(expected, rel=0.1)


class TestSuperconductingPhysics:
    SC = Superconductor(delta0=0.2 * MEV, tc=1.2)

    def test_gap_widens_blockade(self):
        """Fig. 1c: the SSET suppressed region is wider by ~2 Delta/e
        per junction than the normal SET's."""
        # just above the normal threshold of 32 mV but inside the
        # superconducting extension (~2 Delta of extra free energy);
        # the SSET there is *completely* frozen at 50 mK, so the exact
        # master equation is the right probe (the MC would rightly
        # refuse to simulate a zero-rate system)
        v_probe = 0.0325
        normal = MasterEquationSolver(
            build_set(vs=v_probe / 2, vd=-v_probe / 2), temperature=0.05
        ).steady_state()
        sset = MasterEquationSolver(
            build_set(vs=v_probe / 2, vd=-v_probe / 2, superconductor=self.SC),
            temperature=0.05, include_cooper_pairs=False,
        ).steady_state()
        assert abs(normal.junction_currents[0]) > 1e3 * (
            abs(sset.junction_currents[0]) + 1e-30
        )

    def test_cooper_pairs_carry_subgap_current_at_resonance(self):
        """JQP physics: with 2e processes enabled, sub-gap bias points
        near a Cooper-pair resonance carry orders of magnitude more
        current than quasi-particles alone."""
        # gate tuned near a CP degeneracy for the 2e transfer
        base = build_set(
            r1=2.1e5, r2=2.1e5, c1=1.1e-16, c2=1.1e-16, cg=1.4e-17,
            vg=0.0, superconductor=Superconductor(0.21 * MEV, 1.4),
            background_charge_e=0.65,
        )
        me_qp = MasterEquationSolver(
            base.with_source_voltages({"vs": 4.4e-4, "vd": -4.4e-4}),
            temperature=0.52, include_cooper_pairs=False,
        ).steady_state()
        me_cp = MasterEquationSolver(
            base.with_source_voltages({"vs": 4.4e-4, "vd": -4.4e-4}),
            temperature=0.52, include_cooper_pairs=True,
        ).steady_state()
        qp_only = abs(float(me_qp.junction_currents[0]))
        with_cp = abs(float(me_cp.junction_currents[0]))
        assert with_cp > 3.0 * qp_only

    def test_mc_and_me_agree_on_sset(self):
        circuit = build_set(vs=0.02, vd=-0.02, superconductor=self.SC)
        reference = MasterEquationSolver(
            circuit, temperature=0.05, include_cooper_pairs=False,
        ).steady_state()
        engine = MonteCarloEngine(
            circuit,
            SimulationConfig(temperature=0.05, solver="nonadaptive", seed=5,
                             include_cooper_pairs=False),
        )
        current = engine.measure_current([0], 30000)
        assert current == pytest.approx(
            float(reference.junction_currents[0]), rel=0.1
        )


class TestCotunnelingPhysics:
    def test_cotunneling_dominates_deep_blockade(self):
        """Sec. IV-A: in blockade the cotunneling channel carries
        current that sequential tunneling cannot."""
        circuit = build_junction_array(
            2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
            bias=0.02,  # inside the blockade of this array
        )
        seq_only = MasterEquationSolver(circuit, temperature=0.5).steady_state()
        with_cot = MasterEquationSolver(
            circuit, temperature=0.5, include_cotunneling=True
        ).steady_state()
        assert abs(with_cot.junction_currents[0]) > 10 * abs(
            seq_only.junction_currents[0]
        )

    def test_mc_cotunneling_matches_me(self):
        circuit = build_junction_array(
            2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
            bias=0.02,
        )
        reference = MasterEquationSolver(
            circuit, temperature=0.5, include_cotunneling=True
        ).steady_state()
        engine = MonteCarloEngine(
            circuit,
            SimulationConfig(temperature=0.5, solver="nonadaptive",
                             include_cotunneling=True, seed=6),
        )
        current = engine.measure_current([0], 30000)
        assert current == pytest.approx(
            float(reference.junction_currents[0]), rel=0.12
        )

    def test_cotunneling_events_realised_in_mc(self):
        from repro.core import EventKind, EventLogRecorder

        circuit = build_junction_array(
            2, resistance=1e6, capacitance=1e-18, gate_capacitance=2e-18,
            bias=0.02,
        )
        engine = MonteCarloEngine(
            circuit,
            SimulationConfig(temperature=0.5, solver="nonadaptive",
                             include_cotunneling=True, seed=8),
        )
        log = engine.add_recorder(EventLogRecorder())
        engine.run(max_jumps=2000)
        kinds = {e.kind for e in log.events}
        assert "cotunneling" in kinds


class TestAdaptiveOnDevices:
    def test_adaptive_sset_current_consistent(self):
        circuit = build_set(
            vs=0.02, vd=-0.02,
            superconductor=Superconductor(0.2 * MEV, 1.2),
        )
        currents = {}
        for solver in ("nonadaptive", "adaptive"):
            engine = MonteCarloEngine(
                circuit,
                SimulationConfig(temperature=0.05, solver=solver, seed=11,
                                 include_cooper_pairs=False),
            )
            currents[solver] = engine.measure_current([0], 20000)
        assert currents["adaptive"] == pytest.approx(
            currents["nonadaptive"], rel=0.1
        )
