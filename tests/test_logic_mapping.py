"""Tests for decomposition and technology mapping."""

import itertools

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.logic import (
    Gate,
    GateKind,
    LogicNetlist,
    LogicParameters,
    count_sets,
    decompose,
    map_to_circuit,
    pad_to_set_count,
)
from repro.logic.mapping import DEFAULT_TARGETS, SETS_PER_GATE


def _random_netlist(seed: int, n_gates: int = 12) -> LogicNetlist:
    rng = np.random.default_rng(seed)
    kinds = [k for k in GateKind]
    inputs = ["i0", "i1", "i2", "i3"]
    nets = list(inputs)
    gates = []
    for g in range(n_gates):
        kind = kinds[rng.integers(len(kinds))]
        from repro.logic.netlist import ARITY

        fanin = [nets[rng.integers(len(nets))] for _ in range(ARITY[kind])]
        # gates may not repeat an input net as output; ensure fresh name
        out = f"n{g}"
        try:
            gates.append(Gate(f"g{g}", kind, tuple(fanin), out))
        except NetlistError:
            gates.append(Gate(f"g{g}", GateKind.INV, (fanin[0],), out))
        nets.append(out)
    return LogicNetlist(f"rand{seed}", inputs, [nets[-1]], gates)


class TestDecompose:
    def test_only_target_gates_remain(self):
        for seed in range(5):
            net = decompose(_random_netlist(seed))
            assert all(g.kind in DEFAULT_TARGETS for g in net.gates)

    def test_function_preserved(self):
        for seed in range(5):
            original = _random_netlist(seed)
            lowered = decompose(original)
            for values in itertools.product((False, True), repeat=4):
                vec = dict(zip(original.inputs, values))
                assert (
                    original.output_values(vec) == lowered.output_values(vec)
                ), f"seed {seed} vector {values}"

    def test_primitive_netlist_unchanged(self):
        net = LogicNetlist(
            "p", ["a", "b"], ["y"], [Gate("g", GateKind.NAND2, ("a", "b"), "y")]
        )
        assert decompose(net).gates == net.gates

    def test_nor_lowered_by_default(self):
        net = LogicNetlist(
            "n", ["a", "b"], ["y"], [Gate("g", GateKind.NOR2, ("a", "b"), "y")]
        )
        lowered = decompose(net)
        assert all(g.kind is not GateKind.NOR2 for g in lowered.gates)
        for a, b in itertools.product((False, True), repeat=2):
            assert lowered.output_values({"a": a, "b": b})["y"] == (not (a or b))

    def test_nor_kept_with_extended_targets(self):
        net = LogicNetlist(
            "n", ["a", "b"], ["y"], [Gate("g", GateKind.NOR2, ("a", "b"), "y")]
        )
        targets = frozenset({GateKind.INV, GateKind.NAND2, GateKind.NOR2})
        assert decompose(net, targets).gates == net.gates


class TestPadding:
    def _inv_chain(self):
        return LogicNetlist(
            "c", ["a"], ["y"], [Gate("g", GateKind.INV, ("a",), "y")]
        )

    def test_pads_to_exact_count(self):
        padded = pad_to_set_count(self._inv_chain(), 20)
        assert count_sets(padded) == 20

    def test_padding_preserves_outputs(self):
        net = self._inv_chain()
        padded = pad_to_set_count(net, 30)
        for a in (False, True):
            assert padded.output_values({"a": a}) == net.output_values({"a": a})

    def test_overshooting_base_rejected(self):
        with pytest.raises(NetlistError):
            pad_to_set_count(self._inv_chain(), 1)

    def test_odd_deficit_rejected(self):
        with pytest.raises(NetlistError):
            pad_to_set_count(self._inv_chain(), 7)


class TestMapping:
    def test_device_count_bookkeeping(self):
        net = LogicNetlist(
            "m", ["a", "b"], ["y"],
            [
                Gate("g1", GateKind.NAND2, ("a", "b"), "t"),
                Gate("g2", GateKind.INV, ("t",), "y"),
            ],
        )
        mapped = map_to_circuit(net)
        assert mapped.n_sets == 6
        assert mapped.n_junctions == 12
        assert mapped.circuit.n_junctions == 12
        assert len(mapped.devices) == 6

    def test_every_net_is_an_island(self):
        net = _random_netlist(1)
        mapped = map_to_circuit(net)
        for gate in mapped.netlist.gates:
            assert mapped.island_of(gate.output) >= 0

    def test_input_sources_created(self):
        mapped = map_to_circuit(_random_netlist(2))
        assert set(mapped.input_sources) == set(mapped.netlist.inputs)
        volts = mapped.input_voltages({"i0": True, "i1": False})
        assert volts[mapped.input_sources["i0"]] == mapped.params.vdd
        assert volts[mapped.input_sources["i1"]] == 0.0

    def test_unknown_input_rejected(self):
        mapped = map_to_circuit(_random_netlist(2))
        with pytest.raises(NetlistError):
            mapped.input_voltages({"ghost": True})

    def test_initial_occupation_tracks_levels(self):
        mapped = map_to_circuit(_random_netlist(3))
        vec = {n: False for n in mapped.netlist.inputs}
        occupation = mapped.initial_occupation(vec)
        values = mapped.netlist.evaluate(vec)
        for gate in mapped.netlist.gates:
            island = mapped.island_of(gate.output)
            # high nets hold fewer electrons (more positive charge)
            if values[gate.output]:
                assert occupation[island] < 0
            else:
                assert occupation[island] <= 0

    def test_custom_parameters_respected(self):
        params = LogicParameters(load_capacitance=80e-18, vdd=0.012)
        mapped = map_to_circuit(_random_netlist(4), params)
        assert mapped.params.vdd == 0.012
        wire_caps = [
            c.capacitance for c in mapped.circuit.capacitors
            if c.name.endswith(".cl")
        ]
        assert all(c == 80e-18 for c in wire_caps)

    def test_sets_per_gate_table(self):
        assert SETS_PER_GATE[GateKind.INV] == 2
        assert SETS_PER_GATE[GateKind.NAND2] == 4
