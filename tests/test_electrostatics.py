"""Tests for the capacitance-matrix electrostatics (Eq. 2 and friends)."""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder, Electrostatics, build_set
from repro.constants import E_CHARGE
from repro.errors import CircuitError


class TestSETElectrostatics:
    """Closed-form checks on the single-island SET."""

    CSIGMA = 5e-18  # 1 + 1 + 3 aF

    def test_capacitance_matrix(self, set_stat):
        c = set_stat.capacitance_matrix()
        assert c.shape == (1, 1)
        assert c[0, 0] == pytest.approx(self.CSIGMA)

    def test_cinv(self, set_stat):
        assert set_stat.cinv_entry(0, 0) == pytest.approx(1.0 / self.CSIGMA)

    def test_neutral_island_potential_symmetric_bias(self, set_circuit, set_stat):
        # symmetric sources and equal junction caps leave the neutral
        # island at the gate-coupling potential: (C1 Vs + C2 Vd)/C = 0
        v = set_stat.potentials(np.zeros(1, dtype=np.int64),
                                set_circuit.external_voltages())
        assert v[0] == pytest.approx(0.0, abs=1e-15)

    def test_one_electron_shifts_potential_by_e_over_c(self, set_circuit, set_stat):
        v = set_stat.potentials(np.array([1]), set_circuit.external_voltages())
        assert v[0] == pytest.approx(-E_CHARGE / self.CSIGMA)

    def test_gate_voltage_couples_with_cg_over_csigma(self, set_circuit, set_stat):
        biased = set_circuit.with_source_voltages({"vg": 0.01})
        v = set_stat.potentials(np.zeros(1, dtype=np.int64),
                                biased.external_voltages())
        assert v[0] == pytest.approx(0.01 * 3e-18 / self.CSIGMA)

    def test_charging_energy_lead_island(self, set_circuit, set_stat):
        rj = set_circuit.resolved_junctions()[0]
        coeff = set_stat.charging_coefficient(rj.ref_a, rj.ref_b)
        e_c = 0.5 * E_CHARGE**2 * coeff
        assert e_c == pytest.approx(E_CHARGE**2 / (2 * self.CSIGMA))

    def test_free_energy_change_threshold(self, set_circuit, set_stat):
        # at Vds = e/C_sigma the source->island event becomes free
        threshold = E_CHARGE / self.CSIGMA
        biased = set_circuit.with_source_voltages(
            {"vs": threshold / 2, "vd": -threshold / 2}
        )
        vext = biased.external_voltages()
        v = set_stat.potentials(np.zeros(1, dtype=np.int64), vext)
        rj = biased.resolved_junctions()[1]  # drain junction: drain->island
        dw = set_stat.free_energy_change(rj.ref_a, rj.ref_b, v, vext)
        assert dw == pytest.approx(0.0, abs=1e-25)


class TestBookkeepingIdentity:
    def test_event_energy_identity_island_island(self, double_dot_circuit):
        stat = Electrostatics(double_dot_circuit)
        vext = double_dot_circuit.external_voltages()
        occ = np.array([0, 0], dtype=np.int64)
        rj = double_dot_circuit.resolved_junctions()[1]  # dot1 - dot2
        v = stat.potentials(occ, vext)
        dw = stat.free_energy_change(rj.ref_a, rj.ref_b, v, vext)
        f_before = stat.total_free_energy(occ, vext)
        occ_after = occ.copy()
        occ_after[rj.ref_a.index] -= 1
        occ_after[rj.ref_b.index] += 1
        f_after = stat.total_free_energy(occ_after, vext)
        assert dw == pytest.approx(f_after - f_before, rel=1e-9)

    def test_event_energy_identity_lead_island(self, double_dot_circuit):
        stat = Electrostatics(double_dot_circuit)
        vext = double_dot_circuit.external_voltages()
        occ = np.array([0, 0], dtype=np.int64)
        rj = double_dot_circuit.resolved_junctions()[0]  # lead_l - dot1
        v = stat.potentials(occ, vext)
        dw = stat.free_energy_change(rj.ref_a, rj.ref_b, v, vext)
        f_before = stat.total_free_energy(occ, vext)
        occ_after = occ.copy()
        occ_after[rj.ref_b.index] += 1
        f_after = stat.total_free_energy(occ_after, vext)
        # charge -e taken *from* the lead: the source does work -(-e)*V
        lead_voltage = vext[rj.ref_a.index]
        source_work = -(-E_CHARGE) * lead_voltage
        assert dw == pytest.approx(f_after - f_before - source_work, rel=1e-9)


class TestIncrementalUpdates:
    def test_potential_update_matches_resolve(self, double_dot_circuit):
        stat = Electrostatics(double_dot_circuit)
        vext = double_dot_circuit.external_voltages()
        occ = np.array([0, 0], dtype=np.int64)
        v0 = stat.potentials(occ, vext)
        rj = double_dot_circuit.resolved_junctions()[0]
        dv = stat.potential_update(rj.ref_a, rj.ref_b, -E_CHARGE)
        occ[rj.ref_b.index] += 1
        v1 = stat.potentials(occ, vext)
        assert np.allclose(v0 + dv, v1, atol=1e-18)

    def test_source_potential_update_matches_resolve(self, double_dot_circuit):
        stat = Electrostatics(double_dot_circuit)
        vext0 = double_dot_circuit.external_voltages()
        vext1 = vext0.copy()
        vext1[3] += 0.004  # gate 1
        occ = np.array([1, -1], dtype=np.int64)
        dv = stat.source_potential_update(vext1 - vext0)
        assert np.allclose(
            stat.potentials(occ, vext0) + dv, stat.potentials(occ, vext1),
            atol=1e-18,
        )


class TestBackends:
    def _ladder(self, n):
        b = CircuitBuilder()
        for i in range(n):
            b.add_junction(f"j{i}", f"n{i}", f"n{i+1}", 1e6, 1e-18)
            b.add_capacitor(f"c{i}", f"n{i+1}", "0", 5e-18)
        b.add_voltage_source("v0", "n0", 0.01)
        return b.build()

    def test_sparse_matches_dense(self):
        circuit = self._ladder(30)
        dense = Electrostatics(circuit, dense_limit=1000)
        sparse = Electrostatics(circuit, dense_limit=5)
        assert dense.is_dense and not sparse.is_dense
        occ = np.zeros(circuit.n_islands, dtype=np.int64)
        occ[7] = 3
        vext = circuit.external_voltages()
        assert np.allclose(dense.potentials(occ, vext),
                           sparse.potentials(occ, vext), atol=1e-18)
        assert dense.cinv_entry(3, 11) == pytest.approx(
            sparse.cinv_entry(3, 11), rel=1e-10
        )

    def test_sparse_column_cache(self):
        circuit = self._ladder(20)
        sparse = Electrostatics(circuit, dense_limit=5)
        col1 = sparse.cinv_column(4)
        col2 = sparse.cinv_column(4)
        assert col1 is col2  # cached

    def test_floating_island_group_rejected(self):
        b = CircuitBuilder()
        b.add_junction("j1", "a", "b", 1e6, 1e-18)  # two islands, no anchor
        with pytest.raises(CircuitError):
            Electrostatics(b.build())

    def test_all_driven_circuit_rejected(self):
        b = CircuitBuilder()
        b.add_junction("j1", "a", "0", 1e6, 1e-18)
        b.add_voltage_source("v1", "a", 0.01)
        with pytest.raises(CircuitError):
            Electrostatics(b.build())
