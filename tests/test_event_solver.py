"""Tests for kinetic Monte Carlo event selection (Eq. 5)."""

import numpy as np
import pytest

from repro.core.event_solver import choose_event, draw_time
from repro.errors import SimulationError


class TestDrawTime:
    def test_mean_residence_time(self, rng):
        total = 2.5e9
        samples = [draw_time(total, rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(1.0 / total, rel=0.05)

    def test_exponential_distribution_shape(self, rng):
        total = 1e9
        samples = np.array([draw_time(total, rng) for _ in range(20000)])
        # P(t > 1/Gamma) = 1/e for an exponential
        fraction = np.mean(samples > 1.0 / total)
        assert fraction == pytest.approx(np.exp(-1.0), abs=0.02)

    def test_zero_rate_raises(self, rng):
        with pytest.raises(SimulationError):
            draw_time(0.0, rng)

    def test_always_positive(self, rng):
        assert all(draw_time(1e9, rng) > 0 for _ in range(100))


class TestChooseEvent:
    def test_respects_probabilities(self, rng):
        rates = np.array([1.0, 3.0, 6.0])
        counts = np.zeros(3)
        n = 30000
        for _ in range(n):
            counts[choose_event(rates, rng)] += 1
        assert counts[0] / n == pytest.approx(0.1, abs=0.01)
        assert counts[1] / n == pytest.approx(0.3, abs=0.015)
        assert counts[2] / n == pytest.approx(0.6, abs=0.015)

    def test_zero_rate_events_never_chosen(self, rng):
        rates = np.array([0.0, 1.0, 0.0])
        assert all(choose_event(rates, rng) == 1 for _ in range(200))

    def test_all_zero_raises(self, rng):
        with pytest.raises(SimulationError):
            choose_event(np.zeros(3), rng)

    def test_single_event(self, rng):
        assert choose_event(np.array([5.0]), rng) == 0

    def test_index_in_range(self, rng):
        rates = np.abs(rng.normal(size=50)) + 1e-3
        for _ in range(500):
            assert 0 <= choose_event(rates, rng) < 50
