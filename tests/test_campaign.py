"""Tests for repro.campaign — the content-addressed result store and
the campaign manager.

The load-bearing guarantees under test:

* a second identical run computes **zero** cells and returns
  bit-identical arrays with the same folded dsan event hash, for both
  serial and pooled execution;
* an overlapping grid computes only its missing cells (observable via
  the ``campaign.cell_hits`` / ``campaign.cells_computed`` counters);
* store corruption is never fatal — bad cells are dropped, counted and
  recomputed;
* gc applies retention (code version, age, fingerprint scope) and
  prunes emptied workload directories.
"""

from __future__ import annotations

import importlib.util
import json
import pickle

import numpy as np
import pytest

from repro.campaign import (
    Campaign,
    CampaignStore,
    ParameterSpace,
    PointSources,
    cell_key,
    payload_cell_key,
)
from repro.campaign.campaign import _point_spawn_key
from repro.circuit import build_set
from repro.core import SimulationConfig, sweep_iv, sweep_map
from repro.errors import CampaignError
from repro.parallel import ensemble_iv
from repro.telemetry import registry as telemetry

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

CONFIG = SimulationConfig(seed=11)
JUMPS = 150


def make_campaign(circuit, store, *, dims=None, replicas=2, jumps=JUMPS):
    return Campaign(
        circuit,
        dims if dims is not None else {"vg": [0.0, 0.002]},
        CONFIG,
        replicas=replicas,
        jumps_per_point=jumps,
        store=store,
        label="unit",
    )


# ----------------------------------------------------------------------
# parameter space
# ----------------------------------------------------------------------

class TestParameterSpace:
    def test_shape_size_and_c_order_points(self):
        space = ParameterSpace({"a": [1.0, 2.0], "b": [10.0, 20.0, 30.0]})
        assert space.names == ("a", "b")
        assert space.shape == (2, 3)
        assert space.size == 6
        points = list(space.points())
        assert points[0] == (("a", 1.0), ("b", 10.0))
        # C order: the last dimension varies fastest
        assert points[1] == (("a", 1.0), ("b", 20.0))
        assert points[3] == (("a", 2.0), ("b", 10.0))

    def test_rejects_empty_space_and_bad_axes(self):
        with pytest.raises(CampaignError, match="at least one dimension"):
            ParameterSpace({})
        with pytest.raises(CampaignError, match="non-empty 1-D"):
            ParameterSpace({"a": []})
        with pytest.raises(CampaignError, match="non-empty 1-D"):
            ParameterSpace({"a": [[1.0, 2.0]]})

    def test_campaign_validates_replicas_and_jumps(self, set_circuit):
        with pytest.raises(CampaignError, match="replicas"):
            Campaign(set_circuit, {"vg": [0.0]}, CONFIG, replicas=0)
        with pytest.raises(CampaignError, match="jumps_per_point"):
            Campaign(set_circuit, {"vg": [0.0]}, CONFIG, jumps_per_point=0)

    def test_point_sources_rename(self):
        setter = PointSources({"g": "v3"})
        assert setter({"g": 0.5, "vs": 0.1}) == {"v3": 0.5, "vs": 0.1}


# ----------------------------------------------------------------------
# content identity
# ----------------------------------------------------------------------

class TestCellIdentity:
    def test_cell_key_depends_on_every_identity_input(self):
        point = (("vg", 0.001),)
        seed = 42
        base = cell_key(point, 0, seed, 100)
        assert cell_key(point, 0, seed, 100) == base
        assert cell_key((("vg", 0.002),), 0, seed, 100) != base
        assert cell_key(point, 1, seed, 100) != base
        assert cell_key(point, 0, 43, 100) != base
        assert cell_key(point, 0, seed, 200) != base

    def test_point_spawn_key_is_content_derived(self):
        a = _point_spawn_key((("vg", 0.001),))
        assert a == _point_spawn_key((("vg", 0.001),))
        assert a != _point_spawn_key((("vg", 0.002),))
        assert all(0 <= part < 2**32 for part in a)

    def test_circuit_pickle_is_stable_across_cache_warming(self):
        """The frozen Circuit's lazy memo caches must never leak into
        its pickle state — payload content addresses depend on it."""
        circuit = build_set(vs=+0.01, vd=-0.01, vg=0.0)
        before = pickle.dumps(circuit, protocol=pickle.HIGHEST_PROTOCOL)
        # touch every lazily cached view
        circuit.resolved_junctions()
        circuit.island_adjacency()
        circuit.junction_neighbors()
        circuit.junctions_on_island()
        after = pickle.dumps(circuit, protocol=pickle.HIGHEST_PROTOCOL)
        assert before == after
        # and the restored circuit rebuilds its views correctly
        clone = pickle.loads(after)
        assert clone.junction_neighbors() == circuit.junction_neighbors()

    def test_payload_cell_key_rejects_unpicklable_payloads(self):
        with pytest.raises(CampaignError, match="content-addressed"):
            payload_cell_key(build_set, lambda: None)

    def test_fingerprint_ignores_grid_values_but_not_dims(self, set_circuit):
        a = make_campaign(set_circuit, None, dims={"vg": [0.0, 0.001]})
        b = make_campaign(set_circuit, None, dims={"vg": [0.0, 0.5]})
        c = make_campaign(set_circuit, None, dims={"vs": [0.0, 0.001]})
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint


# ----------------------------------------------------------------------
# run_missing: hit/miss, bit identity
# ----------------------------------------------------------------------

class TestRunMissing:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_second_identical_run_computes_nothing(
        self, set_circuit, tmp_path, jobs
    ):
        store = CampaignStore(tmp_path / "store")
        first = make_campaign(set_circuit, store)
        with telemetry.session(trace=False) as reg:
            run1 = first.run_missing(jobs=jobs)
            assert reg.peek_counter("campaign.cells_computed") == 4
            assert reg.peek_counter("campaign.cell_hits") == 0
        assert (run1.cached, run1.computed) == (0, 4)
        assert run1.currents.shape == (2, 2)
        assert run1.event_hash is not None

        # a *fresh* campaign object against the same store: all cached
        second = make_campaign(set_circuit, store)
        with telemetry.session(trace=False) as reg:
            run2 = second.run_missing(jobs=jobs)
            assert reg.peek_counter("campaign.cells_computed") == 0
            assert reg.peek_counter("campaign.cell_hits") == 4
        assert (run2.cached, run2.computed) == (4, 0)
        # bit-identical grid and identical folded event hash: the
        # cached replay is provably the same simulation
        assert np.array_equal(run1.currents, run2.currents)
        assert run2.event_hash == run1.event_hash
        assert second.combined_hash() == run1.event_hash
        assert np.array_equal(second.get_results_array(), run1.currents)

    def test_pooled_and_serial_runs_are_bit_identical(
        self, set_circuit, tmp_path
    ):
        serial = make_campaign(
            set_circuit, CampaignStore(tmp_path / "a")
        ).run_missing(jobs=1)
        pooled = make_campaign(
            set_circuit, CampaignStore(tmp_path / "b")
        ).run_missing(jobs=2)
        assert np.array_equal(serial.currents, pooled.currents)
        assert serial.event_hash == pooled.event_hash

    def test_overlapping_grid_computes_only_missing_cells(
        self, set_circuit, tmp_path
    ):
        store = CampaignStore(tmp_path / "store")
        small = make_campaign(
            set_circuit, store, dims={"vg": [0.0, 0.001, 0.002]}, replicas=1
        )
        run_small = small.run_missing()
        assert (run_small.cached, run_small.computed) == (0, 3)

        # a superset grid shares the workload directory and the three
        # already computed points; only the two new points run
        big = make_campaign(
            set_circuit, store,
            dims={"vg": [0.0, 0.001, 0.002, 0.003, 0.004]}, replicas=1,
        )
        assert big.fingerprint == small.fingerprint
        with telemetry.session(trace=False) as reg:
            run_big = big.run_missing()
            assert reg.peek_counter("campaign.cell_hits") == 3
            assert reg.peek_counter("campaign.cells_computed") == 2
        assert (run_big.cached, run_big.computed) == (3, 2)
        # the shared prefix is bit-identical: content-derived seeds
        # decouple a cell's RNG stream from its grid position
        assert np.array_equal(
            run_big.currents[:3], run_small.currents
        )

    def test_status_reports_grid_vs_store_diff(self, set_circuit, tmp_path):
        store = CampaignStore(tmp_path / "store")
        campaign = make_campaign(set_circuit, store)
        before = campaign.status()
        assert (before.total, before.present, before.missing) == (4, 0, 4)
        campaign.run_missing()
        after = campaign.status()
        assert (after.present, after.missing) == (4, 0)
        assert "4/4" in after.format()

    def test_results_array_requires_a_complete_grid(
        self, set_circuit, tmp_path
    ):
        campaign = make_campaign(set_circuit, CampaignStore(tmp_path / "s"))
        with pytest.raises(CampaignError, match="missing"):
            campaign.get_results_array()
        assert campaign.combined_hash() is None

    def test_xarray_export_is_gated_on_the_optional_dep(
        self, set_circuit, tmp_path
    ):
        campaign = make_campaign(
            set_circuit, CampaignStore(tmp_path / "s"),
            dims={"vg": [0.0]}, replicas=1,
        )
        campaign.run_missing()
        if importlib.util.find_spec("xarray") is None:
            with pytest.raises(CampaignError, match="xarray"):
                campaign.to_xarray()
        else:
            arr = campaign.to_xarray()
            assert arr.dims == ("vg", "replica")
            assert arr.shape == (1, 1)


# ----------------------------------------------------------------------
# corruption: never fatal
# ----------------------------------------------------------------------

class TestCorruption:
    def _one_cell_path(self, store, campaign):
        workload = store.workload(campaign.fingerprint)
        keys = workload.keys()
        assert keys
        return workload.cell_path(keys[0])

    def test_unparseable_cell_is_dropped_and_recomputed(
        self, set_circuit, tmp_path
    ):
        store = CampaignStore(tmp_path / "store")
        campaign = make_campaign(set_circuit, store)
        reference = campaign.run_missing()
        self._one_cell_path(store, campaign).write_text("not json at all")

        with telemetry.session(trace=False) as reg:
            rerun = make_campaign(set_circuit, store).run_missing()
            assert reg.peek_counter("campaign.corrupt_cells") == 1
        assert (rerun.cached, rerun.computed) == (3, 1)
        assert np.array_equal(rerun.currents, reference.currents)
        assert rerun.event_hash == reference.event_hash

    def test_checksum_mismatch_is_treated_as_corruption(
        self, set_circuit, tmp_path
    ):
        store = CampaignStore(tmp_path / "store")
        campaign = make_campaign(set_circuit, store)
        campaign.run_missing()
        path = self._one_cell_path(store, campaign)
        record = json.loads(path.read_text())
        record["checksum"] = "0" * 32
        path.write_text(json.dumps(record))

        with telemetry.session(trace=False) as reg:
            rerun = make_campaign(set_circuit, store).run_missing()
            assert reg.peek_counter("campaign.corrupt_cells") == 1
        assert (rerun.cached, rerun.computed) == (3, 1)
        # the bad file was overwritten with a good cell
        assert make_campaign(set_circuit, store).status().missing == 0

    def test_wrong_schema_is_a_miss(self, set_circuit, tmp_path):
        store = CampaignStore(tmp_path / "store")
        campaign = make_campaign(set_circuit, store)
        campaign.run_missing()
        path = self._one_cell_path(store, campaign)
        record = json.loads(path.read_text())
        record["schema"] = 999
        path.write_text(json.dumps(record))
        workload = store.workload(campaign.fingerprint)
        assert workload.load(path.stem) is None
        assert not path.exists()  # dropped from disk


# ----------------------------------------------------------------------
# gc retention
# ----------------------------------------------------------------------

class TestGc:
    def test_no_criteria_is_a_scan_only(self, set_circuit, tmp_path):
        store = CampaignStore(tmp_path / "store")
        make_campaign(set_circuit, store).run_missing()
        stats = store.gc()
        assert (stats.scanned, stats.removed, stats.kept) == (4, 0, 4)
        assert "kept 4" in stats.format()

    def test_code_version_retention_prunes_empty_workloads(
        self, set_circuit, tmp_path
    ):
        store = CampaignStore(tmp_path / "store")
        campaign = make_campaign(set_circuit, store)
        campaign.run_missing()
        directory = store.workload(campaign.fingerprint).directory
        assert directory.is_dir()
        stats = store.gc(keep_code_version="some-other-version")
        assert stats.removed == 4
        assert stats.workloads_removed == 1
        assert not directory.exists()

    def test_age_retention_removes_only_old_cells(
        self, set_circuit, tmp_path
    ):
        store = CampaignStore(tmp_path / "store")
        campaign = make_campaign(set_circuit, store)
        campaign.run_missing()
        workload = store.workload(campaign.fingerprint)
        old = workload.cell_path(workload.keys()[0])
        record = json.loads(old.read_text())
        record["ts"] = 0.0  # backdate one cell to the epoch
        old.write_text(json.dumps(record))
        stats = store.gc(older_than=86400.0)
        assert (stats.removed, stats.kept) == (1, 3)
        assert not old.exists()

    def test_fingerprint_scopes_the_pass(self, set_circuit, tmp_path):
        store = CampaignStore(tmp_path / "store")
        a = make_campaign(set_circuit, store, replicas=1)
        b = make_campaign(set_circuit, store, replicas=1, jumps=JUMPS + 10)
        a.run_missing()
        b.run_missing()
        assert a.fingerprint != b.fingerprint
        stats = store.gc(
            keep_code_version="other", fingerprint=a.fingerprint
        )
        assert stats.removed == 2  # only a's cells
        assert store.workload(b.fingerprint).keys()  # b untouched

    def test_unreadable_cells_are_always_collected(
        self, set_circuit, tmp_path
    ):
        store = CampaignStore(tmp_path / "store")
        campaign = make_campaign(set_circuit, store, replicas=1)
        campaign.run_missing()
        workload = store.workload(campaign.fingerprint)
        workload.cell_path(workload.keys()[0]).write_text("garbage")
        stats = store.gc()  # no criteria, yet corruption still goes
        assert stats.removed == 1
        assert stats.kept == 1


# ----------------------------------------------------------------------
# sweep entry points: campaign= plumbing
# ----------------------------------------------------------------------

class TestSweepCaching:
    VOLTS = [0.015, 0.02]

    def test_sweep_iv_reruns_entirely_from_cache(
        self, set_circuit, tmp_path
    ):
        store = tmp_path / "store"
        kwargs = dict(
            config=CONFIG, jumps_per_point=JUMPS, chunks=2,
            campaign=store,
        )
        with telemetry.session(trace=False) as reg:
            first = sweep_iv(set_circuit, self.VOLTS, **kwargs)
            assert reg.peek_counter("campaign.cells_computed") == 2
        with telemetry.session(trace=False) as reg:
            again = sweep_iv(set_circuit, self.VOLTS, **kwargs)
            assert reg.peek_counter("campaign.cells_computed") == 0
            assert reg.peek_counter("campaign.cell_hits") == 2
        assert np.array_equal(first.currents, again.currents)
        assert first.event_hash is not None
        assert again.event_hash == first.event_hash

    def test_sweep_map_caches_gate_rows(self, set_circuit, tmp_path):
        store = tmp_path / "store"
        kwargs = dict(
            config=CONFIG, jumps_per_point=100, campaign=store,
        )
        first = sweep_map(
            set_circuit, [0.015, 0.02], [0.0, 0.001], **kwargs
        )
        with telemetry.session(trace=False) as reg:
            again = sweep_map(
                set_circuit, [0.015, 0.02], [0.0, 0.001], **kwargs
            )
            assert reg.peek_counter("campaign.cells_computed") == 0
            assert reg.peek_counter("campaign.cell_hits") == 2  # per row
        assert np.array_equal(first.currents, again.currents)

    def test_ensemble_growth_reuses_existing_replicas(
        self, set_circuit, tmp_path
    ):
        store = tmp_path / "store"
        kwargs = dict(
            config=CONFIG, jumps_per_point=100, campaign=store,
        )
        small = ensemble_iv(set_circuit, self.VOLTS, 2, **kwargs)
        with telemetry.session(trace=False) as reg:
            grown = ensemble_iv(set_circuit, self.VOLTS, 3, **kwargs)
            # replica seeds are position-spawned, so the first two
            # replicas are byte-identical payloads: cache hits
            assert reg.peek_counter("campaign.cell_hits") == 2
            assert reg.peek_counter("campaign.cells_computed") == 1
        assert np.array_equal(
            grown.replica_currents[:2], small.replica_currents
        )


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------

@pytest.fixture
def sweep_deck(tmp_path):
    deck = tmp_path / "probe.deck"
    deck.write_text(
        "junc 1 1 4 1e-6 1e-18\n"
        "junc 2 2 4 1e-6 1e-18\n"
        "cap 3 4 3e-18\n"
        "vdc 1 0.02\nvdc 2 -0.02\nvdc 3 0.0\n"
        "symm 1\n"
        "num j 2\nnum ext 3\nnum nodes 4\n"
        "temp 5\n"
        "record 1 2 2\n"
        "jumps 150 1\n"
        "sweep 2 0.02 0.02\n"
    )
    return deck


class TestCampaignCli:
    def _identity(self, sweep_deck, store):
        return [
            str(sweep_deck), "--param", "2=0:0.01:3", "--replicas", "2",
            "--jumps", "150", "--seed", "5", "--store", str(store),
        ]

    def test_run_status_results_gc_round_trip(
        self, sweep_deck, tmp_path, capsys
    ):
        from repro.cli import main

        store = tmp_path / "store"
        identity = self._identity(sweep_deck, store)

        assert main(["campaign", "status", *identity]) == 0
        assert "0/6" in capsys.readouterr().out

        assert main(["campaign", "run", *identity, "--no-ledger"]) == 0
        captured = capsys.readouterr()
        assert "0 cached + 6 computed" in captured.out
        assert "combined event hash:" in captured.out
        first_hash = [
            line for line in captured.out.splitlines()
            if "combined event hash:" in line
        ][0]

        # the second run is entirely served from the store
        assert main(["campaign", "run", *identity, "--no-ledger"]) == 0
        captured = capsys.readouterr()
        assert "6 cached + 0 computed" in captured.out
        assert first_hash in captured.out
        assert "campaign cache: 6 cached, 0 computed" in captured.err

        assert main(["campaign", "status", *identity]) == 0
        assert "6/6" in capsys.readouterr().out

        out = tmp_path / "grid.npz"
        assert main([
            "campaign", "results", *identity, "--out", str(out),
        ]) == 0
        capsys.readouterr()
        with np.load(out) as data:
            assert data["currents"].shape == (3, 2)
            assert np.array_equal(data["axis_2"], [0.0, 0.005, 0.01])

        # retention: nothing to remove under the current code version
        assert main([
            "campaign", "gc", "--store", str(store), "--keep-current-code",
        ]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_bad_param_spec_is_a_clean_error(
        self, sweep_deck, tmp_path, capsys
    ):
        from repro.cli import main

        code = main([
            "campaign", "status", str(sweep_deck),
            "--param", "nonsense", "--store", str(tmp_path / "s"),
        ])
        assert code == 1
        assert "--param" in capsys.readouterr().err

    def test_unknown_dimension_names_the_sources(
        self, sweep_deck, tmp_path, capsys
    ):
        from repro.cli import main

        code = main([
            "campaign", "status", str(sweep_deck),
            "--param", "bogus=0:1:3", "--store", str(tmp_path / "s"),
        ])
        assert code == 1
        assert "matches no source" in capsys.readouterr().err

    def test_run_deck_with_campaign_store(
        self, sweep_deck, tmp_path, capsys
    ):
        from repro.cli import main

        store = tmp_path / "store"
        args = [
            "run", str(sweep_deck), "--campaign", str(store), "--no-ledger",
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "campaign cache:" in first.err
        assert ", 0 computed" not in first.err

        assert main(args) == 0
        second = capsys.readouterr()
        assert "0 computed" in second.err
        # the CSV on stdout is bit-identical to the first run's
        assert second.out.splitlines()[: len(first.out.splitlines())] \
            == first.out.splitlines()
