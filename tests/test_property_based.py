"""Property-based tests (hypothesis) on core invariants.

Circuit-level properties are checked over circuits drawn from the
``repro.gen`` scenario generator (the same families the differential
fuzzer sweeps), not an ad-hoc local builder — so every invariant here
is exercised on exactly the device distribution the fuzzer explores.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Electrostatics
from repro.constants import E_CHARGE, K_B
from repro.gen import generate_case
from repro.physics.bcs import reduced_dos
from repro.physics.fermi import bose_weight, fermi
from repro.physics.orthodox import orthodox_rate

energies = st.floats(
    min_value=-1e-19, max_value=1e-19, allow_nan=False, allow_infinity=False
)
temperatures = st.floats(min_value=1e-3, max_value=300.0)
resistances = st.floats(min_value=2e4, max_value=1e9)

# draw coordinates into the generator's device families; each (seed,
# index) pair is one deterministic circuit from the fuzzed distribution
gen_seeds = st.integers(min_value=0, max_value=2**31 - 1)
gen_indices = st.integers(min_value=0, max_value=100)

DEVICE_FAMILIES = ("set", "series_array", "trap")


def _generated_circuit(seed, index):
    case = generate_case(seed, index, families=DEVICE_FAMILIES)
    return case.deck().build_circuit()


class TestFermiProperties:
    @given(energy=energies, temperature=temperatures)
    def test_occupation_bounded(self, energy, temperature):
        f = fermi(energy, temperature)
        assert 0.0 <= f <= 1.0

    @given(energy=energies, temperature=temperatures)
    def test_particle_hole_symmetry(self, energy, temperature):
        assert fermi(energy, temperature) == pytest.approx(
            1.0 - fermi(-energy, temperature), abs=1e-12
        )

    @given(energy=energies, temperature=temperatures)
    def test_bose_weight_nonnegative(self, energy, temperature):
        assert bose_weight(energy, temperature) >= 0.0


class TestRateProperties:
    @given(dw=energies, resistance=resistances, temperature=temperatures)
    def test_rates_nonnegative_and_finite(self, dw, resistance, temperature):
        rate = orthodox_rate(dw, resistance, temperature)
        assert rate >= 0.0
        assert math.isfinite(float(rate))

    @given(dw=st.floats(min_value=1e-24, max_value=1e-20),
           resistance=resistances, temperature=temperatures)
    def test_detailed_balance_everywhere(self, dw, resistance, temperature):
        forward = float(orthodox_rate(-dw, resistance, temperature))
        backward = float(orthodox_rate(+dw, resistance, temperature))
        boltzmann = math.exp(-min(dw / (K_B * temperature), 700.0))
        if forward > 0.0:
            assert backward / forward == pytest.approx(boltzmann, rel=1e-6)

    @given(dw=energies, resistance=resistances, temperature=temperatures)
    def test_rate_monotone_in_energy_gain(self, dw, resistance, temperature):
        # lowering dW (more favourable) never lowers the rate
        lower = orthodox_rate(dw - 1e-22, resistance, temperature)
        assert lower >= orthodox_rate(dw, resistance, temperature) - 1e-9


class TestDosProperties:
    @given(
        energy=st.floats(min_value=-1e-21, max_value=1e-21),
        delta=st.floats(min_value=1e-24, max_value=1e-22),
    )
    def test_dos_nonnegative_and_even(self, energy, delta):
        value = reduced_dos(energy, delta)
        assert value >= 0.0
        assert value == pytest.approx(reduced_dos(-energy, delta))

    @given(delta=st.floats(min_value=1e-24, max_value=1e-22))
    def test_gap_empty(self, delta):
        assert reduced_dos(0.99 * delta, delta) == 0.0


class TestElectrostaticsProperties:
    @given(
        seed=gen_seeds, index=gen_indices,
        occupations=st.lists(st.integers(-3, 3), min_size=5, max_size=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_free_energy_antisymmetry(self, seed, index, occupations):
        """dW(a->b) computed from the final state equals -dW(b->a)."""
        circuit = _generated_circuit(seed, index)
        stat = Electrostatics(circuit)
        occ = np.array(occupations[: circuit.n_islands], dtype=np.int64)
        vext = circuit.external_voltages()
        for rj in circuit.resolved_junctions():
            v_before = stat.potentials(occ, vext)
            dw_fwd = stat.free_energy_change(rj.ref_a, rj.ref_b, v_before, vext)
            occ_after = occ.copy()
            if rj.ref_a.is_island:
                occ_after[rj.ref_a.index] -= 1
            if rj.ref_b.is_island:
                occ_after[rj.ref_b.index] += 1
            v_after = stat.potentials(occ_after, vext)
            dw_back = stat.free_energy_change(rj.ref_b, rj.ref_a, v_after, vext)
            assert dw_back == pytest.approx(-dw_fwd, rel=1e-9, abs=1e-30)

    @given(seed=gen_seeds, index=gen_indices)
    @settings(max_examples=30, deadline=None)
    def test_capacitance_matrix_positive_definite(self, seed, index):
        circuit = _generated_circuit(seed, index)
        stat = Electrostatics(circuit)
        eigenvalues = np.linalg.eigvalsh(stat.capacitance_matrix())
        assert np.all(eigenvalues > 0.0)

    @given(
        seed=gen_seeds, index=gen_indices,
        occupations=st.lists(st.integers(-2, 2), min_size=4, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_potential_update_consistency(self, seed, index, occupations):
        """Incremental dv equals re-solved potentials for any event."""
        circuit = _generated_circuit(seed, index)
        stat = Electrostatics(circuit)
        occ = np.array(occupations[: circuit.n_islands], dtype=np.int64)
        vext = circuit.external_voltages()
        rj = circuit.resolved_junctions()[-1]
        v0 = stat.potentials(occ, vext)
        dv = stat.potential_update(rj.ref_a, rj.ref_b, -E_CHARGE)
        occ_after = occ.copy()
        if rj.ref_a.is_island:
            occ_after[rj.ref_a.index] -= 1
        if rj.ref_b.is_island:
            occ_after[rj.ref_b.index] += 1
        v1 = stat.potentials(occ_after, vext)
        np.testing.assert_allclose(v0 + dv, v1, atol=1e-16)


class TestNetlistProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_decompose_preserves_function_on_random_vector(self, seed):
        from repro.logic import decompose
        from repro.logic.benchmarks import full_adder_bench

        rng = np.random.default_rng(seed)
        net = full_adder_bench()
        lowered = decompose(net)
        vec = {n: bool(rng.integers(2)) for n in net.inputs}
        assert net.output_values(vec) == lowered.output_values(vec)
