"""Tests for the Fenwick pair-rate sampling tree."""

import numpy as np
import pytest

from repro.core.pairtree import PairRateTree


class TestPairRateTree:
    def test_total_matches_sum(self, rng):
        fw = rng.random(13)
        bw = rng.random(13)
        tree = PairRateTree(fw, bw)
        assert tree.total == pytest.approx(float(np.sum(fw + bw)), rel=1e-12)

    def test_sample_agrees_with_cumsum(self, rng):
        fw = rng.random(10)
        bw = rng.random(10)
        tree = PairRateTree(fw, bw)
        pair = fw + bw
        cumulative = np.cumsum(pair)
        for target in np.linspace(1e-6, tree.total * (1 - 1e-9), 50):
            j, residual = tree.sample(target)
            expected = int(np.searchsorted(cumulative, target, side="right"))
            expected = min(expected, 9)
            assert j == expected
            base = cumulative[expected - 1] if expected else 0.0
            assert residual == pytest.approx(target - base, abs=1e-12)

    def test_update_changes_sampling(self):
        fw = np.array([1.0, 0.0, 0.0])
        bw = np.zeros(3)
        tree = PairRateTree(fw, bw)
        assert tree.sample(0.5)[0] == 0
        tree.update(0, 0.0)
        tree.update(2, 4.0)
        assert tree.total == pytest.approx(4.0)
        assert tree.sample(0.5)[0] == 2

    def test_update_total_consistency(self, rng):
        fw = rng.random(31)
        bw = rng.random(31)
        tree = PairRateTree(fw, bw)
        for j in (0, 7, 30, 15):
            fw[j] = rng.random()
            bw[j] = rng.random()
            tree.update(j, fw[j] + bw[j])
        assert tree.total == pytest.approx(float(np.sum(fw + bw)), rel=1e-12)

    def test_rebuild_resets_state(self, rng):
        fw = rng.random(5)
        bw = rng.random(5)
        tree = PairRateTree(fw, bw)
        tree.update(2, 100.0)
        tree.rebuild(fw, bw)
        assert tree.total == pytest.approx(float(np.sum(fw + bw)), rel=1e-12)

    def test_non_power_of_two_sizes(self, rng):
        for n in (1, 3, 6, 17):
            fw = rng.random(n)
            bw = rng.random(n)
            tree = PairRateTree(fw, bw)
            j, _ = tree.sample(tree.total * 0.999999)
            assert 0 <= j < n

    def test_edge_target_clamped_into_range(self):
        tree = PairRateTree(np.array([1.0, 2.0]), np.zeros(2))
        j, residual = tree.sample(3.0)  # exactly the total
        assert j == 1
        assert residual <= 2.0

    def test_sampling_distribution(self, rng):
        fw = np.array([1.0, 2.0, 3.0])
        bw = np.array([0.0, 1.0, 2.0])
        tree = PairRateTree(fw, bw)
        counts = np.zeros(3)
        n = 30000
        for _ in range(n):
            j, _ = tree.sample(rng.random() * tree.total)
            counts[j] += 1
        probabilities = (fw + bw) / (fw + bw).sum()
        np.testing.assert_allclose(counts / n, probabilities, atol=0.02)
