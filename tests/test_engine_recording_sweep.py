"""Tests for the engine loop, recorders and sweep drivers."""

import numpy as np
import pytest

from repro.circuit import build_set
from repro.core import (
    CurrentRecorder,
    EventLogRecorder,
    MonteCarloEngine,
    NodeVoltageRecorder,
    SimulationConfig,
    sweep_iv,
    symmetric_bias,
)
from repro.errors import SimulationError


@pytest.fixture
def biased_engine():
    circuit = build_set(vs=0.02, vd=-0.02)
    return MonteCarloEngine(
        circuit, SimulationConfig(temperature=5.0, solver="nonadaptive", seed=3)
    )


class TestEngine:
    def test_run_by_jumps(self, biased_engine):
        result = biased_engine.run(max_jumps=500)
        assert result.jumps == 500
        assert result.simulated_time > 0.0

    def test_run_by_simulated_time(self, biased_engine):
        result = biased_engine.run(max_time=1e-9)
        assert biased_engine.solver.time >= 1e-9
        assert result.jumps > 0

    def test_run_requires_a_budget(self, biased_engine):
        with pytest.raises(SimulationError):
            biased_engine.run()

    def test_set_sources_unknown_name(self, biased_engine):
        with pytest.raises(SimulationError):
            biased_engine.set_sources({"ghost": 0.1})

    def test_measure_current_sign_convention(self, biased_engine):
        # positive Vds drives positive current through j1 (source->island)
        current = biased_engine.measure_current([0], jumps=20000)
        assert current > 0.0

    def test_series_orientation_averaging(self, biased_engine):
        i_both = biased_engine.measure_current(
            [0, 1], jumps=20000, orientations=[+1, -1]
        )
        assert i_both > 0.0

    def test_orientation_length_checked(self, biased_engine):
        with pytest.raises(SimulationError):
            biased_engine.measure_current([0, 1], jumps=100, orientations=[1])

    def test_stats_are_snapshots(self, biased_engine):
        r1 = biased_engine.run(max_jumps=100)
        r2 = biased_engine.run(max_jumps=100)
        assert r1.stats.events == 100
        assert r2.stats.events == 200


class TestRecorders:
    def test_current_recorder_matches_flux_average(self, biased_engine):
        recorder = biased_engine.add_recorder(CurrentRecorder(0, interval=50))
        biased_engine.run(max_jumps=5000)
        direct = biased_engine.solver.junction_current(0, 0, 0.0)
        assert recorder.mean_current() == pytest.approx(direct, rel=0.35)

    def test_current_recorder_requires_samples(self):
        recorder = CurrentRecorder(0, interval=10)
        with pytest.raises(SimulationError):
            recorder.mean_current()

    def test_node_voltage_recorder_samples(self, biased_engine):
        recorder = biased_engine.add_recorder(NodeVoltageRecorder(0, interval=10))
        biased_engine.run(max_jumps=200)
        assert len(recorder.samples) == 21  # on_start + 200/10
        assert recorder.times().shape == recorder.voltages().shape

    def test_event_log_bounded(self, biased_engine):
        recorder = biased_engine.add_recorder(EventLogRecorder(max_events=50))
        biased_engine.run(max_jumps=300)
        assert len(recorder.events) == 50
        assert recorder.events[-1].kind == "sequential"

    def test_bad_interval_rejected(self):
        with pytest.raises(SimulationError):
            CurrentRecorder(0, interval=0)
        with pytest.raises(SimulationError):
            NodeVoltageRecorder(0, interval=0)


class TestSweep:
    def test_iv_sweep_antisymmetric_and_blockaded(self):
        circuit = build_set()
        voltages = [-0.04, -0.005, 0.005, 0.04]
        curve = sweep_iv(
            circuit, voltages,
            SimulationConfig(temperature=5.0, solver="nonadaptive", seed=9),
            jumps_per_point=4000,
        )
        # blockade: inner points carry orders of magnitude less current
        assert abs(curve.currents[1]) < 0.02 * abs(curve.currents[0])
        assert abs(curve.currents[2]) < 0.02 * abs(curve.currents[3])
        # antisymmetric-ish
        assert curve.currents[0] == pytest.approx(-curve.currents[3], rel=0.3)

    def test_symmetric_bias_setter(self):
        setter = symmetric_bias()
        assert setter(0.02) == {"vs": 0.01, "vd": -0.01}

    def test_sweep_labels_and_shapes(self):
        circuit = build_set()
        curve = sweep_iv(
            circuit, [0.04],
            SimulationConfig(temperature=5.0, solver="nonadaptive", seed=1),
            jumps_per_point=500, label="test",
        )
        assert curve.label == "test"
        assert curve.voltages.shape == curve.currents.shape == (1,)
