"""Tests for the cyclic (multi-transition) delay protocol."""

import numpy as np
import pytest

from repro.core import SimulationConfig
from repro.errors import SimulationError
from repro.logic import (
    Gate,
    GateKind,
    LogicNetlist,
    map_to_circuit,
    measure_cyclic_delay,
)
from repro.logic.stimuli import StepStimulus


@pytest.fixture(scope="module")
def inverter_pair():
    net = LogicNetlist(
        "pair", ["x"], ["z"],
        [
            Gate("g1", GateKind.INV, ("x",), "y"),
            Gate("g2", GateKind.INV, ("y",), "z"),
        ],
    )
    return map_to_circuit(net)


class TestCyclicDelay:
    def test_returns_requested_number_of_samples(self, inverter_pair):
        stim = StepStimulus({"x": False}, {"x": True}, (("z", True),))
        config = SimulationConfig(temperature=1.5, solver="nonadaptive", seed=2)
        delays = measure_cyclic_delay(
            inverter_pair, stim, config, cycles=4, settle_jumps=2000,
            max_jumps=120_000,
        )
        assert len(delays) == 4
        assert all(d > 0.0 for d in delays)

    def test_samples_vary_between_cycles(self, inverter_pair):
        stim = StepStimulus({"x": False}, {"x": True}, (("z", True),))
        config = SimulationConfig(temperature=1.5, solver="nonadaptive", seed=3)
        delays = measure_cyclic_delay(
            inverter_pair, stim, config, cycles=5, settle_jumps=2000,
            max_jumps=120_000,
        )
        assert len(set(np.round(np.array(delays), 15))) > 1

    def test_adaptive_and_nonadaptive_medians_agree(self, inverter_pair):
        stim = StepStimulus({"x": False}, {"x": True}, (("z", True),))
        medians = {}
        for solver in ("nonadaptive", "adaptive"):
            samples = []
            for seed in (1, 2, 3):
                config = SimulationConfig(
                    temperature=1.5, solver=solver, seed=seed
                )
                samples += measure_cyclic_delay(
                    inverter_pair, stim, config, cycles=3,
                    settle_jumps=2000, max_jumps=120_000,
                )
            medians[solver] = float(np.median(samples))
        assert medians["adaptive"] == pytest.approx(
            medians["nonadaptive"], rel=0.6
        )

    def test_stimulus_without_toggles_rejected(self, inverter_pair):
        vec = {"x": False}
        stim = StepStimulus(vec, vec, ())
        with pytest.raises(SimulationError):
            measure_cyclic_delay(inverter_pair, stim)
