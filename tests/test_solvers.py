"""Tests for the two Monte Carlo solvers and their equivalence.

The strongest correctness property of the adaptive algorithm: with a
zero threshold it must reproduce the conventional solver's trajectory
*exactly* (same seed, same events, same times), because every tested
junction is flagged and recomputed.
"""

import numpy as np
import pytest

from repro.circuit import build_set
from repro.core import MonteCarloEngine, SimulationConfig
from repro.errors import SimulationError


def engines(circuit, **overrides):
    base = dict(temperature=4.2, seed=42)
    base.update(overrides)
    na = MonteCarloEngine(circuit, SimulationConfig(solver="nonadaptive", **base))
    ad = MonteCarloEngine(circuit, SimulationConfig(solver="adaptive", **base))
    return na, ad


class TestTrajectoryEquivalence:
    def test_zero_threshold_exact_match_set(self, set_circuit):
        circuit = set_circuit.with_source_voltages({"vs": 0.02, "vd": -0.02})
        na, ad = engines(circuit, adaptive_threshold=0.0)
        na.run(max_jumps=2000)
        ad.run(max_jumps=2000)
        assert na.solver.time == pytest.approx(ad.solver.time, rel=1e-12)
        assert np.array_equal(na.solver.flux, ad.solver.flux)
        assert np.array_equal(na.solver.occupation, ad.solver.occupation)

    def test_zero_threshold_exact_match_double_dot(self, double_dot_circuit):
        circuit = double_dot_circuit.with_source_voltages(
            {"vl": 0.03, "vr": -0.03, "vg1": 0.01}
        )
        na, ad = engines(circuit, adaptive_threshold=0.0, temperature=2.0)
        na.run(max_jumps=3000)
        ad.run(max_jumps=3000)
        assert na.solver.time == pytest.approx(ad.solver.time, rel=1e-12)
        assert np.array_equal(na.solver.flux, ad.solver.flux)

    def test_zero_threshold_exact_match_through_source_changes(self, set_circuit):
        na, ad = engines(set_circuit, adaptive_threshold=0.0)
        for engine in (na, ad):
            engine.run(max_jumps=500)
            engine.set_sources({"vs": 0.015, "vd": -0.015})
            engine.run(max_jumps=500)
            engine.set_sources({"vg": 0.01})
            engine.run(max_jumps=500)
        assert na.solver.time == pytest.approx(ad.solver.time, rel=1e-12)
        assert np.array_equal(na.solver.flux, ad.solver.flux)


class TestAdaptiveAccuracy:
    def test_default_threshold_current_within_tolerance(self, set_circuit):
        circuit = set_circuit.with_source_voltages({"vs": 0.02, "vd": -0.02})
        na, ad = engines(circuit, adaptive_threshold=0.05)
        i_na = na.measure_current([0], jumps=30000)
        i_ad = ad.measure_current([0], jumps=30000)
        assert i_ad == pytest.approx(i_na, rel=0.1)

    def test_work_reduction_on_multi_stage_circuit(self):
        from repro.logic import build_benchmark

        mapped = build_benchmark("74LS138")
        na, ad = engines(
            mapped.circuit, temperature=1.5,
        )
        na.run(max_jumps=2000)
        ad.run(max_jumps=2000)
        na_evals = na.solver.stats.sequential_rate_evaluations
        ad_evals = ad.solver.stats.sequential_rate_evaluations
        assert ad_evals < na_evals / 5  # large reduction in rate work

    def test_periodic_refresh_counted(self, set_circuit):
        _, ad = engines(set_circuit.with_source_voltages({"vs": 0.02, "vd": -0.02}))
        ad.config.full_refresh_interval  # default 1000
        ad.run(max_jumps=2500)
        assert ad.solver.stats.full_refreshes >= 3  # initial + 2 periodic


class TestSolverStateIntegrity:
    def test_adaptive_potentials_track_exact_solution(self, double_dot_circuit):
        circuit = double_dot_circuit.with_source_voltages(
            {"vl": 0.02, "vr": -0.02}
        )
        _, ad = engines(circuit, temperature=2.0)
        ad.run(max_jumps=700)
        exact = ad.electrostatics.potentials(ad.solver.occupation, ad.solver.vext)
        assert np.allclose(ad.solver.potentials(), exact, atol=1e-15)

    def test_charge_conservation_island_flux(self, set_circuit):
        circuit = set_circuit.with_source_voltages({"vs": 0.02, "vd": -0.02})
        na, _ = engines(circuit)
        na.run(max_jumps=5000)
        # net electrons onto the island = flux(j1 a->b=source->island)
        # + flux(j2 a->b=drain->island)
        island_gain = na.solver.flux[0] + na.solver.flux[1]
        assert island_gain == na.solver.occupation[0]

    def test_blockaded_circuit_raises_instead_of_hanging(self, set_circuit):
        # zero bias at T = 0: every rate vanishes
        frozen = set_circuit.with_source_voltages({"vs": 0.0, "vd": 0.0})
        engine = MonteCarloEngine(
            frozen, SimulationConfig(temperature=0.0, solver="nonadaptive")
        )
        with pytest.raises(SimulationError):
            engine.run(max_jumps=10)

    def test_initial_occupation_shape_checked(self, set_circuit):
        with pytest.raises(SimulationError):
            MonteCarloEngine(
                set_circuit, SimulationConfig(),
                initial_occupation=np.zeros(5),
            )
