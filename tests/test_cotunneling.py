"""Tests for second-order inelastic cotunneling."""

import math

import numpy as np
import pytest

from repro.circuit import build_junction_array, build_set
from repro.constants import E_CHARGE, HBAR, K_B
from repro.errors import PhysicsError
from repro.physics.cotunneling import (
    cotunneling_current_t0,
    cotunneling_rate,
    default_energy_floor,
    enumerate_paths,
)

R1 = R2 = 1e6
E1 = E2 = 1e-21  # virtual state costs
FLOOR = 1e-24


class TestRate:
    def test_zero_temperature_cubic_law(self):
        # Gamma ~ W^3 at T = 0 (the famous V^3 cotunneling current)
        w1, w2 = 1e-22, 2e-22
        g1 = cotunneling_rate(-w1, E1, E2, R1, R2, 0.0, FLOOR)
        g2 = cotunneling_rate(-w2, E1, E2, R1, R2, 0.0, FLOOR)
        assert g2 / g1 == pytest.approx((w2 / w1) ** 3, rel=1e-9)

    def test_zero_temperature_unfavourable_is_zero(self):
        assert cotunneling_rate(+1e-22, E1, E2, R1, R2, 0.0, FLOOR) == 0.0

    def test_exact_t0_prefactor(self):
        w = 1e-22
        expected = (
            HBAR / (2 * math.pi * E_CHARGE**4 * R1 * R2)
            * (1 / E1 + 1 / E2) ** 2
            * w**3 / 6.0
        )
        assert cotunneling_rate(-w, E1, E2, R1, R2, 0.0, FLOOR) == pytest.approx(
            expected, rel=1e-9
        )

    def test_detailed_balance(self):
        t, w = 1.0, 3e-23
        fw = cotunneling_rate(-w, E1, E2, R1, R2, t, FLOOR)
        bw = cotunneling_rate(+w, E1, E2, R1, R2, t, FLOOR)
        assert bw / fw == pytest.approx(math.exp(-w / (K_B * t)), rel=1e-9)

    def test_virtual_energy_floor_regularises(self):
        # an energetically allowed intermediate state must not diverge
        unfloored = cotunneling_rate(-1e-22, -1e-25, E2, R1, R2, 0.0, FLOOR)
        assert math.isfinite(unfloored)
        assert unfloored == cotunneling_rate(-1e-22, FLOOR, E2, R1, R2, 0.0, FLOOR)

    def test_smaller_virtual_energy_means_faster_cotunneling(self):
        fast = cotunneling_rate(-1e-22, E1 / 10, E2 / 10, R1, R2, 0.0, FLOOR)
        slow = cotunneling_rate(-1e-22, E1, E2, R1, R2, 0.0, FLOOR)
        assert fast > slow

    def test_rejects_bad_resistance(self):
        with pytest.raises(PhysicsError):
            cotunneling_rate(-1e-22, E1, E2, 0.0, R2, 0.0, FLOOR)

    def test_rejects_bad_floor(self):
        with pytest.raises(PhysicsError):
            cotunneling_rate(-1e-22, E1, E2, R1, R2, 0.0, 0.0)


class TestT0Current:
    def test_cubic_in_voltage(self):
        i1 = cotunneling_current_t0(1e-3, E1, E2, R1, R2)
        i2 = cotunneling_current_t0(2e-3, E1, E2, R1, R2)
        assert i2 / i1 == pytest.approx(8.0)

    def test_consistent_with_rate_difference(self):
        # I = e * (Gamma(-eV) - Gamma(+eV)) with fixed virtual energies
        v = 1e-3
        w = E_CHARGE * v
        net = E_CHARGE * (
            cotunneling_rate(-w, E1, E2, R1, R2, 0.0, FLOOR)
            - cotunneling_rate(+w, E1, E2, R1, R2, 0.0, FLOOR)
        )
        assert cotunneling_current_t0(v, E1, E2, R1, R2) == pytest.approx(
            net, rel=1e-9
        )


class TestPathEnumeration:
    def test_set_has_two_transport_paths(self):
        # source->island->drain and drain->island->source (entry and
        # exit through the same lead are excluded)
        circuit = build_set()
        paths = enumerate_paths(circuit)
        assert len(paths) == 2
        endpoints = {(p.ref_a.index, p.ref_b.index) for p in paths}
        assert len(endpoints) == 2

    def test_array_paths_per_interior_island(self):
        circuit = build_junction_array(3, gate_capacitance=1e-18)
        paths = enumerate_paths(circuit)
        # 2 interior islands, each passed through in 2 directions
        assert len(paths) == 4

    def test_path_directions_are_consistent(self):
        circuit = build_set()
        for path in enumerate_paths(circuit):
            assert path.direction_in in (-1, +1)
            assert path.direction_out in (-1, +1)
            assert path.ref_m.is_island


class TestDefaultFloor:
    def test_floor_tracks_temperature(self):
        cold = default_energy_floor(0.1, 1e-21)
        warm = default_energy_floor(10.0, 1e-21)
        assert warm > cold

    def test_floor_tracks_charging_scale_at_low_t(self):
        assert default_energy_floor(0.0, 1e-21) == pytest.approx(0.05e-21)

    def test_rejects_bad_charging_scale(self):
        with pytest.raises(PhysicsError):
            default_energy_floor(1.0, 0.0)
