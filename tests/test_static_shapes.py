"""Unit tests for the symbolic shape/dtype algebra of ``repro.static``."""

from __future__ import annotations

import pytest

from repro.errors import ContractError
from repro.static import parse_spec
from repro.static.shapes import (
    BroadcastError,
    broadcast,
    broadcast_dims,
    format_shape,
    is_narrowing,
    join_shape,
    matmul_shape,
    promote,
    reduce_shape,
)


class TestBroadcastDims:
    def test_ones_yield_the_other_dim(self):
        assert broadcast_dims(1, 7) == 7
        assert broadcast_dims("n", 1) == "n"

    def test_equal_ints(self):
        assert broadcast_dims(5, 5) == 5

    def test_int_mismatch_raises(self):
        with pytest.raises(BroadcastError):
            broadcast_dims(3, 4)

    def test_same_symbol_survives(self):
        assert broadcast_dims("n", "n") == "n"

    def test_differing_symbols_widen_not_flag(self):
        # "n" may equal "m" at runtime; the algebra must not invent a
        # conflict it cannot prove
        assert broadcast_dims("n", "m") is None

    def test_unknown_vs_concrete_is_the_concrete(self):
        # the unknown dim must equal the concrete one (or be 1, in
        # which case the result is still the concrete one)
        assert broadcast_dims(None, 5) == 5

    def test_unknown_vs_symbol_stays_unknown(self):
        assert broadcast_dims(None, "n") is None


class TestBroadcastShapes:
    def test_right_aligned_padding(self):
        assert broadcast((4, 3), (3,)) == (4, 3)

    def test_scalar_against_vector(self):
        assert broadcast((), ("n",)) == ("n",)

    def test_mismatch_raises(self):
        with pytest.raises(BroadcastError):
            broadcast((3,), (4,))

    def test_unknown_shape_gives_up(self):
        assert broadcast(None, (3,)) is None


class TestJoin:
    def test_join_is_widening(self):
        assert join_shape((3,), (4,)) == (None,)
        assert join_shape(("n", 3), ("n", 3)) == ("n", 3)

    def test_rank_mismatch_widens_to_unknown(self):
        assert join_shape((3,), (3, 3)) is None


class TestReduce:
    def test_full_reduction(self):
        assert reduce_shape(("n", 3), None) == ()

    def test_axis_drops_one_dim(self):
        assert reduce_shape(("n", 3), 1) == ("n",)
        assert reduce_shape(("n", 3), -1) == ("n",)

    def test_keepdims(self):
        assert reduce_shape(("n", 3), 1, keepdims=True) == ("n", 1)

    def test_out_of_range_is_reported_not_raised(self):
        result = reduce_shape(("n",), 1)
        assert isinstance(result, BroadcastError)


class TestMatmul:
    def test_mat_vec(self):
        assert matmul_shape((3, 4), (4,)) == (3,)

    def test_mat_mat(self):
        assert matmul_shape(("n", 4), (4, "m")) == ("n", "m")

    def test_vec_vec_is_scalar(self):
        assert matmul_shape((4,), (4,)) == ()

    def test_inner_mismatch(self):
        assert isinstance(matmul_shape((3, 3), (4,)), BroadcastError)

    def test_symbolic_inner_not_flagged(self):
        assert matmul_shape(("n", "k"), ("j",)) == ("n",)


class TestDtypes:
    def test_promotion_order(self):
        assert promote("int64", "float64") == "float64"
        assert promote("float32", "float64") == "float64"
        assert promote("float64", "complex128") == "complex128"

    def test_unknown_absorbs(self):
        assert promote(None, "float64") is None

    def test_narrowing(self):
        assert is_narrowing("float64", "float32")
        assert not is_narrowing("float32", "float64")
        assert not is_narrowing(None, "float32")


class TestSpecParsing:
    def test_scalar_and_vector_specs(self):
        assert parse_spec("() float64").shape == ()
        assert parse_spec("(n_islands,) float64").shape == ("n_islands",)
        assert parse_spec("(n, 3) float64").shape == ("n", 3)

    def test_any_shape(self):
        assert parse_spec("any float64").shape is None

    def test_dtype_aliases(self):
        assert parse_spec("(n,) float").dtype == "float64"
        assert parse_spec("(n,) int").dtype == "int64"

    def test_bad_dtype_raises(self):
        with pytest.raises(ContractError):
            parse_spec("(n,) float16")

    def test_bad_shape_raises(self):
        with pytest.raises(ContractError):
            parse_spec("(n float64")
        with pytest.raises(ContractError):
            parse_spec("(n!) float64")

    def test_format_shape_roundtrip(self):
        assert format_shape(("n_islands",)) == "(n_islands,)"
        assert format_shape(()) == "()"
        assert format_shape(None) == "(?rank)"
