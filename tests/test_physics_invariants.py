"""Parametrised physics invariants across solvers and devices.

These are the conservation and consistency laws any single-electron
simulator must satisfy regardless of parameters; they run over a grid
of solvers, temperatures and devices.
"""

import numpy as np
import pytest

from repro.circuit import build_junction_array, build_set
from repro.constants import E_CHARGE, K_B, MEV
from repro.core import MonteCarloEngine, SimulationConfig
from repro.master import MasterEquationSolver
from repro.physics.orthodox import orthodox_rate
from repro.physics.quasiparticle import QuasiparticleRateTable, qp_rate

SOLVERS = ("nonadaptive", "adaptive")
TEMPERATURES = (1.0, 5.0)


class TestCurrentContinuity:
    @pytest.mark.parametrize("solver", SOLVERS)
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_series_junction_currents_match(self, solver, temperature):
        """Charge conservation: the time-averaged current through every
        junction of a series device is identical."""
        circuit = build_set(vs=0.025, vd=-0.025, vg=0.01)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature, solver=solver,
                                      seed=13)
        )
        engine.run(max_jumps=2000)  # warm up
        f0 = engine.solver.flux.copy()
        engine.solver.reset_window()
        engine.run(max_jumps=30000)
        elapsed = engine.solver.window_elapsed
        df = engine.solver.flux - f0
        i1 = -E_CHARGE * df[0] / elapsed
        i2 = +E_CHARGE * df[1] / elapsed  # opposite a->b orientation
        assert i1 == pytest.approx(i2, rel=0.05)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_three_junction_chain_continuity(self, solver):
        circuit = build_junction_array(3, gate_capacitance=2e-18, bias=0.08)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=2.0, solver=solver, seed=14)
        )
        engine.run(max_jumps=2000)
        f0 = engine.solver.flux.copy()
        engine.solver.reset_window()
        engine.run(max_jumps=30000)
        df = (engine.solver.flux - f0) / engine.solver.window_elapsed
        # all three junctions are oriented along the chain
        assert df[0] == pytest.approx(df[1], rel=0.07)
        assert df[1] == pytest.approx(df[2], rel=0.07)


class TestOccupationBookkeeping:
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_island_charge_equals_net_flux(self, solver):
        """For every island, occupancy equals the net electron flux of
        the junctions oriented into it — event bookkeeping is exact."""
        circuit = build_junction_array(3, gate_capacitance=2e-18, bias=0.08)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=2.0, solver=solver, seed=15)
        )
        engine.run(max_jumps=5000)
        flux = engine.solver.flux
        occupation = engine.solver.occupation
        # chain: j0: lead->isl1, j1: isl1->isl2, j2: isl2->lead
        assert occupation[0] == flux[0] - flux[1]
        assert occupation[1] == flux[1] - flux[2]


class TestZeroBiasEquilibrium:
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_no_net_current_without_bias(self, temperature):
        circuit = build_set(vs=0.0, vd=0.0, vg=0.012)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature,
                                      solver="nonadaptive", seed=16)
        )
        current = engine.measure_current([0], 40000)
        # thermal shuttling is large; the *net* current must vanish
        engine2 = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature,
                                      solver="nonadaptive", seed=17)
        )
        engine2.run(max_jumps=5000)
        shuttle_rate = engine2.solver.stats.events / engine2.solver.time
        current_scale = E_CHARGE * shuttle_rate
        assert abs(current) < 0.05 * current_scale


class TestDetailedBalanceGrid:
    """Property test: the orthodox rate obeys detailed balance,
    ``rate(+dW) / rate(-dW) = exp(-dW / k_B T)``, over a log-spaced
    ``dW / k_B T`` grid spanning five decades — compared in log space,
    because the ratio itself crosses ~20 decades."""

    @pytest.mark.parametrize("temperature", (0.05, 0.5, 4.2, 20.0))
    @pytest.mark.parametrize("resistance", (5e4, 1e6))
    def test_orthodox_detailed_balance_log_grid(self, temperature, resistance):
        kt = K_B * temperature
        for x in np.logspace(-3, np.log10(50.0), 25):
            dw = float(x * kt)
            forward = orthodox_rate(-dw, resistance, temperature)
            backward = orthodox_rate(+dw, resistance, temperature)
            assert forward > 0.0 and backward > 0.0
            log_ratio = np.log(backward) - np.log(forward)
            assert log_ratio == pytest.approx(-x, rel=1e-6, abs=1e-9)


class TestRateTableFidelity:
    """Property test: the tabulated quasi-particle rate agrees with
    direct quadrature everywhere in its span — the guard against silent
    interpolation-grid regressions.

    At the gap edge the rate varies exponentially while sitting ~5
    decades below its peak, so a pure relative comparison is
    meaningless there; the contract is tight relative agreement
    wherever the rate is significant, plus a peak-scaled absolute bound
    everywhere.
    """

    DELTA = 0.2 * MEV
    R = 1e5
    T = 0.3

    def test_table_matches_direct_quadrature_across_span(self):
        table = QuasiparticleRateTable(
            self.R, self.DELTA, self.DELTA, self.T, n_points=2001
        )
        # off-node sampling: 241 does not divide the 2000 table panels,
        # so nearly every probe lands between grid nodes
        grid = np.linspace(-table.dw_max, table.dw_max, 241)
        direct = np.array([
            qp_rate(float(dw), self.R, self.DELTA, self.DELTA, self.T)
            for dw in grid
        ])
        interp = np.asarray(table(grid))
        peak = float(direct.max())
        assert peak > 0.0
        significant = direct > 1e-3 * peak
        assert significant.any()
        np.testing.assert_allclose(
            interp[significant], direct[significant], rtol=0.02
        )
        np.testing.assert_allclose(interp, direct, rtol=1.0, atol=2e-4 * peak)


class TestSolverAgreementAcrossPhysics:
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_adaptive_matches_me_on_double_dot(self, temperature,
                                               double_dot_circuit):
        circuit = double_dot_circuit.with_source_voltages(
            {"vl": 0.04, "vr": -0.04, "vg1": 0.005}
        )
        reference = MasterEquationSolver(
            circuit, temperature=temperature
        ).steady_state()
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature,
                                      solver="adaptive", seed=18)
        )
        current = engine.measure_current([0], 40000)
        assert current == pytest.approx(
            float(reference.junction_currents[0]), rel=0.1
        )
