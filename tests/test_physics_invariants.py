"""Parametrised physics invariants across solvers and devices.

These are the conservation and consistency laws any single-electron
simulator must satisfy regardless of parameters; they run over a grid
of solvers, temperatures and devices.
"""

import numpy as np
import pytest

from repro.circuit import build_junction_array, build_set
from repro.constants import E_CHARGE
from repro.core import MonteCarloEngine, SimulationConfig
from repro.master import MasterEquationSolver

SOLVERS = ("nonadaptive", "adaptive")
TEMPERATURES = (1.0, 5.0)


class TestCurrentContinuity:
    @pytest.mark.parametrize("solver", SOLVERS)
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_series_junction_currents_match(self, solver, temperature):
        """Charge conservation: the time-averaged current through every
        junction of a series device is identical."""
        circuit = build_set(vs=0.025, vd=-0.025, vg=0.01)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature, solver=solver,
                                      seed=13)
        )
        engine.run(max_jumps=2000)  # warm up
        f0 = engine.solver.flux.copy()
        engine.solver.reset_window()
        engine.run(max_jumps=30000)
        elapsed = engine.solver.window_elapsed
        df = engine.solver.flux - f0
        i1 = -E_CHARGE * df[0] / elapsed
        i2 = +E_CHARGE * df[1] / elapsed  # opposite a->b orientation
        assert i1 == pytest.approx(i2, rel=0.05)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_three_junction_chain_continuity(self, solver):
        circuit = build_junction_array(3, gate_capacitance=2e-18, bias=0.08)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=2.0, solver=solver, seed=14)
        )
        engine.run(max_jumps=2000)
        f0 = engine.solver.flux.copy()
        engine.solver.reset_window()
        engine.run(max_jumps=30000)
        df = (engine.solver.flux - f0) / engine.solver.window_elapsed
        # all three junctions are oriented along the chain
        assert df[0] == pytest.approx(df[1], rel=0.07)
        assert df[1] == pytest.approx(df[2], rel=0.07)


class TestOccupationBookkeeping:
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_island_charge_equals_net_flux(self, solver):
        """For every island, occupancy equals the net electron flux of
        the junctions oriented into it — event bookkeeping is exact."""
        circuit = build_junction_array(3, gate_capacitance=2e-18, bias=0.08)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=2.0, solver=solver, seed=15)
        )
        engine.run(max_jumps=5000)
        flux = engine.solver.flux
        occupation = engine.solver.occupation
        # chain: j0: lead->isl1, j1: isl1->isl2, j2: isl2->lead
        assert occupation[0] == flux[0] - flux[1]
        assert occupation[1] == flux[1] - flux[2]


class TestZeroBiasEquilibrium:
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_no_net_current_without_bias(self, temperature):
        circuit = build_set(vs=0.0, vd=0.0, vg=0.012)
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature,
                                      solver="nonadaptive", seed=16)
        )
        current = engine.measure_current([0], 40000)
        # thermal shuttling is large; the *net* current must vanish
        engine2 = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature,
                                      solver="nonadaptive", seed=17)
        )
        engine2.run(max_jumps=5000)
        shuttle_rate = engine2.solver.stats.events / engine2.solver.time
        current_scale = E_CHARGE * shuttle_rate
        assert abs(current) < 0.05 * current_scale


class TestSolverAgreementAcrossPhysics:
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_adaptive_matches_me_on_double_dot(self, temperature,
                                               double_dot_circuit):
        circuit = double_dot_circuit.with_source_voltages(
            {"vl": 0.04, "vr": -0.04, "vg1": 0.005}
        )
        reference = MasterEquationSolver(
            circuit, temperature=temperature
        ).steady_state()
        engine = MonteCarloEngine(
            circuit, SimulationConfig(temperature=temperature,
                                      solver="adaptive", seed=18)
        )
        current = engine.measure_current([0], 40000)
        assert current == pytest.approx(
            float(reference.junction_currents[0]), rel=0.1
        )
