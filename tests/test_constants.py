"""Tests for physical constants and helpers."""

import math

import pytest

from repro import constants
from repro.errors import PhysicsError


def test_elementary_charge_value():
    assert constants.E_CHARGE == pytest.approx(1.602176634e-19)


def test_boltzmann_value():
    assert constants.K_B == pytest.approx(1.380649e-23)


def test_hbar_consistent_with_h():
    assert constants.HBAR == pytest.approx(constants.H_PLANCK / (2 * math.pi))


def test_resistance_quantum_is_about_6_45_kohm():
    assert constants.R_QUANTUM == pytest.approx(6453.2, rel=1e-3)


def test_mev_is_one_thousandth_of_ev():
    assert constants.MEV == pytest.approx(constants.EV / 1000.0)


def test_thermal_energy_at_one_kelvin():
    assert constants.thermal_energy(1.0) == pytest.approx(constants.K_B)


def test_thermal_energy_zero_temperature():
    assert constants.thermal_energy(0.0) == 0.0


def test_thermal_energy_rejects_negative_temperature():
    with pytest.raises(PhysicsError):
        constants.thermal_energy(-0.1)


def test_bcs_ratio_weak_coupling():
    # Delta(0) = 1.764 k_B Tc is the weak-coupling BCS universal ratio
    assert constants.BCS_RATIO == pytest.approx(1.764, abs=1e-3)
