"""Integration tests: the telemetry layer observing real simulations.

The per-event trace must agree with the solver's own work counters
(``SolverStats``), and — the zero-cost contract's other half —
observing a run must never change its physics.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import MonteCarloEngine
from repro.netlist import parse_semsim
from repro.telemetry import metrics_payload, profile_deck
from repro.telemetry import registry as telemetry

SET_SWEEP = Path(__file__).parent.parent / "examples" / "decks" / "set_sweep.deck"

SMALL_DECK = """
junc 1 1 3 1e-6 1e-18
junc 2 2 3 1e-6 1e-18
cap 4 3 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 4 0.0
temp 5
record 1 2 1
jumps 1000
sweep 1 0.02 0.02
symm 2
"""


@pytest.fixture(autouse=True)
def _telemetry_disabled():
    telemetry.disable()
    yield
    telemetry.disable()


class TestAdaptiveTrace:
    """Trace records versus ``SolverStats`` on the paper's example SET."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        deck = parse_semsim(SET_SWEEP.read_text())
        circuit = deck.build_circuit()
        with telemetry.session() as reg:
            engine = MonteCarloEngine(circuit, deck.config(seed=11))
            # enough events to cross the periodic full refresh (1000)
            engine.run(max_jumps=1500)
            # a stimulus change exercises the retarget path
            vext = engine.solver.vext.copy()
            vext[1] += 0.004
            engine.solver.set_external_voltages(vext)
            engine.run(max_jumps=300)
            stats = engine.solver.stats
        return reg, stats

    def test_every_event_is_recorded(self, traced_run):
        reg, stats = traced_run
        records = [e for e in reg.events if e.name == "solver.event"]
        assert stats.events == 1800
        assert len(records) == stats.events
        assert reg.counter("solver.events").value == stats.events
        assert reg.histogram("solver.dt").count == stats.events

    def test_full_refreshes_match_stats(self, traced_run):
        reg, stats = traced_run
        records = [e for e in reg.events if e.name == "solver.event"]
        refreshes = sum(1 for e in records if e.args["refresh"])
        # the solver's constructor performs one refresh before any step
        assert refreshes == stats.full_refreshes - 1
        assert stats.full_refreshes >= 2  # 1800 events, interval 1000

    def test_flagged_recomputes_match_stats(self, traced_run):
        reg, stats = traced_run
        flagged_in_steps = sum(
            e.args["flagged"] for e in reg.events if e.name == "solver.event"
        )
        flagged_in_retargets = sum(
            e.args["flagged"] for e in reg.events if e.name == "solver.retarget"
        )
        assert (
            flagged_in_steps + flagged_in_retargets
            == stats.flagged_recalculations
        )

    def test_retarget_recorded(self, traced_run):
        reg, _ = traced_run
        retargets = [e for e in reg.events if e.name == "solver.retarget"]
        assert len(retargets) == 1
        assert reg.counter("solver.retargets").value == 1

    def test_per_event_records_carry_error_proxy(self, traced_run):
        reg, _ = traced_run
        records = [e for e in reg.events if e.name == "solver.event"]
        for event in records:
            assert event.args["b_error"] >= 0.0
            assert event.args["dt"] >= 0.0
            assert event.args["junction"] in (0, 1)

    def test_engine_spans_present(self, traced_run):
        reg, _ = traced_run
        names = {e.name for e in reg.events if e.phase == "X"}
        assert {"engine.prepare", "engine.run"} <= names


class TestObservationChangesNothing:
    """Tracing a run must not perturb the simulated physics."""

    def _run(self, traced: bool):
        deck = parse_semsim(SMALL_DECK)
        circuit = deck.build_circuit()
        engine = MonteCarloEngine(circuit, deck.config(seed=7))
        if traced:
            with telemetry.session():
                engine.run(max_jumps=800)
        else:
            engine.run(max_jumps=800)
        solver = engine.solver
        return solver.time, solver.flux.copy(), solver.occupation.copy()

    def test_same_trajectory_with_and_without_telemetry(self):
        time_off, flux_off, occ_off = self._run(traced=False)
        time_on, flux_on, occ_on = self._run(traced=True)
        assert time_on == time_off
        assert np.array_equal(flux_on, flux_off)
        assert np.array_equal(occ_on, occ_off)


class TestDeckRun:
    def test_sweep_trace_and_stats(self):
        deck = parse_semsim(SMALL_DECK)
        with telemetry.session() as reg:
            curve = deck.run(solver="adaptive", seed=1)
        assert curve.stats is not None
        assert curve.stats.events > 0
        span_names = [e.name for e in reg.events if e.phase == "X"]
        assert "deck.build" in span_names
        assert "deck.run" in span_names
        assert span_names.count("deck.point") == len(curve.voltages)

    def test_stats_attached_even_without_telemetry(self):
        deck = parse_semsim(SMALL_DECK)
        curve = deck.run(solver="adaptive", seed=1)
        assert curve.stats is not None
        assert curve.stats.events > 0


class TestProfileDeck:
    def test_report_consistency(self):
        deck = parse_semsim(SMALL_DECK)
        report, reg = profile_deck(deck, seed=2)
        assert telemetry.get_registry() is None  # session restored
        assert report.solver == "adaptive"
        assert report.n_junctions == 2
        assert report.events == report.stats.events > 0
        assert report.baseline_rate_evaluations == 2 * 2 * report.events
        assert report.saved_fraction == pytest.approx(
            1.0 - report.rate_evaluations / report.baseline_rate_evaluations
        )
        assert report.hottest
        assert sum(a.events for a in report.hottest) == report.events
        text = report.format()
        assert "phase wall time" in text
        assert "rate evaluations (sequential)" in text
        assert "work saved" in text
        assert "hottest junctions" in text

    def test_measured_baseline(self):
        deck = parse_semsim(SMALL_DECK)
        report, _ = profile_deck(deck, seed=2, measure_baseline=True)
        assert report.baseline is not None
        assert report.baseline.solver == "nonadaptive"
        # the non-adaptive solver really does 2 x junctions evals/event
        baseline_stats = report.baseline.stats
        assert (
            baseline_stats.sequential_rate_evaluations
            >= 2 * 2 * baseline_stats.events
        )
        assert "measured baseline" in report.format()

    def test_metrics_payload_shape(self):
        deck = parse_semsim(SMALL_DECK)
        _, reg = profile_deck(deck, seed=2)
        payload = metrics_payload(reg)
        assert payload["dropped_events"] == 0
        assert "engine.run" in payload["phases"]
        assert payload["metrics"]["counters"]["solver.events"] > 0
