"""Tests for the analytical SPICE baseline."""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.core import SimulationConfig
from repro.errors import ConvergenceError, PhysicsError
from repro.logic import (
    Gate,
    GateKind,
    LogicNetlist,
    build_benchmark,
    map_to_circuit,
)
from repro.logic.stimuli import StepStimulus
from repro.master import MasterEquationSolver
from repro.spice import SETDeviceModel, SpiceSimulator
from repro.spice.transient import BatchedSETModel

aF = 1e-18


class TestCompactModel:
    MODEL = SETDeviceModel(
        r1=1e6, c1=1 * aF, r2=1e6, c2=1 * aF,
        gate_capacitances=(5 * aF, 2 * aF), bias_charge_e=0.05,
        temperature=1.5,
    )

    def _me_current(self, vs, vd, vg):
        b = CircuitBuilder()
        b.add_junction("j1", "s", "isl", 1e6, 1 * aF)
        b.add_junction("j2", "isl", "d", 1e6, 1 * aF)
        b.add_capacitor("cg", "g", "isl", 5 * aF)
        b.add_capacitor("cb", "0", "isl", 2 * aF)
        b.add_voltage_source("vs", "s", vs)
        b.add_voltage_source("vd", "d", vd)
        b.add_voltage_source("vg", "g", vg)
        b.add_background_charge("isl", 0.05)
        solver = MasterEquationSolver(b.build(), temperature=1.5)
        return float(solver.steady_state().junction_currents[0])

    @pytest.mark.parametrize(
        "vs,vd,vg",
        [(16e-3, 4e-3, 3e-3), (16e-3, 0.0, 8e-3), (5e-3, 0.0, 16e-3),
         (0.0, 16e-3, 0.0)],
    )
    def test_exact_against_master_equation(self, vs, vd, vg):
        analytic = self.MODEL.current(vs, vd, (vg, 0.0))
        exact = self._me_current(vs, vd, vg)
        assert analytic == pytest.approx(exact, rel=1e-6, abs=1e-20)

    def test_no_current_without_bias(self):
        assert self.MODEL.current(0.0, 0.0, (0.0, 0.0)) == pytest.approx(
            0.0, abs=1e-25
        )

    def test_gate_voltage_count_checked(self):
        with pytest.raises(PhysicsError):
            self.MODEL.current(0.01, 0.0, (0.0,))

    def test_coulomb_oscillations(self):
        # sweeping the gate at fixed small bias modulates the current
        # periodically — the SET signature the compact model must keep
        from repro.constants import E_CHARGE

        period = E_CHARGE / (5 * aF)
        gates = np.linspace(0.0, 2 * period, 41)
        currents = [self.MODEL.current(2e-3, 0.0, (vg, 0.0)) for vg in gates]
        assert max(currents) > 10 * (min(currents) + 1e-30)
        # two periods -> at least two maxima
        peaks = sum(
            1 for i in range(1, 40)
            if currents[i] > currents[i - 1] and currents[i] > currents[i + 1]
        )
        assert peaks >= 2


class TestBatchedModel:
    def test_matches_scalar_model(self):
        net = LogicNetlist(
            "inv", ["x"], ["y"], [Gate("g", GateKind.INV, ("x",), "y")]
        )
        mapped = map_to_circuit(net)
        batched = BatchedSETModel(mapped)
        p = mapped.params
        vs = np.array([p.vdd, 8e-3])
        vd = np.array([4e-3, 0.0])
        vg = np.array([3e-3, 12e-3])
        batch = batched.currents(vs, vd, vg)
        for i, dev in enumerate(mapped.devices):
            scalar = SETDeviceModel(
                r1=p.junction_resistance, c1=p.junction_capacitance,
                r2=p.junction_resistance, c2=p.junction_capacitance,
                gate_capacitances=(p.gate_capacitance, p.bias_capacitance),
                bias_charge_e=dev.bias_e, temperature=p.temperature,
            ).current(float(vs[i]), float(vd[i]), (float(vg[i]), 0.0))
            assert batch[i] == pytest.approx(scalar, rel=1e-9, abs=1e-25)


class TestTransientSolver:
    def test_first_level_gates_settle_to_boolean_levels(self):
        mapped = build_benchmark("2-to-10 decoder")
        sim = SpiceSimulator(mapped)
        vec = {"a": True, "b": False}
        values = mapped.netlist.evaluate(vec)
        result = sim.transient([(vec, 3e-9)], record_nets=list(mapped.netlist.outputs))
        threshold = mapped.params.logic_threshold
        correct = sum(
            (result.traces[n][-1] > threshold) == values[n]
            for n in mapped.netlist.outputs
        )
        # the continuum model holds most (not necessarily all) levels —
        # its blindness to wire-charge quantisation is exactly the
        # SPICE weakness the paper describes
        assert correct >= len(mapped.netlist.outputs) - 1

    def test_charge_conservation_without_devices_is_static(self):
        mapped = build_benchmark("2-to-10 decoder")
        sim = SpiceSimulator(mapped)
        x0 = sim.initial_voltages({"a": False, "b": False})
        assert x0.shape == (sim.n_unknowns,)

    def test_delay_or_documented_failure(self):
        mapped = build_benchmark("2-to-10 decoder")
        sim = SpiceSimulator(mapped)
        stim = StepStimulus({"a": False, "b": False}, {"a": True, "b": False}, ())
        values_b = mapped.netlist.output_values(stim.before)
        values_a = mapped.netlist.output_values(stim.after)
        toggled = tuple(
            (n, values_a[n]) for n in mapped.netlist.outputs
            if values_b[n] != values_a[n]
        )
        stim = StepStimulus(stim.before, stim.after, toggled)
        try:
            delay = sim.propagation_delay(stim, settle=1e-9, budget=20e-9)
        except ConvergenceError:
            pytest.skip("deep path stalls in the continuum model (documented)")
        assert 0.0 < delay < 20e-9

    def test_unknown_count_excludes_device_islands(self):
        mapped = build_benchmark("Full-Adder")
        sim = SpiceSimulator(mapped)
        n_wires = len(
            [lbl for lbl in mapped.circuit.island_labels
             if lbl not in {d.island for d in mapped.devices}]
        )
        assert sim.n_unknowns == n_wires
