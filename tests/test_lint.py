"""Tests for ``repro.lint``: the pre-simulation static analyzer."""

from pathlib import Path

import pytest

from repro import LintError, SimulationConfig, build_set
from repro.circuit import CircuitBuilder
from repro.lint import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    check_config,
    check_jumps,
    check_sweep,
    diag,
    lint_benchmark,
    lint_circuit,
    lint_deck,
    lint_path,
    lint_text,
    require_clean_deck,
    sniff_format,
)
from repro.logic import BENCHMARKS
from repro.netlist import parse_semsim

DATA = Path(__file__).parent / "data"
EXAMPLE_DECKS = sorted(
    (Path(__file__).parent.parent / "examples" / "decks").glob("*.deck")
)

CLEAN_DECK = """
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
num j 2
num ext 3
num nodes 4
temp 5
record 1 2 2
jumps 4000 1
sweep 2 0.02 0.005
"""


# ----------------------------------------------------------------------
# diagnostic plumbing
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_registry_codes_are_self_consistent(self):
        for code, info in CODES.items():
            assert info.code == code
            assert code.startswith("SEM") and len(code) == 6
            assert info.title and info.fix

    def test_diag_defaults_severity_from_registry(self):
        d = diag("SEM010", "boom")
        assert d.severity is Severity.ERROR
        assert d.code == "SEM010"

    def test_format_includes_location(self):
        d = diag("SEM030", "too transparent", where="junction 'j1'", line=7)
        text = d.format()
        assert "SEM030" in text and "warning" in text
        assert "junction 'j1'" in text and "(line 7)" in text

    def test_unknown_code_is_rejected(self):
        with pytest.raises(KeyError):
            diag("SEM999", "no such code")

    def test_report_severity_rollup(self):
        report = LintReport(
            (diag("SEM013", "note"), diag("SEM030", "warn"), diag("SEM010", "err")),
            subject="x",
        )
        assert report.max_severity is Severity.ERROR
        assert report.exit_code == 2
        assert len(report.errors) == 1 and len(report.warnings) == 1
        assert report.has("SEM030") and not report.has("SEM040")
        assert "1 error" in report.summary()

    def test_empty_report_is_clean(self):
        report = LintReport((), subject="x")
        assert report.exit_code == 0
        assert report.summary() == "clean"
        assert list(report) == [] and len(report) == 0

    def test_diagnostics_are_frozen(self):
        d = diag("SEM010", "boom")
        with pytest.raises(AttributeError):
            d.message = "other"  # type: ignore[misc]


# ----------------------------------------------------------------------
# circuit-level passes
# ----------------------------------------------------------------------
class TestLintCircuit:
    def test_healthy_set_is_clean(self):
        report = lint_circuit(build_set(vs=0.01, vd=-0.01, vg=0.0),
                              temperature=1.0)
        assert report.exit_code == 0, report.format()

    def test_floating_island_group(self):
        circuit = (
            CircuitBuilder()
            .add_junction("j1", 1, 2, 1e6, 1e-18)
            .add_capacitor("cg", 2, 0, 2e-18)
            .add_junction("j2", 3, 4, 1e6, 1e-18)
            .add_voltage_source("v1", 1, 0.01)
            .build()
        )
        report = lint_circuit(circuit, temperature=1.0)
        assert report.has("SEM010")
        assert report.max_severity is Severity.ERROR
        # two decoupled groups also noted
        assert report.has("SEM013")

    def test_junctionless_island(self):
        circuit = (
            CircuitBuilder()
            .add_junction("j1", 1, 2, 1e6, 1e-18)
            .add_capacitor("cg", 2, 0, 2e-18)
            .add_capacitor("c1", 3, 1, 1e-18)
            .add_capacitor("c2", 3, 0, 1e-18)
            .add_voltage_source("v1", 1, 0.01)
            .build()
        )
        report = lint_circuit(circuit, temperature=1.0)
        [d] = [d for d in report if d.code == "SEM011"]
        assert d.severity is Severity.WARNING
        assert "3" in d.where

    def test_lead_lead_junction(self):
        circuit = (
            CircuitBuilder()
            .add_junction("j1", 1, 2, 1e6, 1e-18)
            .add_junction("jleak", 1, 0, 1e6, 1e-18)
            .add_capacitor("cg", 2, 0, 2e-18)
            .add_voltage_source("v1", 1, 0.01)
            .build()
        )
        report = lint_circuit(circuit, temperature=1.0)
        [d] = [d for d in report if d.code == "SEM012"]
        assert d.severity is Severity.ERROR
        assert "jleak" in d.where

    def test_transparent_junction_warns(self):
        circuit = (
            CircuitBuilder()
            .add_junction("j1", 1, 2, 1e3, 1e-18)  # 1 kOhm << R_K
            .add_capacitor("cg", 2, 0, 2e-18)
            .add_voltage_source("v1", 1, 0.01)
            .build()
        )
        report = lint_circuit(circuit, temperature=1.0)
        assert report.has("SEM030")
        assert report.max_severity is Severity.WARNING

    def test_hot_circuit_flags_charging_energy(self):
        report = lint_circuit(build_set(vs=0.01, vd=-0.01, vg=0.0),
                              temperature=300.0)
        assert report.has("SEM031") or report.has("SEM032")

    def test_superconductor_above_tc_flagged(self):
        text = (
            "junc 1 1 3 1e-6 1e-18\njunc 2 2 3 1e-6 1e-18\ncap 3 0 2e-18\n"
            "vdc 1 0.001\nvdc 2 -0.001\nsuper 2e-4 0.05\ntemp 0.1\n"
            "jumps 8000 1\n"
        )
        report = lint_text(text, fmt="deck")
        [d] = [d for d in report if d.code == "SEM033"]
        assert "Tc" in d.message

    def test_cotunneling_single_junction(self):
        circuit = (
            CircuitBuilder()
            .add_junction("j1", 1, 2, 1e6, 1e-18)
            .add_capacitor("cg", 2, 0, 2e-18)
            .add_voltage_source("v1", 1, 0.01)
            .build()
        )
        report = lint_circuit(circuit, temperature=1.0, cotunneling=True)
        assert report.has("SEM035")


# ----------------------------------------------------------------------
# config / sweep passes
# ----------------------------------------------------------------------
class TestConfigChecks:
    def test_defaults_are_clean(self):
        assert check_config(SimulationConfig()) == []

    def test_large_lambda_warns(self):
        [d] = check_config(SimulationConfig(adaptive_threshold=0.5))
        assert d.code == "SEM042"

    def test_huge_refresh_interval_warns(self):
        diags = check_config(SimulationConfig(full_refresh_interval=10**6))
        assert [d.code for d in diags] == ["SEM043"]

    def test_coarse_sweep_step(self):
        circuit = build_set(vs=0.01, vd=-0.01, vg=0.0)
        diags = check_sweep(circuit, step=1.0, maximum=2.0)
        assert "SEM040" in [d.code for d in diags]

    def test_fine_sweep_is_clean(self):
        circuit = build_set(vs=0.01, vd=-0.01, vg=0.0)
        assert check_sweep(circuit, step=1e-4, maximum=0.02) == []

    def test_enormous_sweep_warns(self):
        circuit = build_set(vs=0.01, vd=-0.01, vg=0.0)
        diags = check_sweep(circuit, step=1e-9, maximum=1e-3)
        assert "SEM041" in [d.code for d in diags]

    def test_tiny_event_budget_notes(self):
        [d] = check_jumps(200)
        assert d.code == "SEM044" and d.severity is Severity.INFO
        assert check_jumps(50_000) == []


# ----------------------------------------------------------------------
# deck corpus: each defective input fires exactly its expected code
# ----------------------------------------------------------------------
CORPUS = [
    ("floating_island.deck", "SEM010", Severity.ERROR),
    ("nanofarad_caps.deck", "SEM021", Severity.WARNING),
    ("low_resistance.deck", "SEM030", Severity.WARNING),
    ("low_resistance.deck", "SEM022", Severity.WARNING),
    ("undriven_input.net", "SEM050", Severity.ERROR),
    ("combinational_loop.net", "SEM052", Severity.ERROR),
]


class TestCorpus:
    @pytest.mark.parametrize("filename,code,severity", CORPUS)
    def test_expected_code_fires(self, filename, code, severity):
        report = lint_path(DATA / filename)
        matches = [d for d in report if d.code == code]
        assert matches, f"{filename}: expected {code}, got {report.codes}"
        assert all(d.severity is severity for d in matches)

    @pytest.mark.parametrize("filename,code,severity", CORPUS)
    def test_max_severity_matches_worst_code(self, filename, code, severity):
        report = lint_path(DATA / filename)
        assert report.max_severity is max(
            CODES[c].severity for c in report.codes
        )

    def test_floating_island_names_the_group(self):
        report = lint_path(DATA / "floating_island.deck")
        [d] = [d for d in report if d.code == "SEM010"]
        assert "3" in d.message and "4" in d.message

    def test_deck_findings_carry_deck_lines(self):
        report = lint_path(DATA / "low_resistance.deck")
        lines = {d.where: d.line for d in report if d.code == "SEM030"}
        # junc 1 is declared on line 5, junc 2 on line 6 of the deck
        assert lines["junction 'j1'"] == 5
        assert lines["junction 'j2'"] == 6

    def test_undriven_input_names_net_and_line(self):
        report = lint_path(DATA / "undriven_input.net")
        [d] = [d for d in report if d.code == "SEM050"]
        assert "'b'" in d.message and d.line == 6

    def test_loop_reports_participating_nets(self):
        report = lint_path(DATA / "combinational_loop.net")
        [d] = [d for d in report if d.code == "SEM052"]
        assert "w1" in d.message and "w2" in d.message


# ----------------------------------------------------------------------
# clean sweeps: every shipped input lints without errors
# ----------------------------------------------------------------------
class TestCleanSweeps:
    @pytest.mark.parametrize(
        "path", EXAMPLE_DECKS, ids=[p.name for p in EXAMPLE_DECKS]
    )
    def test_example_decks_are_error_free(self, path):
        report = lint_path(path)
        assert report.errors == (), report.format()

    def test_example_decks_exist(self):
        assert len(EXAMPLE_DECKS) >= 3

    @pytest.mark.parametrize("spec", BENCHMARKS, ids=[s.name for s in BENCHMARKS])
    def test_paper_benchmarks_are_error_free(self, spec):
        report = lint_benchmark(spec.name)
        assert report.errors == (), report.format()


# ----------------------------------------------------------------------
# text/path entry points
# ----------------------------------------------------------------------
class TestTextEntryPoints:
    def test_sniffs_deck(self):
        assert sniff_format(CLEAN_DECK) == "deck"

    def test_sniffs_logic(self):
        text = (DATA / "combinational_loop.net").read_text()
        assert sniff_format(text) == "logic"

    def test_clean_deck_text(self):
        report = lint_text(CLEAN_DECK)
        assert report.exit_code == 0, report.format()

    def test_unparseable_deck_yields_sem001(self):
        report = lint_text("junc 1 1\n", fmt="deck")
        assert report.has("SEM001")
        [d] = list(report)
        assert d.line == 1

    def test_unparseable_logic_yields_sem001(self):
        report = lint_text("name x\ninput a\nfrob g1 a y\n", fmt="logic")
        assert report.has("SEM001")

    def test_count_mismatch_is_reported_not_raised(self):
        text = CLEAN_DECK.replace("num j 2", "num j 5")
        report = lint_text(text)
        [d] = [d for d in report if d.code == "SEM002"]
        assert "5" in d.message and d.line is not None


# ----------------------------------------------------------------------
# strict hooks
# ----------------------------------------------------------------------
class TestStrictHooks:
    def test_parse_semsim_strict_raises_lint_error(self):
        text = (DATA / "floating_island.deck").read_text()
        with pytest.raises(LintError) as excinfo:
            parse_semsim(text, strict=True)
        assert any(d.code == "SEM010" for d in excinfo.value.diagnostics)

    def test_build_circuit_strict_raises_lint_error(self):
        deck = parse_semsim((DATA / "floating_island.deck").read_text())
        with pytest.raises(LintError):
            deck.build_circuit(strict=True)

    def test_strict_passes_clean_deck(self):
        deck = parse_semsim(CLEAN_DECK, strict=True)
        assert deck.build_circuit(strict=True).n_islands == 1

    def test_warnings_do_not_trip_strict(self):
        deck = parse_semsim((DATA / "low_resistance.deck").read_text(),
                            strict=True)
        assert lint_deck(deck).max_severity is Severity.WARNING

    def test_require_clean_deck_returns_report(self):
        report = require_clean_deck(parse_semsim(CLEAN_DECK))
        assert isinstance(report, LintReport)
