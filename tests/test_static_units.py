"""Tests for the dimensional-analysis (UNIT) pass.

Covers the dimension lattice algebra, the ``@units`` spec grammar and
runtime decorator, the seeded-bug corpus under ``tests/data/static/``,
and the interprocedural summary engine — including the cross-module
case only summaries can catch and the SCC fixpoint over recursion.
"""

from __future__ import annotations

import textwrap
from fractions import Fraction
from pathlib import Path

import pytest

from repro.errors import ContractError
from repro.static import (
    check_paths,
    format_dimension,
    parse_unit,
    parse_units_spec,
    units,
)
from repro.static.engine import load_context
from repro.static.unitcheck import (
    DIMLESS,
    LITERAL,
    PENDING,
    UNKNOWN,
    UValue,
    declared_summaries,
    infer_summaries,
    join,
    merge_summary,
    module_unit_facts,
)

CORPUS = Path(__file__).parent / "data" / "static"

#: module stem -> the one code its seeded bug must produce
EXPECTED = {
    "unit001_mixed": "UNIT001",
    "unit002_argdim": "UNIT002",
    "unit003_return": "UNIT003",
    "unit004_transcendental": "UNIT004",
    "unit005_magic": "UNIT005",
    "unit006_contract": "UNIT006",
}


def codes_in(*paths: Path) -> list[str]:
    report = check_paths(list(paths), relative_to=CORPUS)
    return [f.code for f in report.findings]


# ----------------------------------------------------------------------
# dimension algebra
# ----------------------------------------------------------------------

class TestDimensionAlgebra:
    def test_electrical_identities(self):
        J, C, V = parse_unit("J"), parse_unit("C"), parse_unit("V")
        F, ohm, s = parse_unit("F"), parse_unit("ohm"), parse_unit("s")
        assert C * V == J
        assert C / F == V
        assert C * C * ohm == J * s
        assert J / (C * C * ohm) == parse_unit("1/s")

    def test_fractional_powers(self):
        J = parse_unit("J")
        assert (J * J) ** Fraction(1, 2) == J
        assert (J ** Fraction(1, 2)) ** 2 == J

    def test_encode_decode_roundtrip(self):
        for text in ("J", "1/s", "ohm", "C^2", "1", "J*s"):
            dim = parse_unit(text)
            assert type(dim).decode(dim.encode()) == dim

    def test_format_prefers_derived_symbols(self):
        assert format_dimension(parse_unit("J")) == "J"
        assert format_dimension(parse_unit("C") / parse_unit("F")) == "V"

    def test_parse_unit_rejects_unknown_symbol(self):
        with pytest.raises(ContractError):
            parse_unit("Jool")

    def test_spec_errors(self):
        with pytest.raises(ContractError):
            parse_units_spec("energy: J ->")  # empty return
        with pytest.raises(ContractError):
            parse_units_spec("energy J")  # missing colon
        with pytest.raises(ContractError):
            parse_units_spec("e: J, e: K")  # duplicate parameter


class TestLattice:
    def test_join_identity_and_absorption(self):
        joule = UValue(dim=parse_unit("J"))
        assert join(PENDING, joule) == joule
        assert join(joule, PENDING) == joule
        assert join(LITERAL, joule) == joule
        assert join(joule, LITERAL) == joule
        assert join(joule, joule) == joule

    def test_join_of_unlike_dimensions_is_unknown(self):
        joule = UValue(dim=parse_unit("J"))
        kelvin = UValue(dim=parse_unit("K"))
        assert join(joule, kelvin) == UNKNOWN
        assert join(joule, UNKNOWN) == UNKNOWN
        assert join(DIMLESS, joule) == UNKNOWN

    def test_merge_summary_collision_degrades_to_ambiguous(self):
        facts = _facts_for(
            """
            from repro.static import units

            @units("energy: J -> 1")
            def f(energy):
                return 0.5
            """
        )
        (summary,) = declared_summaries(facts).values()
        table = {}
        assert merge_summary(table, "f", summary)
        assert not merge_summary(table, "f", summary)  # same: no change
        other = summary.__class__(
            params=summary.params, n_positional=summary.n_positional,
            has_vararg=summary.has_vararg, ret=parse_unit("K"),
            declared=True,
        )
        assert merge_summary(table, "f", other)
        assert table["f"] is None  # ambiguous -> silent


# ----------------------------------------------------------------------
# the runtime decorator
# ----------------------------------------------------------------------

class TestDecorator:
    def test_attaches_contract_and_preserves_function(self):
        @units("energy: J, temperature: K -> 1")
        def f(energy, temperature):
            return 42.0

        assert f(1.0, 2.0) == pytest.approx(42.0)
        contract = f.__units__
        assert contract.param("energy") == parse_unit("J")
        assert contract.ret == parse_unit("1")

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(ContractError):
            @units("missing: J")
            def f(energy):
                return energy


# ----------------------------------------------------------------------
# seeded-bug corpus
# ----------------------------------------------------------------------

class TestSeededBugs:
    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_bug_module_yields_exactly_its_code(self, stem):
        assert codes_in(CORPUS / f"{stem}.py") == [EXPECTED[stem]]

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_clean_twin_is_silent(self, stem):
        assert codes_in(CORPUS / f"{stem}_clean.py") == []

    def test_cross_module_mismatch_needs_both_modules(self):
        # the summary engine sees volts flow out of unit_cross_a into a
        # joule-expecting contract in unit_cross_b ...
        together = check_paths(
            [CORPUS / "unit_cross_a.py", CORPUS / "unit_cross_b.py"],
            relative_to=CORPUS,
        )
        assert [(f.relpath, f.code) for f in together.findings] == [
            ("unit_cross_b.py", "UNIT002")
        ]
        # ... and without the defining module there is nothing to see
        assert codes_in(CORPUS / "unit_cross_b.py") == []


# ----------------------------------------------------------------------
# summaries and the fixpoint
# ----------------------------------------------------------------------

def _facts_for(body: str, tmp_name: str = "mod.py"):
    from repro.static.source import ModuleSource

    text = textwrap.dedent(body).lstrip()
    module = ModuleSource.parse_text(text, Path(tmp_name))
    return module_unit_facts(module)


class TestSummaries:
    def test_inferred_return_propagates(self):
        # helper has no decorator; its K_B * t return must be inferred
        # as joules and satisfy the caller's declared return
        facts = _facts_for(
            """
            from repro.constants import K_B
            from repro.static import units

            def thermal(t):
                return K_B * t

            @units("temperature: K -> J")
            def f(temperature):
                return thermal(temperature)
            """
        )
        table = dict(declared_summaries(facts))
        summaries = infer_summaries(facts, table)
        assert summaries["thermal"].ret is None  # t unknown: no dim yet
        # in context the caller passes K, but inference is per-function
        # with unconstrained params; the declared summary is kept as-is
        assert summaries["f"].ret == parse_unit("J")
        assert summaries["f"].declared

    def test_fixpoint_converges_on_recursion(self, tmp_path):
        # mutually recursive pair with one declared anchor: the engine
        # must stabilise and not loop or crash
        (tmp_path / "a.py").write_text(textwrap.dedent(
            """
            from __future__ import annotations

            from repro.static import units

            @units("n: 1 -> J")
            def even_energy(n):
                return odd_energy(n - 1)

            def odd_energy(n):
                return even_energy(n - 1)
            """
        ).lstrip())
        report = check_paths([tmp_path], relative_to=tmp_path)
        assert [f.code for f in report.findings] == []

    def test_interprocedural_violation_same_module(self, tmp_path):
        (tmp_path / "a.py").write_text(textwrap.dedent(
            """
            from __future__ import annotations

            from repro.static import units

            @units("resistance: ohm -> V")
            def drop(resistance):
                return resistance * 2.0

            @units("energy: J -> 1")
            def weight(energy):
                return 0.5

            def use(resistance):
                return weight(drop(resistance))
            """
        ).lstrip())
        report = check_paths([tmp_path], relative_to=tmp_path)
        codes = sorted(f.code for f in report.findings)
        assert codes == ["UNIT002", "UNIT003"]
        # UNIT003: drop() returns ohm (resistance * literal), not V;
        # UNIT002: its declared V return still reaches weight(energy: J)

    def test_annotated_repo_is_clean(self):
        from repro.static import default_root

        ctx = load_context([default_root()])
        assert ctx.modules  # sanity: the package was found
        report = check_paths([default_root()])
        assert [f.code for f in report.findings] == []
