"""Tests for the reusable gate-level building blocks."""

import itertools

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.logic import Gate, GateKind, LogicNetlist, NetNamer
from repro.logic.blocks import (
    and_tree,
    full_adder,
    half_decoder,
    inverters,
    mux2,
    mux4,
    or_tree,
    ripple_adder,
    xor_tree,
)


def netlist_for(inputs, outputs, gates, name="block"):
    return LogicNetlist(name, inputs, outputs, gates)


class TestTrees:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8, 9])
    def test_xor_tree_parity(self, width):
        gates, namer = [], NetNamer("t")
        bits = [f"i{k}" for k in range(width)]
        out = xor_tree(gates, namer, bits, "p")
        net = netlist_for(bits, [out], gates)
        rng = np.random.default_rng(width)
        for _ in range(8):
            vec = {b: bool(rng.integers(2)) for b in bits}
            assert net.output_values(vec)[out] == (sum(vec.values()) % 2 == 1)

    def test_and_or_trees(self):
        gates, namer = [], NetNamer("t")
        bits = ["a", "b", "c", "d", "e"]
        all_of = and_tree(gates, namer, bits, "and")
        any_of = or_tree(gates, namer, bits, "or")
        net = netlist_for(bits, [all_of, any_of], gates)
        for vec_bits in ([True] * 5, [False] * 5, [True, False, True, True, True]):
            vec = dict(zip(bits, vec_bits))
            out = net.output_values(vec)
            assert out[all_of] == all(vec_bits)
            assert out[any_of] == any(vec_bits)

    def test_empty_tree_rejected(self):
        with pytest.raises(NetlistError):
            xor_tree([], NetNamer("t"), [], "p")

    def test_tree_of_one_is_passthrough(self):
        gates, namer = [], NetNamer("t")
        out = and_tree(gates, namer, ["only"], "a")
        assert out == "only"
        assert gates == []


class TestMuxes:
    def test_mux2(self):
        gates, namer = [], NetNamer("m")
        (sel_n,) = inverters(gates, namer, ["s"], "sn")
        out = mux2(gates, namer, "d0", "d1", "s", sel_n, "m")
        net = netlist_for(["d0", "d1", "s"], [out], gates)
        for d0, d1, s in itertools.product((False, True), repeat=3):
            result = net.output_values({"d0": d0, "d1": d1, "s": s})[out]
            assert result == (d1 if s else d0)

    def test_mux4_needs_exact_shapes(self):
        with pytest.raises(NetlistError):
            mux4([], NetNamer("m"), ["a", "b"], ["s0", "s1"], ["x", "y"], "m")


class TestAdders:
    def test_full_adder_block(self):
        gates, namer = [], NetNamer("f")
        s, cout = full_adder(gates, namer, "a", "b", "cin", "fa")
        net = netlist_for(["a", "b", "cin"], [s, cout], gates)
        for a, b, c in itertools.product((False, True), repeat=3):
            out = net.output_values({"a": a, "b": b, "cin": c})
            total = int(a) + int(b) + int(c)
            assert out[s] == (total % 2 == 1)
            assert out[cout] == (total >= 2)

    def test_ripple_adder_block(self):
        gates, namer = [], NetNamer("r")
        a_bits = [f"a{i}" for i in range(4)]
        b_bits = [f"b{i}" for i in range(4)]
        sums, cout = ripple_adder(gates, namer, a_bits, b_bits, "cin", "add")
        net = netlist_for(a_bits + b_bits + ["cin"], sums + [cout], gates)
        rng = np.random.default_rng(4)
        for _ in range(10):
            a_val, b_val = int(rng.integers(16)), int(rng.integers(16))
            vec = {f"a{i}": bool(a_val >> i & 1) for i in range(4)}
            vec.update({f"b{i}": bool(b_val >> i & 1) for i in range(4)})
            vec["cin"] = False
            out = net.output_values(vec)
            total = sum(out[sums[i]] << i for i in range(4)) + (out[cout] << 4)
            assert total == a_val + b_val

    def test_ripple_adder_width_mismatch(self):
        with pytest.raises(NetlistError):
            ripple_adder([], NetNamer("r"), ["a0"], ["b0", "b1"], "cin", "x")


class TestDecoder:
    def test_half_decoder_one_hot(self):
        gates, namer = [], NetNamer("d")
        outs = half_decoder(gates, namer, "a", "b", "hd")
        net = netlist_for(["a", "b"], outs, gates)
        for code in range(4):
            vec = {"a": bool(code & 1), "b": bool(code & 2)}
            values = net.output_values(vec)
            assert [values[o] for o in outs] == [i == code for i in range(4)]
