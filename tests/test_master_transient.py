"""Tests for the transient master-equation solver."""

import numpy as np
import pytest

from repro.circuit import build_set, build_single_electron_box
from repro.constants import E_CHARGE
from repro.core import MonteCarloEngine, SimulationConfig
from repro.errors import SimulationError
from repro.master import MasterEquationSolver


class TestTransient:
    def test_probabilities_normalised_at_all_times(self):
        circuit = build_set(vs=0.02, vd=-0.02, vg=0.01)
        solver = MasterEquationSolver(circuit, temperature=5.0)
        result = solver.transient(np.linspace(0.0, 1e-8, 7))
        np.testing.assert_allclose(result.probabilities.sum(axis=1), 1.0)
        assert np.all(result.probabilities >= 0.0)

    def test_long_time_limit_is_steady_state(self):
        circuit = build_set(vs=0.02, vd=-0.02, vg=0.01)
        solver = MasterEquationSolver(circuit, temperature=5.0)
        steady = solver.steady_state()
        transient = solver.transient(np.array([0.0, 1e-6]))
        np.testing.assert_allclose(
            transient.probabilities[-1], steady.probabilities, atol=1e-6
        )

    def test_initial_condition_is_first_state(self):
        circuit = build_set(vs=0.02, vd=-0.02)
        solver = MasterEquationSolver(circuit, temperature=5.0)
        result = solver.transient(np.array([0.0]))
        assert result.probabilities[0, 0] == pytest.approx(1.0)

    def test_negative_times_rejected(self):
        circuit = build_set(vs=0.02, vd=-0.02)
        solver = MasterEquationSolver(circuit, temperature=5.0)
        with pytest.raises(SimulationError):
            solver.transient(np.array([-1.0]))

    def test_unknown_state_lookup_rejected(self):
        circuit = build_set(vs=0.02, vd=-0.02)
        solver = MasterEquationSolver(circuit, temperature=5.0)
        result = solver.transient(np.array([0.0]))
        with pytest.raises(SimulationError):
            result.probability_of((99,))

    def test_box_relaxation_timescale_is_rc(self):
        """The box relaxes to its new charge state on the junction's
        RC-like timescale after a gate step."""
        box = build_single_electron_box()
        stepped = box.with_source_voltages(
            {"vg": 0.9 * E_CHARGE / 2e-18}
        )
        solver = MasterEquationSolver(stepped, temperature=0.5)
        times = np.linspace(0.0, 3e-9, 16)
        result = solver.transient(times)
        occupancy = result.mean_occupation(0)
        assert occupancy[0] == pytest.approx(0.0, abs=1e-6)
        assert occupancy[-1] == pytest.approx(1.0, abs=0.02)
        # monotone relaxation
        assert np.all(np.diff(occupancy) > -1e-9)

    def test_mc_ensemble_matches_transient_probability(self):
        """Monte Carlo relaxation reproduces the exact occupation
        probability at a fixed observation time."""
        box = build_single_electron_box()
        stepped = box.with_source_voltages({"vg": 0.9 * E_CHARGE / 2e-18})
        solver = MasterEquationSolver(stepped, temperature=0.5)
        t_obs = 2e-10
        exact = solver.transient(np.array([t_obs])).mean_occupation(0)[-1]

        runs = 300
        occupied = 0
        for seed in range(runs):
            engine = MonteCarloEngine(
                stepped,
                SimulationConfig(temperature=0.5, solver="nonadaptive",
                                 seed=seed),
            )
            # the jump that carries the clock past t_obs happens in the
            # future, so the state AT t_obs is the one held before it
            state_at_t = int(engine.solver.occupation[0])
            while engine.solver.time < t_obs:
                state_at_t = int(engine.solver.occupation[0])
                engine.solver.step()
            occupied += int(state_at_t >= 1)
        assert occupied / runs == pytest.approx(exact, abs=0.09)
