"""Tests for the canonical device library (box, trap, pump)."""

import numpy as np
import pytest

from repro.circuit import (
    build_electron_pump,
    build_electron_trap,
    build_single_electron_box,
    pump_cycle_voltages,
)
from repro.constants import E_CHARGE
from repro.core import MonteCarloEngine, SimulationConfig
from repro.errors import CircuitError, SimulationError
from repro.master import MasterEquationSolver

GATE_PERIOD = E_CHARGE / 2e-18  # e / Cg of the default devices


class TestSingleElectronBox:
    def _mean_occupation(self, gate_fraction: float, temperature: float = 0.5):
        box = build_single_electron_box()
        circuit = box.with_source_voltages({"vg": gate_fraction * GATE_PERIOD})
        solver = MasterEquationSolver(circuit, temperature=temperature)
        result = solver.steady_state()
        return sum(
            p * s[0] for s, p in zip(result.states, result.probabilities)
        )

    def test_coulomb_staircase_steps_at_half_integer(self):
        assert self._mean_occupation(0.45) == pytest.approx(0.0, abs=0.05)
        assert self._mean_occupation(0.55) == pytest.approx(1.0, abs=0.05)

    def test_staircase_second_step(self):
        assert self._mean_occupation(1.45) == pytest.approx(1.0, abs=0.05)
        assert self._mean_occupation(1.55) == pytest.approx(2.0, abs=0.05)

    def test_degeneracy_point_half_occupied(self):
        assert self._mean_occupation(0.5, temperature=1.0) == pytest.approx(
            0.5, abs=0.05
        )

    def test_background_charge_shifts_staircase(self):
        box = build_single_electron_box(background_charge_e=0.5)
        solver = MasterEquationSolver(box, temperature=0.5)
        result = solver.steady_state()
        mean = sum(p * s[0] for s, p in zip(result.states, result.probabilities))
        # with q0 = e/2 the box sits exactly at a degeneracy at Vg = 0
        assert mean == pytest.approx(0.5, abs=0.1)


class TestElectronTrap:
    def test_trap_retention_time_exceeds_write_time(self):
        """Written charge is *metastable*: in kinetic MC every run
        eventually loses it, so retention is a statement about
        simulated time — the dwell before losing the first electron
        must exceed the write duration by orders of magnitude."""
        trap = build_electron_trap(n_junctions=3)
        config = SimulationConfig(temperature=1.0, solver="nonadaptive", seed=3)
        engine = MonteCarloEngine(trap, config)
        trap_island = trap.island_index("trap")
        write_voltage = 3.0 * E_CHARGE / 20e-18

        engine.set_sources({"vg": write_voltage})
        engine.run(max_jumps=800)
        written = int(engine.solver.occupation[trap_island])
        assert written >= 2

        # remove the drive and time the first charge loss.  Kinetic MC
        # fast-forwards through the wait, so "retention" is a statement
        # about the *simulated* dwell time: escaping over the chain's
        # charging barrier is thermally activated and takes an
        # astronomically long time compared with the nanosecond write.
        engine.set_sources({"vg": 0.0})
        engine.solver.reset_window()
        frozen = False
        for _ in range(400):
            try:
                engine.solver.step()
            except SimulationError:
                frozen = True
                break
            if int(engine.solver.occupation[trap_island]) < written:
                break
        dwell = engine.solver.window_elapsed
        assert frozen or dwell > 1.0  # holds for > a second (vs ~ns write)

    def test_needs_a_barrier(self):
        with pytest.raises(CircuitError):
            build_electron_trap(n_junctions=1)


class TestElectronPump:
    def test_quantised_pumping(self):
        """One electron per cycle through the output junction at zero
        bias — the signature quantised-current experiment."""
        pump = build_electron_pump()
        engine = MonteCarloEngine(
            pump, SimulationConfig(temperature=0.3, solver="nonadaptive", seed=2)
        )
        cycle = pump_cycle_voltages()
        cycles = 12
        start = int(engine.solver.flux[2])
        for _ in range(cycles):
            for point in cycle:
                engine.set_sources(point)
                try:
                    engine.run(max_jumps=80)
                except SimulationError:
                    continue  # frozen at this plateau: quasi-static is fine
        pumped = (int(engine.solver.flux[2]) - start) / cycles
        assert pumped == pytest.approx(1.0, abs=0.35)

    def test_reverse_orbit_reverses_current(self):
        pump = build_electron_pump()
        engine = MonteCarloEngine(
            pump, SimulationConfig(temperature=0.3, solver="nonadaptive", seed=4)
        )
        cycle = list(reversed(pump_cycle_voltages()))
        cycles = 12
        start = int(engine.solver.flux[2])
        for _ in range(cycles):
            for point in cycle:
                engine.set_sources(point)
                try:
                    engine.run(max_jumps=80)
                except SimulationError:
                    continue
        pumped = (int(engine.solver.flux[2]) - start) / cycles
        assert pumped == pytest.approx(-1.0, abs=0.35)

    def test_orbit_outside_triple_point_pumps_nothing(self):
        pump = build_electron_pump()
        engine = MonteCarloEngine(
            pump, SimulationConfig(temperature=0.3, solver="nonadaptive", seed=5)
        )
        cycle = pump_cycle_voltages(center=(0.15, 0.15), radius=0.1)
        start = int(engine.solver.flux[2])
        for _ in range(8):
            for point in cycle:
                engine.set_sources(point)
                try:
                    engine.run(max_jumps=80)
                except SimulationError:
                    continue
        pumped = (int(engine.solver.flux[2]) - start) / 8
        assert abs(pumped) < 0.3

    def test_cycle_needs_enough_points(self):
        with pytest.raises(CircuitError):
            pump_cycle_voltages(n_points=3)
