"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    CircuitBuilder,
    Electrostatics,
    JunctionTable,
    Superconductor,
    build_set,
)
from repro.constants import MEV


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-deck regression records under "
             "tests/data/golden/ from the current build instead of "
             "comparing against them",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should rewrite golden records, not check them."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a throwaway path for every test, so CLI
    invocations under test never append to the developer's real ledger
    in ``~/.cache/repro/``."""
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "test-ledger.jsonl"))


@pytest.fixture
def set_circuit():
    """The paper's Fig. 1b SET at a 20 mV symmetric bias."""
    return build_set(vs=+0.01, vd=-0.01, vg=0.0)


@pytest.fixture
def set_stat(set_circuit):
    return Electrostatics(set_circuit)


@pytest.fixture
def set_table(set_circuit, set_stat):
    return JunctionTable(set_circuit, set_stat)


@pytest.fixture
def sset_circuit():
    """The paper's Fig. 1c superconducting SET."""
    return build_set(
        vs=+0.01, vd=-0.01, vg=0.0,
        superconductor=Superconductor(delta0=0.2 * MEV, tc=1.2),
    )


@pytest.fixture
def double_dot_circuit():
    """Two coupled islands in series — the smallest multi-island case."""
    builder = CircuitBuilder()
    builder.add_junction("j1", "lead_l", "dot1", 1e6, 1e-18)
    builder.add_junction("j2", "dot1", "dot2", 1e6, 1e-18)
    builder.add_junction("j3", "dot2", "lead_r", 1e6, 1e-18)
    builder.add_capacitor("cg1", "gate1", "dot1", 2e-18)
    builder.add_capacitor("cg2", "gate2", "dot2", 2e-18)
    builder.add_voltage_source("vl", "lead_l", +0.005)
    builder.add_voltage_source("vr", "lead_r", -0.005)
    builder.add_voltage_source("vg1", "gate1", 0.0)
    builder.add_voltage_source("vg2", "gate2", 0.0)
    return builder.build()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
