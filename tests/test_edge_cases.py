"""Edge-case and regression tests accumulated during development."""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder, build_set
from repro.core import MonteCarloEngine, SimulationConfig
from repro.errors import SimulationError


class TestClockPrecisionRegressions:
    """Two real bugs: windowed currents were corrupted by float
    rounding after long blockade dwells (fixed by Kahan summation and
    the window stopwatch)."""

    def test_current_after_deep_blockade_dwell(self):
        # sweep into deep blockade and back out: the conducting point
        # after the ~1e5-second dwell must still measure correctly
        engine = MonteCarloEngine(
            build_set(),
            SimulationConfig(temperature=5.0, solver="nonadaptive", seed=9),
        )
        reference = None
        for vds in (0.04, 0.005, 0.04):
            engine.set_sources({"vs": vds / 2, "vd": -vds / 2})
            current = engine.measure_current([0], 4000)
            if vds == 0.04:
                if reference is None:
                    reference = current
                else:
                    assert current == pytest.approx(reference, rel=0.15)

    def test_window_stopwatch_resets(self):
        engine = MonteCarloEngine(
            build_set(vs=0.02, vd=-0.02),
            SimulationConfig(temperature=5.0, solver="nonadaptive", seed=1),
        )
        engine.run(max_jumps=100)
        first = engine.solver.window_elapsed
        engine.solver.reset_window()
        assert engine.solver.window_elapsed == 0.0
        engine.run(max_jumps=100)
        assert 0.0 < engine.solver.window_elapsed <= first * 3


class TestFrozenCircuits:
    def test_sweep_reports_zero_for_frozen_points(self):
        from repro.core import sweep_iv

        curve = sweep_iv(
            build_set(), [0.005, 0.04],
            SimulationConfig(temperature=0.05, solver="nonadaptive", seed=2),
            jumps_per_point=1500,
        )
        assert curve.currents[0] == 0.0
        assert curve.currents[1] > 1e-10

    def test_frozen_step_raises_cleanly(self):
        engine = MonteCarloEngine(
            build_set(vs=0.0, vd=0.0),
            SimulationConfig(temperature=0.0, solver="adaptive"),
        )
        with pytest.raises(SimulationError):
            engine.solver.step()


class TestAdaptiveStateAfterSourceChanges:
    def test_rates_follow_capacitively_coupled_sources(self):
        """Regression: a source that couples only through capacitors
        (like every logic input) must still refresh the cached rates."""
        builder = CircuitBuilder()
        builder.add_junction("j1", "lead", "isl", 1e6, 1e-18)
        builder.add_junction("j2", "isl", "0", 1e6, 1e-18)
        builder.add_capacitor("cg", "gate", "isl", 3e-18)
        builder.add_voltage_source("vl", "lead", 0.02)
        builder.add_voltage_source("vg", "gate", 0.0)
        circuit = builder.build()

        engines = {}
        for solver in ("adaptive", "nonadaptive"):
            engine = MonteCarloEngine(
                circuit, SimulationConfig(temperature=2.0, solver=solver,
                                          seed=7, adaptive_threshold=0.0),
            )
            engine.run(max_jumps=300)
            engine.set_sources({"vg": 0.03})
            engine.run(max_jumps=700)
            engines[solver] = engine
        assert engines["adaptive"].solver.time == pytest.approx(
            engines["nonadaptive"].solver.time, rel=1e-12
        )
        assert np.array_equal(
            engines["adaptive"].solver.flux,
            engines["nonadaptive"].solver.flux,
        )


class TestRecorderInteractionWithSweeps:
    def test_recorders_survive_multiple_runs(self):
        from repro.core import NodeVoltageRecorder

        engine = MonteCarloEngine(
            build_set(vs=0.04, vd=-0.04),
            SimulationConfig(temperature=5.0, solver="nonadaptive", seed=3),
        )
        recorder = engine.add_recorder(NodeVoltageRecorder(0, interval=10))
        engine.run(max_jumps=100)
        count_after_first = len(recorder.samples)
        engine.run(max_jumps=100)
        assert len(recorder.samples) > count_after_first
        assert np.all(np.diff(recorder.times()) >= 0)
