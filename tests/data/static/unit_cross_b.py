"""Half of the cross-module seeded bug: misuses ``unit_cross_a``.

Expected finding: exactly one UNIT002 on the ``boltzmann_factor`` call
— but only when this module is analysed *together with*
``unit_cross_a``, because the volts flow out of ``island_potential``'s
summary.  Analysed alone, the callee is unknown and the module is
clean; the test suite checks both directions.
"""

from __future__ import annotations

from unit_cross_a import island_potential

from repro.static import units


@units("energy: J, temperature: K -> 1")
def boltzmann_factor(energy: float, temperature: float) -> float:
    """Stand-in thermal factor; only the contract matters here."""
    return 0.5


@units("charge: C, capacitance: F, temperature: K -> 1")
def blockade_factor(charge: float, capacitance: float,
                    temperature: float) -> float:
    """Passes a potential (V) where an energy (J) is required."""
    return boltzmann_factor(
        island_potential(charge, capacitance), temperature
    )
