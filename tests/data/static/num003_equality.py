"""Seeded bug: float ``==`` on a computed expression.

Expected finding: exactly one NUM003 on the comparison.
"""

from __future__ import annotations


def is_converged(total: float, count: float, target: float) -> bool:
    """The mean is a rounded float; exact equality is luck."""
    return (total / count) == target
