"""Seeded bug: mutates the caller's occupation array in place.

Expected finding: exactly one ARR003 on ``occupation[0] += delta`` —
the parameter is not declared in the contract's ``mutates`` list, so
the caller's charge state is silently corrupted.
"""

from __future__ import annotations

from repro.static import array_contract


@array_contract(occupation="(n_islands,) int64", out="(n_islands,) int64")
def apply_shift(occupation, delta):
    """Shift the first island by ``delta`` electrons."""
    occupation[0] += delta
    return occupation
