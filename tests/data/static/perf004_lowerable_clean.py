"""Clean twin of ``perf004_lowerable``: straight-line array code."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract, lowerable


@lowerable
@array_contract(dw="(n_junctions,) float64", out="() float64")
def robust_total(dw):
    return np.sum(dw)
