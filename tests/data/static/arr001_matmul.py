"""Seeded bug: matrix-vector product with mismatched inner dimension.

Expected finding: exactly one ARR001 on the ``cinv @ rhs`` expression.
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(cinv="(3, 3) float64", out="(3,) float64")
def solve_potentials(cinv):
    """``v = C^-1 q`` — but the right-hand side has four entries."""
    rhs = np.ones(4)
    return cinv @ rhs
