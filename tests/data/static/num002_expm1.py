"""Seeded bug: divides by ``exp(x) - 1`` instead of ``expm1``.

Expected finding: exactly one NUM002 on the division.  The ``exp``
argument is mask-selected, so NUM001 stays silent and the cancellation
is the only defect.
"""

from __future__ import annotations

import numpy as np


def bose_occupation(ratio, normal):
    """Loses all precision for ``|x| << 1``."""
    return ratio[normal] / (np.exp(ratio[normal]) - 1.0)
