"""Clean twin of ``unit002_argdim``: the voltage becomes an energy."""

from __future__ import annotations

from repro.constants import E_CHARGE
from repro.static import units


@units("energy: J, temperature: K -> 1")
def occupation(energy: float, temperature: float) -> float:
    """Stand-in occupation factor; only the contract matters here."""
    return 0.5


@units("voltage: V, temperature: K -> 1")
def gate_occupation(voltage: float, temperature: float) -> float:
    """Converts the gate voltage to an electron energy before the call."""
    return occupation(-E_CHARGE * voltage, temperature)
