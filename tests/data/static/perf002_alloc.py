"""Seeded bug: allocates a fresh array on every loop iteration.

Expected finding: exactly one PERF002 on the ``np.zeros`` call inside
the loop body.
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract, hot


@hot
@array_contract(blocks="(n_islands, 3) float64", out="(n_islands,) float64")
def column_total(blocks):
    """Sums the three columns — with a scratch vector per column."""
    total = np.zeros(blocks.shape[0])
    for i in range(3):
        scratch = np.zeros(blocks.shape[0])
        scratch += blocks[:, i]
        total += scratch
    return total
