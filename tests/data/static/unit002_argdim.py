"""Seeded bug: passes a voltage where the callee declares joules.

Expected finding: exactly one UNIT002 on the ``occupation(...)`` call.
"""

from __future__ import annotations

from repro.static import units


@units("energy: J, temperature: K -> 1")
def occupation(energy: float, temperature: float) -> float:
    """Stand-in occupation factor; only the contract matters here."""
    return 0.5


@units("voltage: V, temperature: K -> 1")
def gate_occupation(voltage: float, temperature: float) -> float:
    """Forgot to convert the gate voltage to an energy (``-e * V``)."""
    return occupation(voltage, temperature)
