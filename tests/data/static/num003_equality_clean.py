"""Clean twin of ``num003_equality``: compares with a tolerance."""

from __future__ import annotations

import math


def is_converged(total: float, count: float, target: float) -> bool:
    """``isclose`` absorbs the rounding of the division."""
    return math.isclose(total / count, target)
