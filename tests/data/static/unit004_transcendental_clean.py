"""Clean twin of ``unit004_transcendental``: the argument is reduced
to a dimensionless ratio first."""

from __future__ import annotations

import numpy as np

from repro.static import units


@units("energy: J, scale: J -> 1")
def log_energy(energy: float, scale: float) -> float:
    """``log`` of the dimensionless ratio ``E / E0``."""
    return float(np.log(energy / scale))
