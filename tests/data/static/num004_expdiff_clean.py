"""Clean twin of ``num004_expdiff``: factored through ``expm1``."""

from __future__ import annotations

import numpy as np


def tail_difference(first, second):
    """``exp(b) * expm1(a - b)`` evaluates the difference stably."""
    shift = np.clip(np.abs(second) - np.abs(first), -50.0, 50.0)
    return np.exp(-np.abs(second)) * np.expm1(shift)
