"""Seeded bug: reduction axis out of range for the declared rank.

Expected finding: exactly one ARR004 — ``axis=1`` cannot exist on the
rank-1 rate vector the contract declares.
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(rates="(n_junctions,) float64", out="() float64")
def total_rate(rates):
    """Total escape rate out of the current charge state."""
    return np.sum(rates, axis=1)
