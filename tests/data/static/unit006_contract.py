"""Seeded bug: a ``@units`` contract naming an unknown unit.

Expected finding: exactly one UNIT006 on the decorator line.
"""

from __future__ import annotations

from repro.static import units


@units("energy: Jool -> 1")
def qp_weight(energy: float) -> float:
    """The contract misspells joule, so it cannot be parsed."""
    return 0.5
