"""Clean twin of ``arr004_axis``: full reduction to a scalar."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(rates="(n_junctions,) float64", out="() float64")
def total_rate(rates):
    return np.sum(rates)
