"""Clean twin of ``arr004_rank``: reduces before returning."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(v="(n_islands,) float64", out="() float64")
def mean_potential(v):
    return np.mean(v * 2.0)
