"""Seeded bug: a ``@lowerable`` kernel using a construct no array
compiler lowers.

Expected finding: exactly one PERF004 on the ``try`` statement.
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract, lowerable


@lowerable
@array_contract(dw="(n_junctions,) float64", out="() float64")
def robust_total(dw):
    """Total rate with a defensive fallback nobody can compile."""
    try:
        return float(np.sum(dw))
    except FloatingPointError:
        return 0.0
