"""Seeded bug: takes the logarithm of a dimensional quantity.

Expected finding: exactly one UNIT004 on the ``np.log`` call.
"""

from __future__ import annotations

import numpy as np

from repro.static import units


@units("energy: J -> 1")
def log_energy(energy: float) -> float:
    """``log`` of raw joules; the energy must be reduced by a scale."""
    return float(np.log(energy))
