"""Seeded bug: float64 rates silently narrowed into a float32 store.

Expected finding: exactly one ARR002 on the ``out[0] = rates[0]``
statement (precision loss the interpreter can prove from the dtypes).
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(rates="(n_junctions,) float64", out="(n_junctions,) float32")
def compact_rates(rates):
    """Pack rates into a single-precision table."""
    out = np.zeros(rates.shape[0], dtype=np.float32)
    out[0] = rates[0]
    return out
