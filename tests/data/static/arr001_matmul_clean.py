"""Clean twin of ``arr001_matmul``: inner dimensions agree."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(cinv="(3, 3) float64", out="(3,) float64")
def solve_potentials(cinv):
    rhs = np.ones(3)
    return cinv @ rhs
