"""Seeded bug: subtracts two exponentials.

Expected finding: exactly one NUM004 on the subtraction.  Both ``exp``
arguments are bounded above by ``-abs``, so NUM001 stays silent.
"""

from __future__ import annotations

import numpy as np


def tail_difference(first, second):
    """Cancels catastrophically when the two tails are close."""
    return np.exp(-np.abs(first)) - np.exp(-np.abs(second))
