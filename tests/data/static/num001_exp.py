"""Seeded bug: ``exp`` of an unclamped quantity.

Expected finding: exactly one NUM001 on the ``np.exp`` call.
"""

from __future__ import annotations

import numpy as np


def boltzmann_weight(ratio):
    """Overflows for large negative free-energy changes."""
    return np.exp(ratio)
