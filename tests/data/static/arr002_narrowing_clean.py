"""Clean twin of ``arr002_narrowing``: stores stay double precision."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(rates="(n_junctions,) float64", out="(n_junctions,) float64")
def compact_rates(rates):
    out = np.zeros(rates.shape[0], dtype=np.float64)
    out[0] = rates[0]
    return out
