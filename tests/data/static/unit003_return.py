"""Seeded bug: returns charge times voltage (joules) from a function
declared to return volts.

Expected finding: exactly one UNIT003 on the ``return`` statement.
"""

from __future__ import annotations

from repro.static import units


@units("charge: C, voltage: V -> V")
def stored_potential(charge: float, voltage: float) -> float:
    """The product is an energy, not a potential."""
    return charge * voltage
