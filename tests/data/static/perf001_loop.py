"""Seeded bug: Python-level loop over an array in a hot kernel.

Expected finding: exactly one PERF001 on the ``for`` statement.
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract, hot


@hot
@array_contract(dw="(n_junctions,) float64", out="(n_junctions,) float64")
def doubled_rates(dw):
    """Doubles every rate one element at a time."""
    out = np.empty_like(dw)
    for i in range(len(dw)):
        out[i] = dw[i] * 2.0
    return out
