"""Seeded bug: a raw literal duplicating the Boltzmann constant.

Expected finding: exactly one UNIT005 on the ``1.38e-23`` literal.
"""

from __future__ import annotations


def thermal_scale(temperature: float) -> float:
    """Hard-codes ``k_B`` instead of importing ``repro.constants.K_B``."""
    return 1.38e-23 * temperature
