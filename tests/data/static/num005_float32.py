"""Seeded bug: loop accumulation into a float32 buffer.

Expected finding: exactly one NUM005 on the ``+=`` statement.
"""

from __future__ import annotations

import numpy as np


def running_total(chunks):
    """Running float32 sums lose ~7 digits over long campaigns."""
    acc = np.zeros(8, dtype=np.float32)
    for chunk in chunks:
        acc += chunk
    return acc
