"""Clean twin of ``unit003_return``: the declaration matches the body."""

from __future__ import annotations

from repro.static import units


@units("charge: C, voltage: V -> J")
def stored_energy(charge: float, voltage: float) -> float:
    """Charge times voltage is an energy."""
    return charge * voltage
