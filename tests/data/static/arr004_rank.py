"""Seeded bug: returns a vector where the contract promises a scalar.

Expected finding: exactly one ARR004 on the return statement — the
declared ``out`` is rank 0 but the body provably returns rank 1.
"""

from __future__ import annotations

from repro.static import array_contract


@array_contract(v="(n_islands,) float64", out="() float64")
def mean_potential(v):
    """Mean island potential — except the mean was forgotten."""
    return v * 2.0
