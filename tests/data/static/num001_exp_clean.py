"""Clean twin of ``num001_exp``: the argument is clamped first."""

from __future__ import annotations

import numpy as np


def boltzmann_weight(ratio):
    """The clip keeps ``exp`` inside its safe range."""
    return np.exp(np.clip(ratio, None, 500.0))
