"""Seeded bug: adds an energy to a raw temperature.

Expected finding: exactly one UNIT001 on the ``energy + temperature``
expression (joules plus kelvin).
"""

from __future__ import annotations

from repro.static import units


@units("energy: J, temperature: K -> J")
def biased_energy(energy: float, temperature: float) -> float:
    """Meant to add the thermal energy ``k_B * T`` but forgot ``k_B``."""
    return energy + temperature
