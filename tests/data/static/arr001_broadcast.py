"""Seeded bug: adds arrays whose concrete shapes cannot broadcast.

Expected finding: exactly one ARR001 on the ``q + offset`` expression.
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(q="(3,) float64", out="(3,) float64")
def charge_with_offset(q):
    """Island charge with a per-island trim — but the trim vector is
    sized for four islands while the contract pins three."""
    offset = np.zeros(4)
    return q + offset
