"""Clean twin of ``unit005_magic``: uses the named constant."""

from __future__ import annotations

from repro.constants import K_B


def thermal_scale(temperature: float) -> float:
    """Uses ``repro.constants.K_B`` rather than a magic literal."""
    return K_B * temperature
