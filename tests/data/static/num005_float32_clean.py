"""Clean twin of ``num005_float32``: accumulates in float64."""

from __future__ import annotations

import numpy as np


def running_total(chunks):
    """Accumulates at full precision and narrows once at the end."""
    acc = np.zeros(8)
    for chunk in chunks:
        acc += chunk
    return acc.astype(np.float32)
