"""Clean twin of ``num002_expm1``: uses ``np.expm1``."""

from __future__ import annotations

import numpy as np


def bose_occupation(ratio, normal):
    """``expm1`` keeps full precision near ``x = 0``."""
    return ratio[normal] / np.expm1(ratio[normal])
