"""Clean twin of ``arr003_mutation``: copy-on-write like
``Transition.apply``."""

from __future__ import annotations

from repro.static import array_contract


@array_contract(occupation="(n_islands,) int64", out="(n_islands,) int64")
def apply_shift(occupation, delta):
    new = occupation.copy()
    new[0] += delta
    return new
