"""Clean twin of ``unit001_mixed``: the kelvin is scaled by ``k_B``."""

from __future__ import annotations

from repro.constants import K_B
from repro.static import units


@units("energy: J, temperature: K -> J")
def biased_energy(energy: float, temperature: float) -> float:
    """Adds the thermal energy ``k_B * T`` to ``energy``."""
    return energy + K_B * temperature
