"""Seeded bug: grows an array with ``np.append`` in a hot kernel.

Expected finding: exactly one PERF003 — ``np.append`` copies the whole
array on every call.
"""

from __future__ import annotations

import numpy as np

from repro.static import array_contract, hot


@hot
@array_contract(dw="(n_junctions,) float64", out="any float64")
def with_sentinel(dw):
    """Appends a sentinel rate to the vector."""
    return np.append(dw, 0.0)
