"""Clean twin of ``perf003_append``: a single preallocated concatenate."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract, hot


@hot
@array_contract(dw="(n_junctions,) float64", out="any float64")
def with_sentinel(dw):
    return np.concatenate([dw, np.zeros(1)])
