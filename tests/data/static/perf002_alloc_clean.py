"""Clean twin of ``perf002_alloc``: one axis reduction, no scratch."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract, hot


@hot
@array_contract(blocks="(n_islands, 3) float64", out="(n_islands,) float64")
def column_total(blocks):
    return np.sum(blocks, axis=1)
