"""Half of the cross-module seeded bug: a correctly annotated helper.

This module is clean on its own.  ``unit_cross_b`` feeds the volts this
function returns into a joule-expecting contract — a mismatch only the
interprocedural summary engine can see.
"""

from __future__ import annotations

from repro.static import units


@units("charge: C, capacitance: F -> V")
def island_potential(charge: float, capacitance: float) -> float:
    """Potential of an isolated island, ``q / C``."""
    return charge / capacitance
