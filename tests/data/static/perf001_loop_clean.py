"""Clean twin of ``perf001_loop``: one vectorised expression."""

from __future__ import annotations

from repro.static import array_contract, hot


@hot
@array_contract(dw="(n_junctions,) float64", out="(n_junctions,) float64")
def doubled_rates(dw):
    return dw * 2.0
