"""Clean twin of ``unit006_contract``: a well-formed contract."""

from __future__ import annotations

from repro.static import units


@units("energy: J -> 1")
def qp_weight(energy: float) -> float:
    """A parseable contract; the body is unconstrained."""
    return 0.5
