"""Clean twin of ``arr001_broadcast``: the trim vector matches."""

from __future__ import annotations

import numpy as np

from repro.static import array_contract


@array_contract(q="(3,) float64", out="(3,) float64")
def charge_with_offset(q):
    offset = np.zeros(3)
    return q + offset
