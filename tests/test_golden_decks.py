"""Golden-regression corpus over every example deck.

Each deck in ``examples/decks/`` has a committed record under
``tests/data/golden/`` holding its bit-exact output at ``seed=0``:
voltages and currents as ``float.hex()`` strings (no round-trip loss)
plus the dsan combined event hash.  The tests replay every deck
serially and at ``jobs=2`` and demand byte-identical results — the
whole solver stack (physics, adaptive scheduling, shard/merge,
hashing) is pinned at once.

Regenerate after an intentional physics/RNG change with::

    PYTHONPATH=src python -m pytest tests/test_golden_decks.py --update-golden

and commit the diff alongside the change that explains it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.netlist import parse_semsim

REPO = Path(__file__).resolve().parent.parent
DECK_DIR = REPO / "examples" / "decks"
GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden"

DECKS = sorted(DECK_DIR.glob("*.deck"))
assert DECKS, f"no example decks found under {DECK_DIR}"


def _run_deck(path: Path, jobs: int = 1):
    deck = parse_semsim(path.read_text())
    # sweep decks exercise the chunked shard path; an operating-point
    # deck (no sweep) runs as a single measurement
    chunks = 2 if deck.sweep is not None else 1
    return deck.run(seed=0, jobs=jobs, chunks=chunks, dsan=True)


def _record(path: Path, curve) -> dict:
    return {
        "deck": path.stem,
        "label": curve.label,
        "voltages": [float(v).hex() for v in curve.voltages],
        "currents": [float(c).hex() for c in curve.currents],
        "event_hash": curve.event_hash,
    }


def _golden_file(path: Path) -> Path:
    return GOLDEN_DIR / f"{path.stem}.json"


@pytest.mark.parametrize("deck_path", DECKS, ids=lambda p: p.stem)
def test_deck_matches_golden_serial(deck_path, update_golden):
    curve = _run_deck(deck_path)
    assert curve.event_hash is not None
    record = _record(deck_path, curve)
    golden_file = _golden_file(deck_path)
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_file.write_text(json.dumps(record, indent=2) + "\n")
        return
    assert golden_file.exists(), (
        f"missing golden record {golden_file.name}; generate it with "
        "pytest tests/test_golden_decks.py --update-golden"
    )
    assert record == json.loads(golden_file.read_text())


@pytest.mark.parametrize("deck_path", DECKS, ids=lambda p: p.stem)
def test_deck_matches_golden_parallel(deck_path, update_golden):
    """jobs=2 must reproduce the committed serial record bit for bit."""
    if update_golden:
        pytest.skip("golden records are rewritten by the serial test")
    curve = _run_deck(deck_path, jobs=2)
    assert _record(deck_path, curve) == json.loads(
        _golden_file(deck_path).read_text()
    )


def test_golden_corpus_is_complete_and_has_no_strays():
    expected = {f"{p.stem}.json" for p in DECKS}
    present = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert expected - present == set(), (
        f"decks without golden records: {sorted(expected - present)}"
    )
    assert present - expected == set(), (
        f"stray golden records without decks: {sorted(present - expected)}"
    )
