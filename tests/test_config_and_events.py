"""Tests for simulation configuration and event bookkeeping."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.events import EventKind, TunnelEvent
from repro.errors import SimulationError
from repro.physics.cotunneling import enumerate_paths


class TestSimulationConfig:
    def test_defaults(self):
        cfg = SimulationConfig()
        assert cfg.solver == "adaptive"
        assert cfg.adaptive_threshold == 0.05
        assert cfg.full_refresh_interval == 1000

    def test_invalid_solver_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(solver="magic")

    def test_negative_temperature_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(temperature=-1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(adaptive_threshold=-0.1)

    def test_zero_refresh_interval_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(full_refresh_interval=0)

    def test_replace(self):
        cfg = SimulationConfig(seed=1)
        cfg2 = cfg.replace(seed=2, solver="nonadaptive")
        assert cfg.seed == 1
        assert cfg2.seed == 2
        assert cfg2.solver == "nonadaptive"


class TestTunnelEvent:
    def test_sequential_flux(self):
        event = TunnelEvent(EventKind.SEQUENTIAL, 3, -1, 1, -1e-22)
        assert event.flux_contributions() == [(3, -1)]

    def test_cooper_pair_flux_counts_two_electrons(self):
        event = TunnelEvent(EventKind.COOPER_PAIR, 0, +1, 2, 0.0)
        assert event.flux_contributions() == [(0, 2)]

    def test_cotunneling_flux_covers_both_junctions(self, set_circuit):
        path = enumerate_paths(set_circuit)[0]
        event = TunnelEvent(
            EventKind.COTUNNELING, path.junction_in, path.direction_in, 1,
            -1e-22, path=path,
        )
        flux = dict(event.flux_contributions())
        assert set(flux) == {path.junction_in, path.junction_out}
