"""Tests for the gate-level netlist model and its text format."""

import pytest

from repro.errors import NetlistError
from repro.logic import Gate, GateKind, LogicNetlist
from repro.netlist import parse_logic, write_logic


def half_adder():
    return LogicNetlist(
        "half_adder", ["a", "b"], ["s", "c"],
        [
            Gate("gx", GateKind.XOR2, ("a", "b"), "s"),
            Gate("ga", GateKind.AND2, ("a", "b"), "c"),
        ],
    )


class TestValidation:
    def test_wrong_arity_rejected(self):
        with pytest.raises(NetlistError):
            Gate("g", GateKind.INV, ("a", "b"), "y")

    def test_gate_driving_own_input_rejected(self):
        with pytest.raises(NetlistError):
            Gate("g", GateKind.NAND2, ("a", "y"), "y")

    def test_double_driver_rejected(self):
        with pytest.raises(NetlistError):
            LogicNetlist(
                "bad", ["a"], ["y"],
                [
                    Gate("g1", GateKind.INV, ("a",), "y"),
                    Gate("g2", GateKind.INV, ("a",), "y"),
                ],
            )

    def test_undriven_input_rejected(self):
        with pytest.raises(NetlistError):
            LogicNetlist(
                "bad", ["a"], ["y"], [Gate("g", GateKind.INV, ("ghost",), "y")]
            )

    def test_undriven_output_rejected(self):
        with pytest.raises(NetlistError):
            LogicNetlist("bad", ["a"], ["nowhere"], [])

    def test_combinational_loop_rejected(self):
        with pytest.raises(NetlistError):
            LogicNetlist(
                "bad", ["a"], ["x"],
                [
                    Gate("g1", GateKind.NAND2, ("a", "y"), "x"),
                    Gate("g2", GateKind.INV, ("x",), "y"),
                ],
            )

    def test_driving_primary_input_rejected(self):
        with pytest.raises(NetlistError):
            LogicNetlist(
                "bad", ["a", "b"], ["b"], [Gate("g", GateKind.INV, ("a",), "b")]
            )


class TestEvaluation:
    def test_half_adder_truth_table(self):
        net = half_adder()
        for a in (False, True):
            for b in (False, True):
                out = net.output_values({"a": a, "b": b})
                assert out["s"] == (a != b)
                assert out["c"] == (a and b)

    def test_all_gate_functions(self):
        cases = {
            GateKind.INV: (("a",), lambda a: not a),
            GateKind.BUF: (("a",), lambda a: a),
            GateKind.NAND2: (("a", "b"), lambda a, b: not (a and b)),
            GateKind.NOR2: (("a", "b"), lambda a, b: not (a or b)),
            GateKind.AND2: (("a", "b"), lambda a, b: a and b),
            GateKind.OR2: (("a", "b"), lambda a, b: a or b),
            GateKind.XOR2: (("a", "b"), lambda a, b: a != b),
            GateKind.XNOR2: (("a", "b"), lambda a, b: a == b),
            GateKind.NAND3: (("a", "b", "c"), lambda a, b, c: not (a and b and c)),
            GateKind.NOR3: (("a", "b", "c"), lambda a, b, c: not (a or b or c)),
            GateKind.AND4: (
                ("a", "b", "c", "d"), lambda a, b, c, d: a and b and c and d
            ),
        }
        import itertools

        for kind, (inputs, fn) in cases.items():
            net = LogicNetlist(
                "t", list(inputs), ["y"], [Gate("g", kind, inputs, "y")]
            )
            for values in itertools.product((False, True), repeat=len(inputs)):
                vec = dict(zip(inputs, values))
                assert net.output_values(vec)["y"] == fn(*values), kind

    def test_missing_input_value_rejected(self):
        with pytest.raises(NetlistError):
            half_adder().evaluate({"a": True})

    def test_topological_order_respects_dependencies(self):
        net = LogicNetlist(
            "chain", ["a"], ["z"],
            [
                Gate("g2", GateKind.INV, ("y",), "z"),
                Gate("g1", GateKind.INV, ("a",), "y"),
            ],
        )
        order = [g.name for g in net.topological_gates()]
        assert order == ["g1", "g2"]

    def test_fanout_query(self):
        net = half_adder()
        assert {g.name for g in net.fanout_of("a")} == {"gx", "ga"}

    def test_gate_count(self):
        counts = half_adder().gate_count()
        assert counts[GateKind.XOR2] == 1
        assert counts[GateKind.AND2] == 1


class TestTextFormat:
    def test_round_trip(self):
        net = half_adder()
        text = write_logic(net)
        again = parse_logic(text)
        assert again.inputs == net.inputs
        assert again.outputs == net.outputs
        for vec in ({"a": True, "b": False}, {"a": True, "b": True}):
            assert again.output_values(vec) == net.output_values(vec)

    def test_parse_reports_line_numbers(self):
        with pytest.raises(NetlistError) as excinfo:
            parse_logic("input a\noutput y\nwat g a y\n")
        assert "line 3" in str(excinfo.value)

    def test_parse_checks_arity(self):
        with pytest.raises(NetlistError):
            parse_logic("input a b\noutput y\nnand2 g a y\n")

    def test_parse_requires_inputs(self):
        with pytest.raises(NetlistError):
            parse_logic("output y\n")

    def test_comments_and_blank_lines_ignored(self):
        net = parse_logic(
            "# a comment\n\nname t\ninput a\noutput y\ninv g a y  # trailing\n"
        )
        assert net.output_values({"a": True})["y"] is False
