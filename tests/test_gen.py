"""Tests for ``repro.gen`` — generator, differential oracle, shrinker, corpus.

The fast tier exercises generator determinism and bounds (hypothesis),
the tolerance model on synthetic curves, the shrinker under cheap
structural predicates, the corpus round-trip on (fast) logic cases, and
a small amount of real Monte Carlo: one known-good SET case must pass
every oracle and the seeded sign-flip bug must be caught with exactly
the right pairs failing.  The heavy statistical calibration (a 200-case
clean campaign) and MC-predicate shrinking live behind ``-m slow``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import GeneratorError
from repro.gen import (
    DEFAULT_FAMILIES,
    FAMILY_SPACES,
    Choice,
    FuzzConfig,
    IntRange,
    LogUniform,
    OracleCurve,
    ParamSpace,
    Tolerance,
    Uniform,
    generate_case,
    iter_corpus,
    load_case,
    promote,
    replay,
    run_case,
    run_fuzz,
    shrink_case,
    write_artifacts,
    write_case,
)
from repro.gen.differential import _compare
from repro.lint import lint_deck, lint_logic_netlist
from repro.netlist import parse_semsim
from repro.netlist.writer import write_semsim

# stable draw coordinates at seed 0 (asserted below, so a generator
# change that reshuffles the stream fails loudly instead of silently
# testing the wrong family)
SEED = 0
LOGIC_INDEX = 0
TRAP_INDEX = 1
SET_INDEX = 4
DEGENERATE_SET_INDEX = 5
DEEP_ARRAY_INDEX = 8

GOLDEN_FUZZ = Path(__file__).resolve().parent / "data" / "golden" / "fuzz"

seeds = st.integers(min_value=0, max_value=2**31 - 1)
indices = st.integers(min_value=0, max_value=200)


def test_pinned_draw_coordinates_still_hold():
    expected = {
        LOGIC_INDEX: "logic",
        TRAP_INDEX: "trap",
        SET_INDEX: "set",
        DEGENERATE_SET_INDEX: "set",
        DEEP_ARRAY_INDEX: "series_array",
    }
    for index, family in expected.items():
        assert generate_case(SEED, index).family == family
    assert generate_case(SEED, DEGENERATE_SET_INDEX).params["cap_regime"] == (
        "degenerate"
    )
    deep = generate_case(SEED, DEEP_ARRAY_INDEX)
    assert deep.params["n_junctions"] == 4


class TestSpaces:
    def test_uniform_bounds_and_containment(self, rng):
        dist = Uniform(-2.0, 3.0)
        draws = [dist.draw(rng) for _ in range(200)]
        assert all(-2.0 <= x <= 3.0 for x in draws)
        assert all(dist.contains(x) for x in draws)
        assert not dist.contains(3.5)

    def test_loguniform_spans_decades(self, rng):
        dist = LogUniform(1e-19, 1e-15)
        draws = [dist.draw(rng) for _ in range(300)]
        assert all(1e-19 <= x <= 1e-15 for x in draws)
        assert min(draws) < 1e-17 < max(draws)  # genuinely log-spread

    def test_intrange_inclusive(self, rng):
        dist = IntRange(2, 4)
        draws = {dist.draw(rng) for _ in range(100)}
        assert draws == {2, 3, 4}

    def test_choice_draws_only_members(self, rng):
        dist = Choice(("a", "b"), weights=(3, 1))
        assert {dist.draw(rng) for _ in range(50)} <= {"a", "b"}
        assert not dist.contains("c")

    def test_invalid_distributions_rejected(self):
        with pytest.raises(GeneratorError):
            Uniform(2.0, 1.0)
        with pytest.raises(GeneratorError):
            LogUniform(0.0, 1.0)
        with pytest.raises(GeneratorError):
            IntRange(5, 4)
        with pytest.raises(GeneratorError):
            Choice(())
        with pytest.raises(GeneratorError):
            Choice(("a", "b"), weights=(1,))

    def test_paramspace_contains_names_violations(self, rng):
        space = ParamSpace({"r": Uniform(0.0, 1.0), "n": IntRange(1, 3)})
        params = space.draw(rng)
        assert space.contains(params) == []
        assert space.contains({"r": 2.0, "n": 1}) == ["r"]
        # missing names are allowed (shrunk cases keep a param subset)
        assert space.contains({"n": 2}) == []


class TestGeneratorDeterminism:
    @given(seed=seeds, index=indices)
    @settings(max_examples=25, deadline=None)
    def test_same_coordinates_same_case(self, seed, index):
        first = generate_case(seed, index)
        second = generate_case(seed, index)
        assert first == second  # frozen dataclass: params AND deck text

    def test_neighbouring_indices_differ(self):
        texts = {generate_case(SEED, i).deck_text for i in range(8)}
        assert len(texts) == 8

    def test_family_restriction_is_respected(self):
        for index in range(6):
            case = generate_case(SEED, index, families=("set",))
            assert case.family == "set"

    def test_artifact_accessors_guard_family(self):
        device = generate_case(SEED, SET_INDEX)
        logic = generate_case(SEED, LOGIC_INDEX)
        assert device.deck().build_circuit().n_junctions >= 1
        assert logic.netlist().gates
        with pytest.raises(GeneratorError):
            logic.deck()
        with pytest.raises(GeneratorError):
            device.netlist()


class TestGeneratedDevices:
    @given(seed=seeds, index=indices)
    @settings(max_examples=20, deadline=None)
    def test_device_cases_are_lint_clean_and_in_space(self, seed, index):
        case = generate_case(
            seed, index, families=("set", "series_array", "trap")
        )
        deck = parse_semsim(case.deck_text)
        assert not lint_deck(deck).errors
        assert FAMILY_SPACES[case.family].contains(case.params) == []
        circuit = deck.build_circuit()
        assert 1 <= circuit.n_junctions <= 4

    @given(seed=seeds, index=indices)
    @settings(max_examples=15, deadline=None)
    def test_deck_text_is_its_own_fixed_point(self, seed, index):
        """A reproducer deck *is* its case: parse + precise render is
        the identity, so the corpus artifact round-trips bit-for-bit."""
        case = generate_case(
            seed, index, families=("set", "series_array", "trap")
        )
        deck = parse_semsim(case.deck_text)
        assert write_semsim(deck, precise=True) == case.deck_text


class TestGeneratedLogic:
    @given(seed=seeds, index=indices)
    @settings(max_examples=20, deadline=None)
    def test_logic_cases_respect_their_parameters(self, seed, index):
        case = generate_case(seed, index, families=("logic",))
        net = case.netlist()
        assert len(net.gates) == case.params["n_gates"]
        assert len(net.inputs) == case.params["n_inputs"]
        assert net.outputs  # at least one primary output
        assert not lint_logic_netlist(net).errors
        limit = case.params["max_fanout"]
        for name in list(net.inputs) + [g.output for g in net.gates]:
            assert len(net.fanout_of(name)) <= limit
        net.topological_gates()  # a DAG by construction

    @given(seed=seeds, index=indices)
    @settings(max_examples=8, deadline=None)
    def test_decompose_preserves_function_on_generated_netlists(
        self, seed, index
    ):
        import numpy as np

        from repro.logic import decompose

        case = generate_case(seed, index, families=("logic",))
        net = case.netlist()
        lowered = decompose(net)
        rng = np.random.default_rng(seed)
        for _ in range(4):
            vec = {n: bool(rng.integers(2)) for n in net.inputs}
            assert net.output_values(vec) == lowered.output_values(vec)


class TestToleranceModel:
    """The statistical acceptance band, on synthetic curves (no MC)."""

    VOLTS = [-0.01, 0.0, 0.01]

    @staticmethod
    def _curves(ref, obs, sems=None):
        reference = OracleCurve("master", tuple(ref), (0.0,) * len(ref))
        observed = OracleCurve(
            "adaptive", tuple(obs), tuple(sems or [0.0] * len(obs))
        )
        return observed, reference

    def test_identical_curves_pass(self):
        obs, ref = self._curves([1e-9, 0.0, -1e-9], [1e-9, 0.0, -1e-9])
        assert _compare(obs, ref, self.VOLTS, Tolerance()).ok

    def test_relative_band(self):
        # scale = 1e-9: budget at the full-scale point is
        # rel*1e-9 + floor_frac*1e-9 = 1.4e-10 (sems are zero)
        obs, ref = self._curves([1.1e-9, 0.0, -1e-9], [1e-9, 0.0, -1e-9])
        assert _compare(obs, ref, self.VOLTS, Tolerance()).ok
        obs, ref = self._curves([1.2e-9, 0.0, -1e-9], [1e-9, 0.0, -1e-9])
        comparison = _compare(obs, ref, self.VOLTS, Tolerance())
        assert not comparison.ok
        assert [c.index for c in comparison.failures] == [0]

    def test_blockade_floor_absorbs_small_absolute_noise(self):
        # at a blockade point the reference is 0 but MC noise is not;
        # the floor_frac * scale term must absorb it
        obs, ref = self._curves([1e-9, 3e-11, -1e-9], [1e-9, 0.0, -1e-9])
        assert _compare(obs, ref, self.VOLTS, Tolerance()).ok
        obs, ref = self._curves([1e-9, 6e-11, -1e-9], [1e-9, 0.0, -1e-9])
        assert not _compare(obs, ref, self.VOLTS, Tolerance()).ok

    def test_statistical_term_scales_with_sem(self):
        # a 6.1e-10 deviation fails with sem=0 but passes with
        # sem=1e-10 (z=6 adds 6e-10 to the budget)
        ref = [1e-9, 0.0, -1e-9]
        obs = [1e-9 + 6.1e-10, 0.0, -1e-9]
        reference = OracleCurve("master", tuple(ref), (0.0, 0.0, 0.0))
        noiseless = OracleCurve("adaptive", tuple(obs), (0.0, 0.0, 0.0))
        noisy = OracleCurve("adaptive", tuple(obs), (1e-10, 0.0, 0.0))
        assert not _compare(noiseless, reference, self.VOLTS, Tolerance()).ok
        assert _compare(noisy, reference, self.VOLTS, Tolerance()).ok

    def test_deterministic_band_is_much_tighter(self):
        # 5% off: fine statistically, a hard fail for spice-vs-master
        obs, ref = self._curves([1.05e-9, 0.0, -1e-9], [1e-9, 0.0, -1e-9])
        assert _compare(obs, ref, self.VOLTS, Tolerance()).ok
        assert not _compare(
            obs, ref, self.VOLTS, Tolerance(), deterministic=True
        ).ok

    def test_sign_flipped_curve_is_flagged(self):
        ref = [2e-9, 1e-10, -2e-9]
        obs, reference = self._curves(ref, [-x for x in ref])
        comparison = _compare(obs, reference, self.VOLTS, Tolerance())
        assert not comparison.ok
        assert len(comparison.failures) >= 2


@pytest.fixture(scope="module")
def set_case():
    return generate_case(SEED, SET_INDEX)


@pytest.fixture(scope="module")
def good_verdict(set_case):
    return run_case(set_case, replicas=2)


class TestDifferentialMC:
    def test_known_good_set_passes_every_oracle(self, set_case, good_verdict):
        assert good_verdict.kind == "pass"
        assert good_verdict.ok
        names = {o.name for o in good_verdict.oracles}
        # a symmetric 2-junction SET maps onto the SPICE compact model
        assert {"adaptive", "nonadaptive", "master", "spice"} <= names
        pairs = {(c.subject, c.reference) for c in good_verdict.comparisons}
        assert {
            ("adaptive", "master"),
            ("nonadaptive", "master"),
            ("adaptive", "nonadaptive"),
            ("spice", "master"),
        } == pairs

    def test_event_hash_is_recorded(self, good_verdict):
        assert good_verdict.event_hash
        int(good_verdict.event_hash, 16)

    def test_seeded_sign_flip_is_caught_with_the_right_pairs(self, set_case):
        verdict = run_case(set_case, replicas=2, bug="sign-flip")
        assert verdict.kind == "mismatch"
        status = {
            (c.subject, c.reference): c.ok for c in verdict.comparisons
        }
        # the bug lives in the non-adaptive solver only: exactly the
        # pairs touching it fail, everything else stays green
        assert status[("nonadaptive", "master")] is False
        assert status[("adaptive", "nonadaptive")] is False
        assert status[("adaptive", "master")] is True
        assert status[("spice", "master")] is True

    def test_unknown_bug_kind_rejected(self, set_case):
        with pytest.raises(GeneratorError):
            run_case(set_case, replicas=2, bug="no-such-bug")

    def test_replicas_must_be_positive(self, set_case):
        with pytest.raises(GeneratorError):
            run_case(set_case, replicas=0)


class TestCorpusRoundTrip:
    """Corpus mechanics on logic cases (no MC, so tier-1 cheap)."""

    @pytest.fixture()
    def logic_entry(self, tmp_path):
        case = generate_case(SEED, LOGIC_INDEX)
        verdict = run_case(case)
        entry = write_case(
            tmp_path / "corpus", case, verdict,
            replicas=3, tolerance=Tolerance(),
        )
        return case, verdict, entry

    def test_write_load_round_trip(self, logic_entry):
        case, verdict, entry = logic_entry
        loaded, record = load_case(entry)
        assert loaded == case
        assert record["verdict"] == verdict.kind
        assert record["artifact"] == "case.net"

    def test_replay_reproduces(self, logic_entry):
        _, _, entry = logic_entry
        verdict, divergences = replay(entry)
        assert divergences == []
        assert verdict.ok

    def test_replay_detects_tampered_record(self, logic_entry):
        _, _, entry = logic_entry
        record = json.loads((entry / "record.json").read_text())
        record["verdict"] = "mismatch"
        (entry / "record.json").write_text(json.dumps(record))
        _, divergences = replay(entry)
        assert divergences
        assert "verdict" in divergences[0].what

    def test_promote_by_name_and_missing_name(self, logic_entry, tmp_path):
        case, _, entry = logic_entry
        pinned = tmp_path / "pinned"
        promoted = promote(entry.parent, pinned, (case.name,))
        assert [p.name for p in promoted] == [case.name]
        assert (pinned / case.name / "record.json").is_file()
        with pytest.raises(GeneratorError):
            promote(entry.parent, pinned, ("no-such-entry",))

    def test_iter_corpus_sorted_and_ignores_strays(self, logic_entry):
        _, _, entry = logic_entry
        (entry.parent / "stray").mkdir()  # no record.json: not an entry
        names = [p.name for p in iter_corpus(entry.parent)]
        assert names == sorted(names)
        assert "stray" not in names


def _report_fingerprint(report):
    """Everything a campaign produced, in comparable form."""
    return [
        (
            verdict.name,
            verdict.kind,
            verdict.event_hash,
            {
                oracle.name: [float(c).hex() for c in oracle.currents]
                for oracle in verdict.oracles
            },
        )
        for verdict in report.verdicts
    ]


class TestFuzzCampaign:
    def test_case_set_is_a_pure_function_of_config(self):
        config = FuzzConfig(seed=7, budget=5)
        from repro.gen import generate_cases

        first = generate_cases(config)
        second = generate_cases(config)
        assert first == second
        assert [c.index for c in first] == list(range(5))

    def test_jobs_invariance(self):
        config = FuzzConfig(
            seed=1, budget=3, families=("set", "logic"), replicas=2
        )
        serial = run_fuzz(config, jobs=1)
        pooled = run_fuzz(config, jobs=2)
        assert _report_fingerprint(serial) == _report_fingerprint(pooled)
        assert serial.ok and pooled.ok

    def test_campaign_cache_replays_bit_identically(self, tmp_path):
        config = FuzzConfig(seed=3, budget=4, families=("logic",))
        cold = run_fuzz(config, campaign=tmp_path / "store")
        warm = run_fuzz(config, campaign=tmp_path / "store")
        assert cold.cache_hits == 0
        assert warm.cache_hits == 4
        assert _report_fingerprint(cold) == _report_fingerprint(warm)

    def test_bug_campaign_writes_replayable_artifacts(self, tmp_path):
        config = FuzzConfig(
            seed=0, budget=1, families=("set",), replicas=2,
            bug="sign-flip", shrink=0,
        )
        report = run_fuzz(config)
        assert not report.ok
        assert report.counts["mismatch"] == 1
        out = write_artifacts(report, tmp_path / "out")
        summary = json.loads((out / "report.json").read_text())
        assert summary["failures"] == [report.cases[0].name]
        entries = list(iter_corpus(out / "corpus"))
        assert len(entries) == 1
        _, divergences = replay(entries[0])  # bug recorded => reproduces
        assert divergences == []

    def test_config_validation(self):
        with pytest.raises(GeneratorError):
            FuzzConfig(budget=0)
        with pytest.raises(GeneratorError):
            FuzzConfig(families=())

    @pytest.mark.slow
    def test_jobs_invariance_wide(self):
        config = FuzzConfig(seed=11, budget=8, replicas=2)
        reports = [run_fuzz(config, jobs=j) for j in (1, 2, 4)]
        prints = [_report_fingerprint(r) for r in reports]
        assert prints[0] == prints[1] == prints[2]
        assert all(r.ok for r in reports)

    @pytest.mark.slow
    def test_calibrated_false_positive_rate_on_clean_campaign(self):
        """The permanent ratchet: 200 honest cases, zero false alarms."""
        config = FuzzConfig(seed=2026, budget=200, replicas=2)
        report = run_fuzz(config, jobs=0)
        assert report.ok, report.format()
        families = {c.family for c in report.cases}
        assert families == set(DEFAULT_FAMILIES)

    @pytest.mark.slow
    def test_seeded_bug_shrinks_to_small_reproducer(self):
        config = FuzzConfig(
            seed=0, budget=2, families=("trap",), replicas=2,
            bug="sign-flip", shrink=1, shrink_evaluations=30,
        )
        report = run_fuzz(config)
        assert not report.ok
        assert report.shrinks and report.shrinks[0].changed
        shrunk = parse_semsim(report.shrinks[0].case.deck_text)
        assert len(shrunk.junctions) <= 4
        # and the minimised deck still fails its oracle
        verdict = run_case(
            report.shrinks[0].case, replicas=2, bug="sign-flip"
        )
        assert not verdict.ok


class TestShrinkStructural:
    """Shrinker behaviour under cheap structural predicates (no MC)."""

    def test_shrinks_trap_to_minimal_two_junction_deck(self):
        case = generate_case(SEED, TRAP_INDEX)

        def predicate(candidate):
            return len(parse_semsim(candidate.deck_text).junctions) >= 2

        result = shrink_case(case, predicate, max_evaluations=80)
        assert result.changed
        final = parse_semsim(result.case.deck_text)
        assert len(final.junctions) == 2
        assert not lint_deck(final).errors
        assert result.case.name.endswith(".shrunk")
        assert predicate(result.case)

    def test_shrink_is_deterministic(self):
        case = generate_case(SEED, TRAP_INDEX)

        def predicate(candidate):
            return len(parse_semsim(candidate.deck_text).junctions) >= 2

        first = shrink_case(case, predicate, max_evaluations=80)
        second = shrink_case(case, predicate, max_evaluations=80)
        assert first.steps == second.steps
        assert first.case.deck_text == second.case.deck_text

    def test_unshrinkable_case_is_returned_untouched(self):
        case = generate_case(SEED, SET_INDEX)
        result = shrink_case(case, lambda _: False, max_evaluations=80)
        assert not result.changed
        assert result.case == case
        assert result.evaluations > 0

    def test_logic_shrink_prunes_gates(self):
        case = generate_case(SEED, LOGIC_INDEX)

        def predicate(candidate):
            return len(candidate.netlist().gates) >= 2

        result = shrink_case(case, predicate, max_evaluations=80)
        net = result.case.netlist()
        assert len(net.gates) >= 2
        assert net.outputs
        assert not lint_logic_netlist(net).errors


class TestFuzzCli:
    def test_run_and_replay_round_trip(self, tmp_path, capsys):
        out = tmp_path / "out"
        code = main([
            "fuzz", "run", "--seed", "5", "--budget", "2",
            "--families", "logic", "--out", str(out),
        ])
        assert code == 0
        assert (out / "report.json").is_file()
        assert "2 pass" in capsys.readouterr().out

    def test_replay_missing_corpus_is_an_error(self, tmp_path, capsys):
        code = main(["fuzz", "replay", str(tmp_path / "nowhere")])
        assert code == 1


GOLDEN_ENTRIES = list(iter_corpus(GOLDEN_FUZZ))


def test_golden_fuzz_corpus_is_present():
    """The pinned reproducer corpus cannot silently disappear."""
    assert len(GOLDEN_ENTRIES) >= 8


@pytest.mark.parametrize(
    "entry", GOLDEN_ENTRIES, ids=[e.name for e in GOLDEN_ENTRIES]
)
def test_golden_fuzz_entry_replays_bit_for_bit(entry):
    _, divergences = replay(entry)
    assert divergences == [], [d.what for d in divergences]
