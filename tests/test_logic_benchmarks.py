"""Tests for the 15 paper benchmarks (structure + boolean function)."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.logic import BENCHMARKS, benchmark_by_name, build_benchmark
from repro.logic.benchmarks import (
    alu_54ls181,
    bcd_74ls47,
    decoder_2to10,
    decoder_74154,
    decoder_74ls138,
    encoder_74148,
    full_adder_bench,
    mux_74ls153,
    parity_74ls280,
)
from repro.logic.mapping import count_sets, pad_to_set_count

PAPER_JUNCTION_COUNTS = {
    "2-to-10 decoder": 76,
    "Full-Adder": 100,
    "74LS138": 168,
    "74LS153": 224,
    "s27a": 264,
    "74148": 336,
    "74154": 360,
    "74LS47": 448,
    "74LS280": 484,
    "54LS181": 944,
    "s208-1": 1344,
    "c432": 2072,
    "c1355": 4616,
    "c499": 5608,
    "c1908": 6988,
}


class TestRegistry:
    def test_all_fifteen_present_in_paper_order(self):
        assert [s.name for s in BENCHMARKS] == list(PAPER_JUNCTION_COUNTS)

    def test_published_junction_counts(self):
        for spec in BENCHMARKS:
            assert spec.junctions == PAPER_JUNCTION_COUNTS[spec.name]

    def test_unknown_name_rejected(self):
        with pytest.raises(NetlistError):
            benchmark_by_name("c6288")

    def test_bases_fit_under_targets_with_even_deficit(self):
        for spec in BENCHMARKS:
            base = count_sets(spec.builder())
            assert base <= spec.sets, spec.name
            assert (spec.sets - base) % 2 == 0, spec.name


class TestMappedSizes:
    @pytest.mark.parametrize(
        "name", ["2-to-10 decoder", "Full-Adder", "74LS138", "74154", "s27a"]
    )
    def test_mapped_junctions_match_paper_exactly(self, name):
        mapped = build_benchmark(name)
        assert mapped.n_junctions == PAPER_JUNCTION_COUNTS[name]

    def test_largest_benchmark_maps(self):
        mapped = build_benchmark("c1908")
        assert mapped.n_junctions == 6988
        assert mapped.circuit.n_islands > 3494  # devices + wires + stacks


class TestBooleanFunctions:
    def test_full_adder(self):
        net = full_adder_bench()
        for code in range(8):
            a, b, cin = bool(code & 1), bool(code & 2), bool(code & 4)
            out = net.output_values({"a": a, "b": b, "cin": cin})
            values = list(out.values())
            s, cout = values[0], values[1]
            assert s == ((a + b + cin) % 2 == 1)
            assert cout == ((a + b + cin) >= 2)

    def test_decoder_2to10_one_hot(self):
        net = decoder_2to10()
        for code in range(4):
            vec = {"a": bool(code & 1), "b": bool(code & 2)}
            out = net.output_values(vec)
            assert sum(out.values()) == 1
            assert out[net.outputs[code]]

    def test_decoder_74ls138_active_low(self):
        net = decoder_74ls138()
        for code in range(8):
            vec = {"a": bool(code & 1), "b": bool(code & 2), "c": bool(code & 4)}
            out = net.output_values(vec)
            lows = [name for name, value in out.items() if not value]
            assert lows == [net.outputs[code]]

    def test_decoder_74154_active_low(self):
        net = decoder_74154()
        for code in (0, 5, 10, 15):
            vec = {
                "a": bool(code & 1), "b": bool(code & 2),
                "c": bool(code & 4), "d": bool(code & 8),
            }
            out = net.output_values(vec)
            assert [n for n, v in out.items() if not v] == [net.outputs[code]]

    def test_mux_74ls153_selects(self):
        net = mux_74ls153()
        rng = np.random.default_rng(0)
        for _ in range(12):
            data = {f"d{u}{i}": bool(rng.integers(2)) for u in range(2)
                    for i in range(4)}
            for sel in range(4):
                vec = dict(data)
                vec["s0"] = bool(sel & 1)
                vec["s1"] = bool(sel & 2)
                out = net.output_values(vec)
                assert out[net.outputs[0]] == data[f"d0{sel}"]
                assert out[net.outputs[1]] == data[f"d1{sel}"]

    def test_priority_encoder_74148(self):
        net = encoder_74148()
        for highest in range(8):
            vec = {f"d{i}": i == highest for i in range(8)}
            # also raise a lower-priority line; it must be ignored
            if highest > 0:
                vec["d0"] = True
            out = net.output_values(vec)
            code = (out[net.outputs[0]] << 2) | (out[net.outputs[1]] << 1) | (
                out[net.outputs[2]]
            )
            assert code == highest
            assert out[net.outputs[3]]  # group select active

    def test_priority_encoder_74148_idle(self):
        net = encoder_74148()
        out = net.output_values({f"d{i}": False for i in range(8)})
        assert not out[net.outputs[3]]

    def test_parity_74ls280(self):
        net = parity_74ls280()
        rng = np.random.default_rng(1)
        for _ in range(16):
            vec = {f"i{k}": bool(rng.integers(2)) for k in range(9)}
            out = net.output_values(vec)
            even = sum(vec.values()) % 2 == 0
            assert out[net.outputs[0]] == (not even)  # XOR tree: odd parity
            assert out[net.outputs[1]] == even

    def test_bcd_7segment_digit_8_all_on(self):
        net = bcd_74ls47()
        out = net.output_values({"a": False, "b": False, "c": False, "d": True})
        assert all(out.values())  # digit 8 lights every segment

    def test_bcd_7segment_digit_1(self):
        net = bcd_74ls47()
        out = net.output_values({"a": True, "b": False, "c": False, "d": False})
        values = [out[n] for n in net.outputs]
        # digit 1: only segments b and c are lit
        assert values == [False, True, True, False, False, False, False]

    def test_alu_adds(self):
        net = alu_54ls181()
        rng = np.random.default_rng(2)
        for _ in range(12):
            a_val = int(rng.integers(16))
            b_val = int(rng.integers(16))
            vec = {f"a{i}": bool(a_val >> i & 1) for i in range(4)}
            vec.update({f"b{i}": bool(b_val >> i & 1) for i in range(4)})
            vec.update({"cin": False, "s0": False, "m": False})
            out = net.output_values(vec)
            total = sum(out[net.outputs[i]] << i for i in range(4))
            carry = out[net.outputs[4]]
            assert total + (carry << 4) == a_val + b_val

    def test_alu_logic_mode_and(self):
        net = alu_54ls181()
        vec = {f"a{i}": True for i in range(4)}
        vec.update({f"b{i}": bool(i % 2) for i in range(4)})
        vec.update({"cin": False, "s0": False, "m": True})
        out = net.output_values(vec)
        for i in range(4):
            assert out[net.outputs[i]] == (i % 2 == 1)

    def test_error_corrector_fixes_single_bit_flips(self):
        from repro.logic.benchmarks import _sec_netlist

        net = _sec_netlist("sec_test", 8, 4)
        rng = np.random.default_rng(3)
        data = [bool(rng.integers(2)) for _ in range(8)]
        # compute matching check bits with the same position groups
        from repro.logic.benchmarks import _hamming_positions

        groups = _hamming_positions(8, 4)
        checks = [
            bool(np.bitwise_xor.reduce([data[i] for i in group]))
            if group else False
            for group in groups
        ]
        base = {f"d{i}": data[i] for i in range(8)}
        base.update({f"p{c}": checks[c] for c in range(4)})
        # clean word decodes to itself
        out = net.output_values(base)
        assert [out[n] for n in net.outputs] == data
        # any single data-bit flip is corrected
        for flip in range(8):
            vec = dict(base)
            vec[f"d{flip}"] = not vec[f"d{flip}"]
            out = net.output_values(vec)
            assert [out[n] for n in net.outputs] == data, f"flip d{flip}"
