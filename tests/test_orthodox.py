"""Tests for orthodox-theory sequential tunneling rates (Eq. 1)."""

import numpy as np
import pytest

from repro.constants import E_CHARGE, K_B
from repro.errors import PhysicsError
from repro.physics.orthodox import (
    orthodox_rate,
    orthodox_rates_both,
    threshold_voltage,
)


class TestOrthodoxRate:
    def test_favourable_zero_temperature_is_linear(self):
        dw = -1e-21
        rate = orthodox_rate(dw, 1e6, 0.0)
        assert rate == pytest.approx(-dw / (E_CHARGE**2 * 1e6))

    def test_unfavourable_zero_temperature_is_zero(self):
        assert orthodox_rate(+1e-21, 1e6, 0.0) == 0.0

    def test_zero_energy_rate_is_kt_over_e2r(self):
        rate = orthodox_rate(0.0, 1e6, 4.2)
        assert rate == pytest.approx(K_B * 4.2 / (E_CHARGE**2 * 1e6))

    def test_detailed_balance(self):
        dw, t = 5e-23, 1.0
        forward = orthodox_rate(-dw, 1e6, t)
        backward = orthodox_rate(+dw, 1e6, t)
        assert backward / forward == pytest.approx(np.exp(-dw / (K_B * t)))

    def test_rate_scales_inversely_with_resistance(self):
        dw = -1e-21
        assert orthodox_rate(dw, 1e6, 1.0) == pytest.approx(
            10 * orthodox_rate(dw, 1e7, 1.0)
        )

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(PhysicsError):
            orthodox_rate(-1e-21, 0.0, 1.0)

    def test_deep_blockade_rate_is_exponentially_small(self):
        kt = K_B * 1.0
        rate_shallow = orthodox_rate(5 * kt, 1e6, 1.0)
        rate_deep = orthodox_rate(10 * kt, 1e6, 1.0)
        assert rate_deep < rate_shallow * 1e-1
        assert rate_deep > 0.0


class TestVectorised:
    def test_matches_scalar(self):
        dw_fw = np.array([-1e-21, 2e-22])
        dw_bw = np.array([+1e-21, -2e-22])
        resistances = np.array([1e6, 2e6])
        fw, bw = orthodox_rates_both(dw_fw, dw_bw, resistances, 1.5)
        for i in range(2):
            assert fw[i] == pytest.approx(
                orthodox_rate(dw_fw[i], resistances[i], 1.5)
            )
            assert bw[i] == pytest.approx(
                orthodox_rate(dw_bw[i], resistances[i], 1.5)
            )


class TestThresholdVoltage:
    def test_fig1b_device(self):
        # C_sigma = 5 aF gives e/C = 32 mV, where Fig. 1b's blockade ends
        assert threshold_voltage(5e-18) == pytest.approx(0.03204, rel=1e-3)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(PhysicsError):
            threshold_voltage(0.0)
