"""Smoke checks on the shipped examples and documentation files."""

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


class TestExamples:
    def test_at_least_five_examples_ship(self):
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_parses_and_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_is_runnable_script(self, path):
        source = path.read_text()
        assert "__main__" in source, f"{path.name} is not runnable as a script"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_imports_resolve(self, path):
        """Every module an example imports must exist."""
        import importlib

        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    module = importlib.import_module(node.module)
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{path.name}: {node.module}.{alias.name} missing"
                        )


class TestDocumentationFiles:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
    )
    def test_doc_exists_and_is_substantial(self, name):
        path = REPO / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 2000, f"{name} looks stubbed"

    def test_design_covers_every_figure(self):
        text = (REPO / "DESIGN.md").read_text()
        for artefact in ("Fig. 1b", "Fig. 1c", "Fig. 5", "Fig. 6", "Fig. 7"):
            assert artefact in text

    def test_experiments_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artefact in ("Fig. 1b", "Fig. 1c", "Fig. 5", "Fig. 6", "Fig. 7"):
            assert artefact in text

    def test_every_bench_is_indexed_in_design(self):
        text = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("test_*.py")):
            assert bench.name in text, f"{bench.name} not indexed in DESIGN.md"
