"""Tests for the BCS gap function and reduced density of states."""

import numpy as np
import pytest

from repro.constants import MEV
from repro.errors import PhysicsError
from repro.physics.bcs import bcs_gap, reduced_dos

DELTA0 = 0.2 * MEV
TC = 1.2


class TestGap:
    def test_zero_temperature_returns_delta0(self):
        assert bcs_gap(0.0, DELTA0, TC) == DELTA0

    def test_above_tc_gap_closes(self):
        assert bcs_gap(TC, DELTA0, TC) == 0.0
        assert bcs_gap(2 * TC, DELTA0, TC) == 0.0

    def test_low_temperature_gap_nearly_full(self):
        # Delta(T) is exponentially flat below ~0.3 Tc
        assert bcs_gap(0.1 * TC, DELTA0, TC) == pytest.approx(DELTA0, rel=1e-3)

    def test_gap_decreases_monotonically(self):
        temps = np.linspace(0.05, 0.99, 20) * TC
        gaps = [bcs_gap(t, DELTA0, TC) for t in temps]
        assert all(g1 >= g2 for g1, g2 in zip(gaps, gaps[1:]))

    def test_gap_near_tc_is_small(self):
        assert bcs_gap(0.98 * TC, DELTA0, TC) < 0.3 * DELTA0

    def test_selfconsistent_close_to_tanh_form(self):
        # the closed form is a few-percent approximation of the full
        # solution through the middle of the range
        for t in (0.3, 0.5, 0.7, 0.9):
            exact = bcs_gap(t * TC, DELTA0, TC, method="selfconsistent")
            approx = bcs_gap(t * TC, DELTA0, TC, method="tanh")
            assert approx == pytest.approx(exact, rel=0.08)

    def test_fig5_device_gap(self):
        # Fig. 5's SSET: Delta(0.52 K) = 0.21 meV was measured; with
        # Tc ~ 1.4 K the gap at 0.52 K is still close to Delta(0)
        gap = bcs_gap(0.52, 0.21 * MEV, 1.4)
        assert gap > 0.9 * 0.21 * MEV

    def test_invalid_method_rejected(self):
        with pytest.raises(PhysicsError):
            bcs_gap(0.5, DELTA0, TC, method="magic")

    def test_negative_temperature_rejected(self):
        with pytest.raises(PhysicsError):
            bcs_gap(-0.1, DELTA0, TC)

    def test_nonpositive_gap_rejected(self):
        with pytest.raises(PhysicsError):
            bcs_gap(0.5, 0.0, TC)


class TestReducedDos:
    def test_inside_gap_is_zero(self):
        assert reduced_dos(0.5 * DELTA0, DELTA0) == 0.0
        assert reduced_dos(-0.5 * DELTA0, DELTA0) == 0.0

    def test_diverges_at_gap_edge(self):
        just_outside = DELTA0 * (1.0 + 1e-6)
        assert reduced_dos(just_outside, DELTA0) > 100.0

    def test_far_outside_gap_approaches_one(self):
        assert reduced_dos(50 * DELTA0, DELTA0) == pytest.approx(1.0, rel=1e-3)

    def test_even_in_energy(self):
        e = 1.7 * DELTA0
        assert reduced_dos(e, DELTA0) == reduced_dos(-e, DELTA0)

    def test_normal_state_is_unity(self):
        energies = np.linspace(-1e-22, 1e-22, 7)
        assert np.all(reduced_dos(energies, 0.0) == 1.0)

    def test_exact_value(self):
        # N(2 Delta)/N(0) = 2/sqrt(3)
        assert reduced_dos(2 * DELTA0, DELTA0) == pytest.approx(
            2.0 / np.sqrt(3.0)
        )

    def test_negative_gap_rejected(self):
        with pytest.raises(PhysicsError):
            reduced_dos(1e-22, -1e-23)
