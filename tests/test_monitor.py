"""Tests for ``repro.monitor``: live monitoring (strictly out-of-band),
the persistent run ledger, and ``repro report`` regression verdicts."""

import io
import json

import numpy as np
import pytest

from repro import SimulationConfig, build_set, ensemble_iv, sweep_iv
from repro.cli import main
from repro.monitor import (
    Ledger,
    RunMonitor,
    build_report,
    fingerprint_circuit,
    fingerprint_workload,
    ledger_session,
    monitor_session,
    read_ledger,
    run_scope,
)
from repro.monitor.render import ProgressRenderer, format_snapshot
from repro.telemetry.exporters import openmetrics_exposition
from repro.telemetry.registry import TelemetryRegistry

CONFIG = SimulationConfig(
    temperature=5.0, solver="adaptive", seed=7, event_hash=True
)
VOLTS = np.linspace(-0.04, 0.04, 6)
JUMPS = 300


def _hashed_sweep(jobs):
    circuit = build_set()
    return sweep_iv(
        circuit, VOLTS, CONFIG, jumps_per_point=JUMPS,
        chunks=4, jobs=jobs,
    )


# ----------------------------------------------------------------------
# the out-of-band contract: monitoring never changes results
# ----------------------------------------------------------------------

class TestMonitoringInvariance:
    def test_results_and_hash_identical_with_monitoring(self):
        baseline = _hashed_sweep(jobs=1)
        assert baseline.event_hash is not None
        for jobs in (1, 2, 4):
            out = io.StringIO()
            with monitor_session(out=out, interval=0.1):
                monitored = _hashed_sweep(jobs=jobs)
            assert np.array_equal(baseline.currents, monitored.currents)
            assert monitored.event_hash == baseline.event_hash
            assert monitored.stats.as_dict() == baseline.stats.as_dict()

    def test_monitor_batch_lifecycle_counts(self):
        mon = RunMonitor(out=io.StringIO())
        assert mon.begin_batch(4, resumed=1) is True
        # nested batches are suppressed (and balanced by end_batch)
        assert mon.begin_batch(2) is False
        mon.end_batch()
        mon.shard_started(1, attempt=1)
        mon.shard_started(2, attempt=1)
        mon.shard_finished(1)
        mon.shard_retried(2)
        snap = mon.snapshot()
        assert snap["total"] == 4
        assert snap["done"] == 2  # 1 resumed + 1 finished
        assert snap["resumed"] == 1
        assert snap["retried"] == 1
        assert snap["in_flight"] == 0
        mon.end_batch()
        mon.close()

    def test_stalled_shard_detection(self):
        mon = RunMonitor(out=io.StringIO(), stall_after=0.0)
        mon.begin_batch(2)
        mon.shard_started(0, attempt=1)
        snap = mon.snapshot()
        assert [shard for shard, _age in snap["stalled"]] == [0]
        assert "stalled" in format_snapshot(snap)
        mon.end_batch()
        mon.close()


# ----------------------------------------------------------------------
# the run ledger
# ----------------------------------------------------------------------

class TestLedger:
    def test_sweep_appends_one_schema_complete_record(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with ledger_session(path):
            curve = _hashed_sweep(jobs=1)
        records = read_ledger(path)
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == 1
        assert record["kind"] == "sweep_iv"
        assert record["solver"] == "adaptive"
        assert record["jobs"] == 1
        assert record["chunks"] == 4
        assert record["points"] == len(VOLTS)
        assert record["events"] == curve.stats.events
        assert record["events_per_second"] > 0.0
        assert record["event_hash"] == curve.event_hash
        assert record["counters"] == {
            "resume_hits": 0, "shards_retried": 0, "pool_rebuilds": 0,
            "cell_hits": 0, "cells_computed": 0,
        }
        assert record["run_id"] and record["fingerprint"]
        assert record["code_version"].startswith("1.")

    def test_nested_invocations_yield_single_record(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        circuit = build_set()
        with ledger_session(path):
            ensemble_iv(
                circuit, VOLTS, replicas=2, config=CONFIG,
                jumps_per_point=JUMPS, jobs=1,
            )
        records = read_ledger(path)
        # the two inner sweep_iv replicas must not append their own rows
        assert [r["kind"] for r in records] == ["ensemble_iv"]
        assert records[0]["replicas"] == 2

    def test_run_scope_is_noop_without_ledger(self):
        with run_scope("sweep_iv") as recorder:
            assert recorder is None

    def test_read_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        ledger.append({"schema": 1, "run_id": "a", "fingerprint": "f1"})
        ledger.append({"schema": 1, "run_id": "b", "fingerprint": "f2"})
        # simulate a crash mid-append: a torn, unterminated final line
        with open(path, "a") as handle:
            handle.write('{"schema": 1, "run_id": "c", "fing')
        records = read_ledger(path)
        assert [r["run_id"] for r in records] == ["a", "b"]

    def test_read_missing_ledger_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == []

    def test_fingerprint_workload_identity(self):
        circuit = build_set()
        base = fingerprint_workload(
            circuit, CONFIG, kind="sweep_iv", values=VOLTS,
            jumps_per_point=JUMPS,
        )
        # execution knobs (seed, solver) don't change the workload...
        reseeded = fingerprint_workload(
            circuit, CONFIG.replace(seed=99), kind="sweep_iv",
            values=VOLTS, jumps_per_point=JUMPS,
        )
        assert reseeded == base
        # ...but the physics and the sweep shape do
        hotter = fingerprint_workload(
            circuit, CONFIG.replace(temperature=10.0), kind="sweep_iv",
            values=VOLTS, jumps_per_point=JUMPS,
        )
        assert hotter != base
        shorter = fingerprint_workload(
            circuit, CONFIG, kind="sweep_iv", values=VOLTS[:-1],
            jumps_per_point=JUMPS,
        )
        assert shorter != base
        assert fingerprint_circuit(circuit) == fingerprint_circuit(build_set())

    def test_fingerprint_extra_parts_extend_identity(self):
        circuit = build_set()
        base = fingerprint_workload(
            circuit, CONFIG, kind="campaign", jumps_per_point=JUMPS,
        )
        # an empty extra leaves historical fingerprints unchanged
        assert base == fingerprint_workload(
            circuit, CONFIG, kind="campaign", jumps_per_point=JUMPS,
            extra=(),
        )
        extended = fingerprint_workload(
            circuit, CONFIG, kind="campaign", jumps_per_point=JUMPS,
            extra=("solver=adaptive",),
        )
        assert extended != base


# ----------------------------------------------------------------------
# ledger robustness: concurrent appends, no-$HOME fallback
# ----------------------------------------------------------------------

def _hammer_ledger(path, writer, n):
    ledger = Ledger(path)
    for i in range(n):
        # padding widens the window a buffered writer would tear in
        ledger.append({"writer": writer, "i": i, "pad": "x" * 512})


class TestLedgerRobustness:
    def test_concurrent_appends_interleave_whole_lines(self, tmp_path):
        import multiprocessing

        path = tmp_path / "ledger.jsonl"
        writers, per_writer = 4, 40
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer_ledger, args=(str(path), w, per_writer))
            for w in range(writers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60.0)
            assert proc.exitcode == 0
        # every line must parse — concurrent appends may interleave
        # *lines* but never bytes within a line
        lines = path.read_text().splitlines()
        assert len(lines) == writers * per_writer
        records = [json.loads(line) for line in lines]
        for w in range(writers):
            seen = [r["i"] for r in records if r["writer"] == w]
            assert sorted(seen) == list(range(per_writer))

    def test_default_paths_fall_back_without_home(self, monkeypatch, tmp_path):
        from pathlib import Path as _Path

        from repro.campaign.store import default_campaign_root
        from repro.monitor.ledger import default_ledger_path, repro_cache_dir

        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CAMPAIGN_DIR", raising=False)
        monkeypatch.delenv("HOME", raising=False)

        def _no_home():
            raise RuntimeError("Could not determine home directory.")

        monkeypatch.setattr(_Path, "home", staticmethod(_no_home))
        assert repro_cache_dir() == _Path(".repro")
        assert default_ledger_path() == _Path(".repro") / "ledger.jsonl"
        # the campaign store shares the same resolution (satellite 2)
        assert default_campaign_root() == _Path(".repro") / "campaigns"
        # a degenerate root home gets the same treatment
        monkeypatch.setattr(_Path, "home", staticmethod(lambda: _Path("/")))
        assert repro_cache_dir() == _Path(".repro")
        # ...while a usable home keeps the historical location
        monkeypatch.setattr(
            _Path, "home", staticmethod(lambda: tmp_path / "user")
        )
        assert repro_cache_dir() == tmp_path / "user" / ".cache" / "repro"
        # env overrides beat everything, even with no home
        monkeypatch.setattr(_Path, "home", staticmethod(_no_home))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert repro_cache_dir() == tmp_path / "cache"
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "l.jsonl"))
        assert default_ledger_path() == tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "camp"))
        assert default_campaign_root() == tmp_path / "camp"


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------

def _record(run_id, ts, eps, fingerprint="f0", kind="sweep_iv",
            solver="adaptive"):
    return {
        "schema": 1, "run_id": run_id, "ts": ts, "kind": kind,
        "label": "synthetic", "fingerprint": fingerprint, "solver": solver,
        "jobs": 1, "events": int(eps * 2), "events_per_second": eps,
        "wall_seconds": 2.0, "code_version": "1.0.0",
        "counters": {"resume_hits": 0, "shards_retried": 0,
                     "pool_rebuilds": 0},
        "event_hash": None,
    }


class TestReport:
    def test_synthetic_slowdown_is_flagged(self):
        records = [
            _record("a", 1.0, 1000.0),
            _record("b", 2.0, 980.0),
            _record("c", 3.0, 500.0),  # 50% below the median of (a, b)
        ]
        report = build_report(records, threshold=0.2)
        assert report.exit_code == 1
        rows = report.trajectories[0].rows
        assert [r.verdict for r in rows] == ["baseline", "ok", "REGRESSED"]
        assert "REGRESSED" in report.format()

    def test_steady_and_improved_runs_pass(self):
        records = [
            _record("a", 1.0, 1000.0),
            _record("b", 2.0, 950.0),
            _record("c", 3.0, 1500.0),
        ]
        report = build_report(records, threshold=0.2)
        assert report.exit_code == 0
        assert report.trajectories[0].rows[-1].verdict == "improved"

    def test_workloads_group_by_fingerprint_and_solver(self):
        records = [
            _record("a", 1.0, 1000.0, solver="adaptive"),
            _record("b", 2.0, 100.0, solver="nonadaptive"),
        ]
        report = build_report(records, threshold=0.2)
        # different solvers are different trajectories: no false verdict
        assert len(report.trajectories) == 2
        assert report.exit_code == 0

    def test_openmetrics_snapshot(self):
        report = build_report([_record("a", 1.0, 1000.0)])
        text = report.as_openmetrics()
        assert 'repro_run_events_per_second{fingerprint="f0"' in text
        assert text.endswith("# EOF\n")

    def test_report_cli_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        for rec in (
            _record("a", 1.0, 1000.0),
            _record("b", 2.0, 400.0),
        ):
            ledger.append(rec)
        # without --check the report is informational (exit 0)
        assert main(["report", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "1,000" in out
        # --check gates: regression => exit 1
        assert main(["report", "--ledger", str(path), "--check"]) == 1
        capsys.readouterr()
        # JSON output round-trips
        assert main(["report", "--ledger", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] is True
        assert len(payload["workloads"][0]["runs"]) == 2

    def test_run_cli_populates_ledger(self, tmp_path, deck_file, capsys):
        path = tmp_path / "cli-ledger.jsonl"
        assert main([
            "run", str(deck_file), "--ledger", str(path), "--progress",
        ]) == 0
        capsys.readouterr()
        records = read_ledger(path)
        assert len(records) == 1
        assert records[0]["kind"] == "deck.run"
        assert records[0]["events_per_second"] > 0.0
        # --no-ledger suppresses recording
        assert main(["run", str(deck_file), "--no-ledger"]) == 0
        capsys.readouterr()
        assert len(read_ledger(path)) == 1


@pytest.fixture
def deck_file(tmp_path):
    deck = tmp_path / "probe.deck"
    deck.write_text(
        "junc 1 1 4 1e-6 1e-18\n"
        "junc 2 2 4 1e-6 1e-18\n"
        "cap 3 4 3e-18\n"
        "vdc 1 0.02\nvdc 2 -0.02\nvdc 3 0.0\n"
        "symm 1\n"
        "num j 2\nnum ext 3\nnum nodes 4\n"
        "temp 5\n"
        "record 1 2 2\n"
        "jumps 400 1\n"
        "sweep 2 0.02 0.01\n"
    )
    return deck


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

class TestRendering:
    def test_format_snapshot_core_fields(self):
        line = format_snapshot({
            "total": 8, "done": 3, "in_flight": 2, "retried": 1,
            "resumed": 0, "events": 12345, "events_per_second": 4567.0,
            "eta_seconds": 12.0, "elapsed_seconds": 9.0, "stalled": [],
        })
        assert "3/8 shards" in line
        assert "2 in flight" in line
        assert "12,345 events" in line
        assert "ETA 12s" in line

    def test_plain_renderer_emits_lines_not_control_codes(self):
        out = io.StringIO()
        renderer = ProgressRenderer(out, plain_period=0.0)
        snap = {"total": 2, "done": 1, "in_flight": 1, "retried": 0,
                "resumed": 0, "events": 10, "events_per_second": 5.0,
                "eta_seconds": None, "elapsed_seconds": 2.0, "stalled": []}
        renderer.update(snap, now=1.0)
        renderer.update(snap, now=2.0)  # unchanged: no duplicate line
        renderer.finish(dict(snap, done=2, in_flight=0))
        text = out.getvalue()
        assert "\r" not in text and "\x1b" not in text
        assert text.count("1/2 shards") == 1
        assert "2/2 shards" in text

    def test_openmetrics_exposition_from_registry(self):
        reg = TelemetryRegistry()
        reg.counter("solver.events").add(41)
        reg.gauge("parallel.jobs").set(4.0)
        reg.histogram("solver.dt").observe(1.0)
        reg.histogram("solver.dt").observe(3.0)
        text = openmetrics_exposition(reg.metrics())
        assert "repro_solver_events_total 41" in text
        assert "repro_parallel_jobs 4" in text
        assert "repro_solver_dt_count 2" in text
        assert "repro_solver_dt_std 1" in text
        assert text.endswith("# EOF\n")
