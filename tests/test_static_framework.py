"""Tests for the unified static-analysis framework (``repro check``).

Covers the shared core: waiver forms (unified, legacy per-code, legacy
blanket), the W000 unused-waiver rule, JSON/SARIF emitters, baseline
round-trips, the code registry and the CLI — plus the repo-clean gate
that keeps ``src/repro`` free of findings from every rule family.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.static import (
    STATIC_CODES,
    check_paths,
    code_table,
    load_baseline,
    report_as_json,
    report_as_sarif,
    write_baseline,
)

REPO = Path(__file__).parent.parent

HEADER = "from __future__ import annotations\nimport numpy as np\n"
KERNEL_HEADER = HEADER + "from repro.static import array_contract, hot\n"

#: a kernel with one provable ARR001: (3,) + (4,)
BROKEN_KERNEL = (
    '@array_contract(q="(3,) float64", out="(3,) float64")\n'
    "def f(q):\n"
    "    return q + np.zeros(4)\n"
)


def run_check(tmp_path, source, name="mod.py", **kwargs):
    path = tmp_path / name
    path.write_text(source)
    return check_paths([path], relative_to=tmp_path, **kwargs)


def codes_of(tmp_path, source, name="mod.py", **kwargs):
    return [f.code for f in run_check(tmp_path, source, name, **kwargs).findings]


class TestWaivers:
    def test_unified_waiver_suppresses(self, tmp_path):
        src = KERNEL_HEADER + BROKEN_KERNEL.replace(
            "return q + np.zeros(4)",
            "return q + np.zeros(4)  # repro: allow[ARR001] sized at runtime",
        )
        assert codes_of(tmp_path, src) == []

    def test_comment_block_above_covers_next_statement(self, tmp_path):
        src = KERNEL_HEADER + BROKEN_KERNEL.replace(
            "    return q + np.zeros(4)",
            "    # repro: allow[ARR001] trailing pad is intentional\n"
            "    return q + np.zeros(4)",
        )
        assert codes_of(tmp_path, src) == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        src = KERNEL_HEADER + BROKEN_KERNEL.replace(
            "return q + np.zeros(4)",
            "return q + np.zeros(4)  # repro: allow[ARR002] wrong code",
        )
        codes = codes_of(tmp_path, src)
        assert "ARR001" in codes
        assert "W000" in codes  # the mistargeted waiver is itself stale

    def test_legacy_dsan_form_still_honoured(self, tmp_path):
        src = HEADER + (
            "def f():\n"
            "    return np.random.default_rng()"
            "  # dsan: allow[DET001] test fixture\n"
        )
        assert codes_of(tmp_path, src) == []

    def test_legacy_blanket_form_covers_repro_codes_only(self, tmp_path):
        src = (
            "import numpy as np  # repro-lint: allow\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        codes = codes_of(tmp_path, src)
        # REPRO004 (missing future import, reported on line 1) is
        # blanket-waived; the DET001 on line 3 is not
        assert codes == ["DET001"]

    def test_unused_waiver_reported_as_w000(self, tmp_path):
        src = HEADER + "X = 1  # repro: allow[ARR001] nothing here\n"
        assert codes_of(tmp_path, src) == ["W000"]

    def test_w000_suppressed_on_partial_runs(self, tmp_path):
        src = HEADER + "X = 1  # repro: allow[ARR001] nothing here\n"
        assert codes_of(tmp_path, src, passes=("det",)) == []
        assert codes_of(tmp_path, src, warn_unused_waivers=False) == []


class TestRegistry:
    def test_all_families_registered(self):
        for code in ("REPRO001", "DET001", "ARR001", "PERF001", "W000"):
            assert code in STATIC_CODES

    def test_code_table_lists_every_domain(self):
        table = code_table()
        for domain in ("repository", "determinism", "array", "performance"):
            assert f"[{domain}]" in table


class TestEmitters:
    def test_json_payload(self, tmp_path):
        report = run_check(tmp_path, KERNEL_HEADER + BROKEN_KERNEL)
        payload = json.loads(report_as_json(report))
        assert payload["files_scanned"] == 1
        assert payload["exit_code"] == 2
        assert [f["code"] for f in payload["findings"]] == ["ARR001"]

    def test_sarif_payload(self, tmp_path):
        report = run_check(tmp_path, KERNEL_HEADER + BROKEN_KERNEL)
        sarif = json.loads(report_as_sarif(report))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "ARR001" in rules
        result = run["results"][0]
        assert result["ruleId"] == "ARR001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "mod.py"
        assert location["region"]["startLine"] > 1


class TestBaseline:
    def test_round_trip_moves_findings_to_baselined(self, tmp_path):
        report = run_check(tmp_path, KERNEL_HEADER + BROKEN_KERNEL)
        assert report.exit_code == 2
        baseline_file = tmp_path / "baseline.json"
        write_baseline(report, baseline_file)

        baseline = load_baseline(baseline_file)
        rerun = run_check(
            tmp_path, KERNEL_HEADER + BROKEN_KERNEL, baseline=baseline
        )
        assert rerun.findings == ()
        assert [f.code for f in rerun.baselined] == ["ARR001"]
        assert rerun.exit_code == 0

    def test_unknown_fingerprints_do_not_hide_new_findings(self, tmp_path):
        baseline = frozenset({"other.py:ARR001:10"})
        report = run_check(
            tmp_path, KERNEL_HEADER + BROKEN_KERNEL, baseline=baseline
        )
        assert [f.code for f in report.findings] == ["ARR001"]


class TestSelect:
    def test_select_filters_by_prefix(self, tmp_path):
        src = (
            "import numpy as np\n"  # no future import -> REPRO004
            "def f():\n"
            "    return np.random.default_rng()\n"  # DET001
        )
        assert codes_of(tmp_path, src, select=("DET",)) == ["DET001"]
        assert codes_of(tmp_path, src, select=("REPRO",)) == ["REPRO004"]


class TestCli:
    def test_check_default_root_clean(self, capsys):
        assert cli_main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_reports_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(KERNEL_HEADER + BROKEN_KERNEL)
        assert cli_main(["check", str(bad)]) == 2
        assert "ARR001" in capsys.readouterr().out

    def test_check_codes_table(self, capsys):
        assert cli_main(["check", "--codes"]) == 0
        out = capsys.readouterr().out
        assert "ARR001" in out and "PERF001" in out and "DET001" in out

    def test_check_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(KERNEL_HEADER + BROKEN_KERNEL)
        assert cli_main(["check", "--format", "sarif", str(bad)]) == 2
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["runs"][0]["results"][0]["ruleId"] == "ARR001"

    def test_check_baseline_flow(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(KERNEL_HEADER + BROKEN_KERNEL)
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            ["check", "--write-baseline", str(baseline), str(bad)]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            ["check", "--baseline", str(baseline), str(bad)]
        ) == 0
        assert "baselined" in capsys.readouterr().out


class TestRepoIsClean:
    """The tree must stay clean under the *full* rule set — the same
    gate CI enforces with one blocking ``repro check`` step."""

    def test_src_repro_passes_every_family(self):
        report = check_paths([REPO / "src" / "repro"])
        assert report.exit_code == 0, report.format()
        assert report.files_scanned > 50

    def test_kernels_carry_contracts(self):
        # the ARR pass must actually have kernels to chew on — guard
        # against the annotations silently disappearing
        from repro.circuit.electrostatics import Electrostatics
        from repro.physics.orthodox import orthodox_rates_both

        contract = orthodox_rates_both.__array_contract__
        assert contract.params["resistances"].shape == ("n_junctions",)
        assert orthodox_rates_both.__hot__
        assert Electrostatics.island_charges.__array_contract__.out.dtype \
            == "float64"
