"""Tests for circuit construction and freezing."""

import pytest

from repro.circuit import CircuitBuilder, build_junction_array, build_set
from repro.errors import CircuitError


class TestCircuitBuilder:
    def test_set_structure(self, set_circuit):
        assert set_circuit.n_islands == 1
        assert set_circuit.n_junctions == 2
        assert set_circuit.n_external == 4  # ground + 3 sources

    def test_ground_is_external_slot_zero(self, set_circuit):
        assert set_circuit.external_labels[0] == "0"

    def test_duplicate_component_name_rejected(self):
        b = CircuitBuilder()
        b.add_junction("j1", "a", "b", 1e6, 1e-18)
        with pytest.raises(CircuitError):
            b.add_junction("j1", "b", "c", 1e6, 1e-18)

    def test_double_driving_a_node_rejected(self):
        b = CircuitBuilder()
        b.add_junction("j1", "a", "b", 1e6, 1e-18)
        b.add_voltage_source("v1", "a", 0.1)
        with pytest.raises(CircuitError):
            b.add_voltage_source("v2", "a", 0.2)

    def test_source_on_untouched_node_rejected(self):
        b = CircuitBuilder()
        b.add_junction("j1", "a", "b", 1e6, 1e-18)
        b.add_voltage_source("v1", "nowhere", 0.1)
        with pytest.raises(CircuitError):
            b.build()

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            CircuitBuilder().build()

    def test_background_charge_on_driven_node_rejected(self):
        b = CircuitBuilder()
        b.add_junction("j1", "a", "b", 1e6, 1e-18)
        b.add_voltage_source("v1", "a", 0.1)
        b.add_background_charge("a", 0.5)
        with pytest.raises(CircuitError):
            b.build()

    def test_background_charge_on_unknown_node_rejected(self):
        b = CircuitBuilder()
        b.add_junction("j1", "a", "b", 1e6, 1e-18)
        b.add_background_charge("ghost", 0.5)
        with pytest.raises(CircuitError):
            b.build()

    def test_chaining_returns_builder(self):
        b = CircuitBuilder()
        assert b.add_junction("j1", "a", "b", 1e6, 1e-18) is b


class TestBuildSet:
    def test_defaults_match_fig1b(self):
        c = build_set()
        j1 = c.junctions[0]
        assert j1.resistance == 1e6
        assert j1.capacitance == 1e-18
        assert c.capacitors[0].capacitance == 3e-18

    def test_background_charge_applied(self):
        c = build_set(background_charge_e=0.65)
        assert c.background_charges[0].charge_e == 0.65

    def test_superconducting_variant(self, sset_circuit):
        assert sset_circuit.is_superconducting


class TestBuildJunctionArray:
    def test_interior_nodes_are_islands(self):
        c = build_junction_array(4)
        assert c.n_islands == 3
        assert c.n_junctions == 4

    def test_single_junction_has_no_islands_rejected(self):
        # one junction between two driven leads leaves no islands
        with pytest.raises(CircuitError):
            from repro.circuit import Electrostatics

            Electrostatics(build_junction_array(1))

    def test_rejects_zero_junctions(self):
        with pytest.raises(CircuitError):
            build_junction_array(0)

    def test_gate_capacitors_optional(self):
        bare = build_junction_array(3)
        gated = build_junction_array(3, gate_capacitance=1e-18)
        assert len(bare.capacitors) == 0
        assert len(gated.capacitors) == 2
