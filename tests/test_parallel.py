"""Tests for ``repro.parallel``: deterministic seeding, shard/merge
sweeps, ensemble runs, and the sweep-layer bugfixes that rode along
(per-row seeds, ``FrozenCircuitError`` narrowing, warm-up validation).
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    FrozenCircuitError,
    MonteCarloEngine,
    SimulationConfig,
    build_set,
    ensemble_iv,
    sweep_iv,
    sweep_map,
)
from repro.errors import SimulationError
from repro.parallel import as_seed_sequence, execute_shards, resolve_jobs, spawn_seeds
from repro.telemetry import registry as telemetry
from repro.telemetry.registry import TelemetryRegistry

CONFIG = SimulationConfig(temperature=5.0, solver="adaptive", seed=7)
VOLTS = np.linspace(-0.04, 0.04, 6)
GATES = np.linspace(0.0, 0.01, 3)


# ----------------------------------------------------------------------
# seed spawning
# ----------------------------------------------------------------------

class TestSeeds:
    def test_spawn_is_deterministic_and_stateless(self):
        a = spawn_seeds(7, 4)
        b = spawn_seeds(7, 4)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        assert [s.entropy for s in a] == [s.entropy for s in b]

    def test_spawn_matches_numpy_spawn_on_fresh_root(self):
        ours = spawn_seeds(13, 3)
        numpys = np.random.SeedSequence(13).spawn(3)
        for mine, theirs in zip(ours, numpys):
            assert mine.entropy == theirs.entropy
            assert mine.spawn_key == theirs.spawn_key

    def test_spawn_does_not_mutate_a_passed_sequence(self):
        root = np.random.SeedSequence(5)
        spawn_seeds(root, 3)
        assert root.n_children_spawned == 0

    def test_children_draw_distinct_streams(self):
        a, b = spawn_seeds(0, 2)
        ra = np.random.default_rng(a).random(8)
        rb = np.random.default_rng(b).random(8)
        assert not np.array_equal(ra, rb)

    def test_bad_seeds_rejected(self):
        with pytest.raises(SimulationError):
            as_seed_sequence(-1)
        with pytest.raises(SimulationError):
            as_seed_sequence("zero")
        with pytest.raises(SimulationError):
            spawn_seeds(0, -1)

    def test_config_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        cfg = CONFIG.replace(seed=seq)
        assert cfg.seed_sequence() is seq
        # int seed s and SeedSequence(s) drive bit-identical engines
        circuit = build_set()
        i_int = MonteCarloEngine(circuit, CONFIG).measure_current([0], 2000)
        i_seq = MonteCarloEngine(
            circuit, CONFIG.replace(seed=np.random.SeedSequence(7))
        ).measure_current([0], 2000)
        assert i_int == i_seq

    def test_config_rejects_bad_seed(self):
        with pytest.raises(SimulationError):
            SimulationConfig(seed=-2)
        with pytest.raises(SimulationError):
            SimulationConfig(seed=1.5)


# ----------------------------------------------------------------------
# the generic pool
# ----------------------------------------------------------------------

def _square(x):
    return x * x


def _touch_metrics(x):
    reg = telemetry.ACTIVE
    if reg is not None:
        reg.counter("toy.calls").add()
        reg.counter("toy.sum").add(x)
        reg.histogram("toy.x").observe(float(x))
    return x


def _boom(x):
    raise SimulationError(f"shard {x} failed")


class TestExecuteShards:
    def test_results_in_shard_order(self):
        assert execute_shards(_square, [3, 1, 2], jobs=1) == [9, 1, 4]
        assert execute_shards(_square, list(range(8)), jobs=4) == [
            x * x for x in range(8)
        ]

    def test_shard_errors_propagate(self):
        with pytest.raises(SimulationError, match="shard 1 failed"):
            execute_shards(_boom, [1], jobs=1)
        with pytest.raises(SimulationError):
            execute_shards(_boom, [1, 2], jobs=2)

    def test_jobs_validation(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(SimulationError):
            resolve_jobs(-3)

    def test_worker_metrics_merge_into_parent(self):
        with telemetry.session(trace=False) as reg:
            execute_shards(_touch_metrics, [1, 2, 3, 4], jobs=2)
        counters = reg.metrics()["counters"]
        assert counters["toy.calls"] == 4
        assert counters["toy.sum"] == 10
        hist = reg.metrics()["histograms"]["toy.x"]
        assert hist["count"] == 4
        assert hist["min"] == 1.0 and hist["max"] == 4.0
        assert hist["total"] == 10.0

    def test_merge_snapshot_combines_moments(self):
        parent = TelemetryRegistry(trace=False)
        parent.counter("c").add(2)
        parent.histogram("h").observe(5.0)
        child = TelemetryRegistry(trace=False)
        child.counter("c").add(3)
        child.histogram("h").observe(1.0)
        child.histogram("h").observe(9.0)
        child.gauge("g").set(4.5)
        parent.merge_snapshot(child.metrics())
        merged = parent.metrics()
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 4.5
        assert merged["histograms"]["h"]["count"] == 3
        assert merged["histograms"]["h"]["min"] == 1.0
        assert merged["histograms"]["h"]["max"] == 9.0
        assert merged["histograms"]["h"]["total"] == 15.0
        # the Chan parallel merge carries the second moment, so the
        # merged std equals the population std of the pooled samples
        assert merged["histograms"]["h"]["std"] == pytest.approx(
            np.std([5.0, 1.0, 9.0])
        )

    def test_merge_snapshot_std_matches_pooled_population(self):
        values = [0.5, 1.5, 2.5, 4.0, 8.0, 16.0, 0.25]
        shards = [values[:3], values[3:5], values[5:]]
        parent = TelemetryRegistry(trace=False)
        for samples in shards:
            child = TelemetryRegistry(trace=False)
            for v in samples:
                child.histogram("h").observe(v)
            parent.merge_snapshot(child.metrics())
        assert parent.histogram("h").std == pytest.approx(np.std(values))

    def test_merge_snapshot_gauges_are_shard_deterministic(self):
        """With shard keys, gauge folding is completion-order invariant:
        the highest shard index wins, so ``repro profile`` metrics don't
        depend on which worker reported last."""
        def merged_gauge(order):
            parent = TelemetryRegistry(trace=False)
            for shard in order:
                child = TelemetryRegistry(trace=False)
                child.gauge("g").set(float(shard))
                parent.merge_snapshot(child.metrics(), shard=shard)
            return parent.gauge("g").value

        assert merged_gauge([0, 1, 2]) == merged_gauge([2, 0, 1]) == 2.0


# ----------------------------------------------------------------------
# sweep_map per-row seeding (regression: correlated rows)
# ----------------------------------------------------------------------

class TestMapRowSeeding:
    def test_identical_gate_rows_are_decorrelated(self):
        """Two rows at the same gate voltage are independent MC
        experiments; with the old shared seed they replayed the exact
        same stream and came out identical."""
        circuit = build_set()
        result = sweep_map(
            circuit, VOLTS, [0.0, 0.0], CONFIG, jumps_per_point=400,
        )
        assert not np.array_equal(result.currents[0], result.currents[1])
        # decorrelated noise, same physics: the rows still agree within
        # MC statistics at the conducting points
        high_bias = np.abs(VOLTS) >= 0.03
        np.testing.assert_allclose(
            result.currents[0][high_bias], result.currents[1][high_bias],
            rtol=0.5,
        )

    def test_map_is_reproducible(self):
        circuit = build_set()
        a = sweep_map(circuit, VOLTS, GATES, CONFIG, jumps_per_point=400)
        b = sweep_map(circuit, VOLTS, GATES, CONFIG, jumps_per_point=400)
        assert np.array_equal(a.currents, b.currents)


# ----------------------------------------------------------------------
# serial == parallel, exactly
# ----------------------------------------------------------------------

class TestSerialParallelEquality:
    @pytest.fixture(scope="class")
    def map_results(self):
        circuit = build_set()
        return {
            jobs: sweep_map(
                circuit, VOLTS, GATES, CONFIG, jumps_per_point=400, jobs=jobs,
            )
            for jobs in (1, 2, 4)
        }

    def test_map_currents_identical_across_jobs(self, map_results):
        serial = map_results[1]
        for jobs in (2, 4):
            assert np.array_equal(serial.currents, map_results[jobs].currents)

    def test_map_stats_identical_across_jobs(self, map_results):
        serial = map_results[1]
        for jobs in (2, 4):
            assert serial.stats.as_dict() == map_results[jobs].stats.as_dict()

    def test_iv_chunked_identical_across_jobs(self):
        circuit = build_set()
        curves = {
            jobs: sweep_iv(
                circuit, VOLTS, CONFIG, jumps_per_point=400,
                chunks=3, jobs=jobs,
            )
            for jobs in (1, 2, 4)
        }
        for jobs in (2, 4):
            assert np.array_equal(curves[1].currents, curves[jobs].currents)
            assert curves[1].stats.as_dict() == curves[jobs].stats.as_dict()

    def test_iv_single_chunk_matches_legacy_serial_loop(self):
        """chunks=1 must stay byte-identical to the historical path:
        one engine, charge state carried across every point."""
        from repro.core.sweep import symmetric_bias

        circuit = build_set()
        curve = sweep_iv(circuit, VOLTS, CONFIG, jumps_per_point=400)
        setter = symmetric_bias()
        engine = MonteCarloEngine(circuit, CONFIG)
        legacy = np.empty(len(VOLTS))
        for i, v in enumerate(VOLTS):
            engine.set_sources(setter(float(v)))
            try:
                legacy[i] = engine.measure_current([0], 400)
            except FrozenCircuitError:
                legacy[i] = 0.0
        assert np.array_equal(curve.currents, legacy)

    def test_parallel_telemetry_counters_match_serial(self):
        circuit = build_set()
        metrics = {}
        for jobs in (1, 2):
            with telemetry.session(trace=False) as reg:
                result = sweep_map(
                    circuit, VOLTS, GATES, CONFIG,
                    jumps_per_point=400, jobs=jobs,
                )
            counters = {
                name: value
                for name, value in reg.metrics()["counters"].items()
                if not name.startswith("parallel.")
            }
            metrics[jobs] = (counters, result.stats)
        assert metrics[1][0] == metrics[2][0]
        # merged counters reconcile with the merged SolverStats
        assert metrics[2][0]["engine.events"] == metrics[2][1].events

    def test_map_stats_equal_per_row_sums(self):
        from repro.core.sweep import _MapRow, _run_map_row, symmetric_bias

        circuit = build_set()
        whole = sweep_map(circuit, VOLTS, GATES, CONFIG, jumps_per_point=400)
        # replay each row shard exactly as sweep_map lays it out
        row_seeds = spawn_seeds(CONFIG.seed, len(GATES))
        summed: dict[str, int] = {}
        for gi, vg in enumerate(GATES):
            shard = _run_map_row(_MapRow(
                index=gi, circuit=circuit,
                config=CONFIG.replace(seed=row_seeds[gi]),
                gate_voltage=float(vg), gate_source="vg",
                bias_voltages=np.asarray(VOLTS, dtype=float),
                jumps_per_point=400, junctions=[0], orientations=None,
                bias_setter=symmetric_bias(),
            ))
            for name, value in shard.stats.as_dict().items():
                summed[name] = summed.get(name, 0) + value
        # the map's merged counters are exactly the per-shard sums
        assert whole.stats.as_dict() == summed


# ----------------------------------------------------------------------
# ensembles
# ----------------------------------------------------------------------

class TestEnsemble:
    def test_shapes_and_determinism_across_jobs(self):
        circuit = build_set()
        runs = {
            jobs: ensemble_iv(
                circuit, VOLTS, 3, CONFIG, jumps_per_point=400, jobs=jobs,
            )
            for jobs in (1, 3)
        }
        serial = runs[1]
        assert serial.replica_currents.shape == (3, len(VOLTS))
        assert serial.replicas == 3
        assert np.array_equal(
            serial.replica_currents, runs[3].replica_currents
        )

    def test_replicas_are_decorrelated_and_averaged(self):
        circuit = build_set()
        ensemble = ensemble_iv(
            circuit, VOLTS, 3, CONFIG, jumps_per_point=400,
        )
        assert not np.array_equal(
            ensemble.replica_currents[0], ensemble.replica_currents[1]
        )
        curve = ensemble.mean_curve()
        assert np.array_equal(curve.currents, ensemble.mean_currents)
        assert np.array_equal(
            curve.currents, ensemble.replica_currents.mean(axis=0)
        )
        assert ensemble.std_currents.shape == (len(VOLTS),)

    def test_stats_merge_across_replicas(self):
        circuit = build_set()
        ensemble = ensemble_iv(
            circuit, VOLTS, 2, CONFIG, jumps_per_point=400,
        )
        assert ensemble.stats is not None
        assert ensemble.stats.events > 0

    def test_replica_count_validated(self):
        with pytest.raises(SimulationError):
            ensemble_iv(build_set(), VOLTS, 0, CONFIG)


# ----------------------------------------------------------------------
# error-handling bugfixes in the sweep layer
# ----------------------------------------------------------------------

class TestFrozenCircuitNarrowing:
    def test_frozen_error_is_a_simulation_error(self):
        assert issubclass(FrozenCircuitError, SimulationError)

    def test_frozen_step_raises_frozen_error(self):
        engine = MonteCarloEngine(
            build_set(vs=0.0, vd=0.0),
            SimulationConfig(temperature=0.0, solver="adaptive"),
        )
        with pytest.raises(FrozenCircuitError):
            engine.solver.step()

    def test_sweep_still_zeroes_frozen_points(self):
        curve = sweep_iv(
            build_set(), [0.005, 0.04],
            SimulationConfig(temperature=0.05, solver="nonadaptive", seed=2),
            jumps_per_point=1500,
        )
        assert curve.currents[0] == 0.0
        assert curve.currents[1] > 1e-10

    def test_sweep_no_longer_swallows_genuine_failures(self):
        """Regression: a config error used to come back as a silent
        row of zero currents."""
        with pytest.raises(SimulationError, match="warm-up truncates"):
            sweep_iv(build_set(), [0.04], CONFIG, jumps_per_point=3)
        with pytest.raises(SimulationError, match="warm-up truncates"):
            sweep_map(build_set(), [0.04], [0.0], CONFIG, jumps_per_point=3)


class TestMeasureCurrentValidation:
    def test_small_jumps_rejected(self):
        engine = MonteCarloEngine(build_set(), CONFIG)
        with pytest.raises(SimulationError, match="too small to honor"):
            engine.measure_current([0], jumps=4)

    def test_warmup_fraction_range_validated(self):
        engine = MonteCarloEngine(build_set(), CONFIG)
        with pytest.raises(SimulationError, match="warmup_fraction"):
            engine.measure_current([0], jumps=100, warmup_fraction=1.0)
        with pytest.raises(SimulationError, match="warmup_fraction"):
            engine.measure_current([0], jumps=100, warmup_fraction=-0.1)

    def test_zero_warmup_allows_small_budgets(self):
        engine = MonteCarloEngine(build_set(), CONFIG)
        current = engine.measure_current([0], jumps=4, warmup_fraction=0.0)
        assert np.isfinite(current)

    def test_lint_flags_warmup_starved_budget(self):
        from repro.lint.simconfig import check_jumps

        codes = [d.code for d in check_jumps(4)]
        assert "SEM045" in codes
        assert all(d.code != "SEM045" for d in check_jumps(5))


# ----------------------------------------------------------------------
# deck / CLI integration
# ----------------------------------------------------------------------

DECK = """\
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
num j 2
num ext 3
num nodes 4
temp 5
record 1 2 2
jumps 600 {runs}
sweep 2 0.02 0.01
"""


class TestDeckParallel:
    def test_deck_jobs_and_chunks_are_reproducible(self):
        from repro.netlist import parse_semsim

        deck = parse_semsim(DECK.format(runs=1))
        serial = deck.run(seed=3)
        same = deck.run(seed=3, jobs=2)  # chunks=1: identical layout
        assert np.array_equal(serial.currents, same.currents)
        chunked = {
            jobs: deck.run(seed=3, jobs=jobs, chunks=2) for jobs in (1, 2)
        }
        assert np.array_equal(chunked[1].currents, chunked[2].currents)

    def test_deck_runs_directive_becomes_ensemble_average(self):
        from repro.netlist import parse_semsim

        single = parse_semsim(DECK.format(runs=1)).run(seed=3)
        averaged = parse_semsim(DECK.format(runs=3)).run(seed=3)
        assert averaged.currents.shape == single.currents.shape
        assert not np.array_equal(averaged.currents, single.currents)
        again = parse_semsim(DECK.format(runs=3)).run(seed=3, jobs=2)
        assert np.array_equal(averaged.currents, again.currents)

    def test_cli_jobs_flag(self, tmp_path, capsys):
        from repro.cli import main

        deck_path = tmp_path / "deck.txt"
        deck_path.write_text(DECK.format(runs=1))
        outputs = {}
        for jobs in (1, 2):
            out = tmp_path / f"out{jobs}.csv"
            code = main([
                "run", str(deck_path), "--seed", "5",
                "--jobs", str(jobs), "--chunks", "2",
                "--output", str(out),
            ])
            assert code == 0
            outputs[jobs] = out.read_text()
        capsys.readouterr()
        assert outputs[1] == outputs[2]
        assert outputs[1].startswith("sweep_voltage_V,current_A")

    def test_cli_rejects_bad_jobs(self, tmp_path, capsys):
        from repro.cli import main

        deck_path = tmp_path / "deck.txt"
        deck_path.write_text(DECK.format(runs=1))
        code = main(["run", str(deck_path), "--jobs", "-2"])
        capsys.readouterr()
        assert code == 1


# ----------------------------------------------------------------------
# the IVCurve surface parallel callers rely on
# ----------------------------------------------------------------------

class TestCurveMergeSurface:
    def test_iv_stats_are_merged_chunk_sums(self):
        circuit = build_set()
        curve = sweep_iv(
            circuit, VOLTS, CONFIG, jumps_per_point=400, chunks=3,
        )
        assert curve.stats is not None
        assert curve.stats.events == 400 * len(VOLTS)

    def test_empty_sweep_returns_empty_curve(self):
        curve = sweep_iv(build_set(), [], CONFIG)
        assert curve.currents.shape == (0,)
        assert dataclasses.is_dataclass(curve)
