"""Shim for environments without the `wheel` package, where pip's
PEP 660 editable path (bdist_wheel) is unavailable."""
from setuptools import setup

setup()
