"""Exception hierarchy for the SEMSIM reproduction.

Every error raised deliberately by this package derives from
:class:`SemsimError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class SemsimError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(SemsimError):
    """Raised for malformed circuits (bad topology, values, indices)."""


class NetlistError(SemsimError):
    """Raised when parsing a SEMSIM input file or logic netlist fails."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class SimulationError(SemsimError):
    """Raised when a simulation cannot proceed (no events, bad config)."""


class FrozenCircuitError(SimulationError):
    """Raised when every tunnel rate vanishes: the circuit is frozen.

    Deep Coulomb blockade at low temperature carries no current, so
    sweep loops treat this one condition as "current = 0" — while every
    other :class:`SimulationError` (bad configuration, no simulated
    time elapsed, ...) keeps signalling a genuine failure.
    """


class ConvergenceError(SemsimError):
    """Raised by the SPICE-style solver when Newton iteration diverges.

    The paper reports exactly this failure mode for three of the fifteen
    benchmarks (74LS153, 54LS181, c1908); we surface it the same way.
    """


class PhysicsError(SemsimError):
    """Raised for physically inconsistent model parameters."""


class TelemetryError(SemsimError):
    """Raised for misuse of the telemetry layer (bad metric kinds,
    unwritable trace destinations, malformed export requests)."""


class SanitizerError(SemsimError):
    """Raised for misuse of the determinism sanitizer itself (missing
    scan roots, unreadable or unparseable source files) — never for
    findings, which are reported as :class:`repro.dsan.Finding`
    records."""


class ContractError(SemsimError):
    """Raised when an :func:`repro.static.array_contract` specification
    string cannot be parsed (bad shape grammar, unknown dtype, unknown
    memory-order flag) or names a parameter the function does not have.
    Raised at decoration time, so a malformed contract fails the module
    import rather than silently weakening the ARR pass."""


class RecoveryError(SimulationError):
    """Raised by the fault-tolerant execution layer (``repro.recovery``)
    when a shard exhausts its retry budget, a checkpoint manifest is
    corrupt or belongs to a different run, or a resume is requested
    without anything to resume from.

    Carries the failing shard index in :attr:`shard` and the number of
    attempts charged to it in :attr:`attempts` (both ``None`` for
    manifest-level failures); the underlying worker exception, if any,
    rides along as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        attempts: int | None = None,
    ):
        self.shard = shard
        self.attempts = attempts
        super().__init__(message)


class CampaignError(SimulationError):
    """Raised by the campaign layer (``repro.campaign``) for misuse of
    the content-addressed result store: an empty or malformed parameter
    space, an unwritable store directory, or a cell payload that cannot
    be content-addressed.  Store *corruption* is never fatal — corrupt
    cells are dropped and recomputed."""


class GeneratorError(SemsimError):
    """Raised by the scenario generator (``repro.gen``) for misuse of
    the generator itself: unknown device families, malformed parameter
    spaces, or a corpus entry that cannot be replayed.  A *generated*
    case that fails its own lint gate is never an exception — the
    differential driver records it as a ``generator-bug`` verdict."""


class DeterminismError(SemsimError):
    """Raised by the *runtime* determinism sanitizer (``--dsan``) when
    a reproducibility contract is violated: shadow-run event-stream
    hashes diverge, a shard payload fails to pickle, or a pool worker
    leaks process-global state (e.g. draws from the global RNG)."""


class LintError(SemsimError):
    """Raised by strict-mode parsing/building when static analysis of a
    deck, circuit or netlist finds error-severity problems.

    Carries the offending :class:`repro.lint.Diagnostic` records in
    :attr:`diagnostics` (typed loosely here so the base error module
    stays import-free).
    """

    def __init__(self, message: str, diagnostics: tuple[object, ...] = ()):
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)
