"""Command-line front end (``python -m repro``).

The original SEMSIM was driven from input decks on the command line;
this CLI reproduces that workflow:

``python -m repro run deck.txt``
    Parse a SEMSIM input deck, run the simulation it describes (sweep
    or single operating point) and print/save the I-V results.
    ``--jobs N`` fans the sweep out over worker processes and
    ``--chunks M`` splits it into independently seeded voltage chunks;
    results depend only on the chunk layout, never on the worker
    count, so ``--jobs 4`` reproduces ``--jobs 1`` bit for bit.
    ``--checkpoint DIR`` persists each completed shard to an atomic
    manifest and ``--resume`` continues an interrupted run from it
    (bit-identically — same arrays, same combined event hash);
    ``--retries``/``--shard-timeout`` tune the fault-tolerance policy
    for dead or wedged workers.
``python -m repro info deck.txt``
    Parse and validate a deck, reporting the circuit statistics and a
    one-line static-analysis summary.  ``--probe N`` additionally runs
    ``N`` tunnel events and prints the solver work-counter table.
``python -m repro profile deck.txt --trace out.json``
    Run the deck under the telemetry layer and print a profiling
    summary (per-phase wall time, solver work counters, adaptive
    efficiency against the non-adaptive baseline, hottest junctions).
    ``--trace`` additionally writes the event trace — a Chrome
    trace-event file loadable in ``chrome://tracing``/Perfetto, or
    JSON Lines when the file name ends in ``.jsonl``.
``python -m repro lint deck.txt``
    Static analysis only: report every ``SEM0xx`` diagnostic of a deck
    or logic netlist without running any Monte Carlo.  The exit code
    mirrors the worst severity (0 clean/info, 1 warnings, 2 errors).
``python -m repro sanitize [path ...]``
    Static *determinism* analysis of the simulator sources themselves:
    report every ``DET0xx`` diagnostic (unseeded RNGs, global RNG
    state, wall-clock reads outside ``telemetry.clock``, worker state
    writes, unpicklable pool payloads, unordered-set iteration).  The
    exit code mirrors the worst severity, like ``lint``.
``python -m repro check [path ...]``
    The unified static-analysis gate: run every rule family —
    ``REPRO00x`` repository style, ``DET0xx`` determinism, ``ARR0xx``
    array-kernel contracts, ``PERF0xx`` hot-loop hygiene and ``W000``
    stale waivers — over the simulator sources in one pass.
    ``--select`` filters by code prefix, ``--format json|sarif``
    selects machine-readable output, ``--baseline FILE`` suppresses
    known findings and ``--write-baseline FILE`` records the current
    state.  The exit code mirrors the worst severity, like ``lint``.
``python -m repro run deck.txt --dsan``
    Runtime determinism sanitizer: execute the deck twice under the
    same seed with the pool boundary armed, compare order-sensitive
    event-stream hashes and fail (exit 1) if the replicas diverge.
``python -m repro run deck.txt --progress``
    Live monitoring on stderr while the run executes: shards done and
    in flight, retries, aggregate events/second, ETA and stalled-shard
    warnings.  Strictly out-of-band — results and event hashes are
    bit-identical with or without it.  Every ``repro run`` also
    appends one JSONL record to the run ledger
    (``~/.cache/repro/ledger.jsonl``; ``--ledger FILE`` or
    ``REPRO_LEDGER`` overrides, ``--no-ledger`` disables).
``python -m repro report``
    Perf trajectories over the run ledger: runs of the same workload
    are matched by fingerprint and judged for events/second
    regressions (``--check`` exits 1 on any); ``--format
    json|openmetrics`` selects machine-readable output and
    ``--bench-dir`` folds in the committed ``BENCH_*.json`` artifacts.
``python -m repro run deck.txt --campaign DIR``
    Consult the persistent content-addressed result store under
    ``DIR`` before simulating: sweep shards already computed are
    replayed from the store, fresh ones are persisted as they land.  A
    re-run of the same deck computes nothing and returns bit-identical
    results (same combined event hash); a ``campaign cache: N cached,
    M computed`` summary goes to stderr.
``python -m repro campaign run deck.txt --param g=0:0.1:21 ...``
    Parameter-space campaigns (ns-3 ``sem`` style): cross the deck's
    workload with explicit ``--param`` axes and ``--replicas``, then
    compute *only the cells missing from the store*.  ``status`` diffs
    the grid against the store without running, ``results`` assembles
    the dense numpy grid (``--out grid.npz`` to export) and ``gc``
    applies retention policy (``--keep-current-code``,
    ``--older-than DAYS``).
``python -m repro fuzz run --seed 0 --budget 25 --jobs 2``
    Differential fuzzing campaign: draw ``--budget`` random cases from
    the device/logic families (seed-deterministic — the case set and
    every verdict are bit-identical for any ``--jobs``), cross-check
    each against every applicable oracle (adaptive MC, non-adaptive
    MC, master equation, SPICE compact model; logic cases check the
    technology mapper instead), shrink the first failures to minimal
    reproducer decks and, with ``--out DIR``, write the failure corpus
    plus a ``report.json``.  ``--campaign DIR`` caches whole verdicts
    content-addressed; ``--inject-bug sign-flip`` is the CI fixture
    that proves the oracle catches a corrupted solver.  Exit 1 when
    any case fails.
``python -m repro fuzz replay PATH [PATH ...]``
    Re-run pinned reproducer entries (directories written by ``fuzz
    run --out`` or promoted into the golden corpus) and verify they
    reproduce their recorded verdicts, oracle currents (bit-for-bit,
    ``float.hex``) and event hashes.  Exit 1 on any divergence.
``python -m repro fuzz corpus promote SRC --dest tests/data/golden/fuzz``
    Copy fuzz corpus entries into the pinned golden corpus the test
    suite replays on every run.
``python -m repro benchmark 74LS138``
    Build one of the paper's logic benchmarks and report its size.
``python -m repro benchmarks``
    List all fifteen paper benchmarks.

Exit codes across all subcommands: 0 success, 1 defective input
(parse/physics/simulation errors), 2 unreadable input (missing or
unreadable file) — except ``lint``, whose exit code is the worst
diagnostic severity as above.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import SemsimError, SimulationError

if TYPE_CHECKING:
    import numpy as np

    from repro.campaign import Campaign


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEMSIM reproduction: single-electron circuit simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a SEMSIM input deck")
    run.add_argument("deck", type=Path, help="path to the input deck")
    run.add_argument(
        "--solver", choices=("adaptive", "nonadaptive"), default="adaptive"
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--output", type=Path, default=None,
        help="write the sweep as CSV instead of printing it",
    )
    run.add_argument(
        "--strict", action="store_true",
        help="refuse to run decks with error-severity lint findings",
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep execution (default 1 = serial; "
             "0 = all cores); for a fixed --chunks the results are "
             "bit-identical for every N",
    )
    run.add_argument(
        "--chunks", type=int, default=1, metavar="M",
        help="split the sweep into M independently seeded voltage chunks "
             "(default 1 = the byte-identical serial sweep); results "
             "depend on M, never on --jobs",
    )
    run.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help="record a telemetry trace of the run (Chrome trace-event "
             "JSON; '.jsonl' suffix selects JSON Lines)",
    )
    run.add_argument(
        "--checkpoint", type=Path, default=None, metavar="DIR",
        help="persist each completed sweep shard to an atomic manifest "
             "under DIR (forces the shard/merge path and event-stream "
             "hashing); combine with --resume to continue an "
             "interrupted run bit-identically",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume from the manifest under --checkpoint DIR: "
             "completed shards are replayed, only the remainder is "
             "simulated; a manifest from a different deck/config/seed "
             "is a hard error",
    )
    run.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retries per shard after a worker dies or times out "
             "(default 2); a retried shard reuses its own spawned "
             "seed, so recovery never changes results",
    )
    run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per pooled shard; an overrunning shard "
             "is charged a failed attempt and its worker pool rebuilt",
    )
    run.add_argument(
        "--dsan", action="store_true",
        help="runtime determinism sanitizer: execute the deck twice "
             "under the same seed, compare order-sensitive event-stream "
             "hashes, and verify every pool boundary (picklable shard "
             "payloads, module-level workers, no worker state leaks); "
             "exit 1 if the replicas diverge",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="live monitoring on stderr: shards done/in flight/retried, "
             "aggregate events/second, ETA, stalled-shard warnings; "
             "out-of-band, so results are bit-identical with or "
             "without it",
    )
    run.add_argument(
        "--ledger", type=Path, default=None, metavar="FILE",
        help="append this run's record to FILE instead of the default "
             "run ledger ($REPRO_LEDGER or ~/.cache/repro/ledger.jsonl)",
    )
    run.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this run in the run ledger",
    )
    run.add_argument(
        "--campaign", type=Path, default=None, metavar="DIR",
        help="consult the content-addressed result store under DIR "
             "before simulating: sweep shards already computed are "
             "replayed, fresh ones are persisted (forces the "
             "shard/merge path and event hashing, so a fully cached "
             "re-run is bit-identical); a 'campaign cache: N cached, "
             "M computed' summary is printed on stderr",
    )

    info = sub.add_parser("info", help="parse and describe a deck")
    info.add_argument("deck", type=Path)
    info.add_argument(
        "--probe", type=int, default=0, metavar="N",
        help="run N tunnel events and print the solver stats table",
    )

    profile = sub.add_parser(
        "profile", help="run a deck under telemetry and summarise where "
                        "the time goes"
    )
    profile.add_argument("deck", type=Path, help="path to the input deck")
    profile.add_argument(
        "--solver", choices=("adaptive", "nonadaptive"), default="adaptive"
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help="write the event trace (Chrome trace-event JSON; '.jsonl' "
             "suffix selects JSON Lines)",
    )
    profile.add_argument(
        "--format", choices=("auto", "chrome", "jsonl"), default="auto",
        help="trace file format (default: by file suffix)",
    )
    profile.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="number of hottest junctions to report (default 5)",
    )
    profile.add_argument(
        "--baseline", action="store_true",
        help="also run the non-adaptive solver for a measured wall-clock "
             "comparison",
    )

    lint = sub.add_parser(
        "lint", help="static-analyse a deck or logic netlist (no simulation)"
    )
    lint.add_argument(
        "target", type=Path, nargs="?", default=None,
        help="path to a SEMSIM deck or logic netlist",
    )
    lint.add_argument(
        "--format", choices=("auto", "deck", "logic"), default="auto",
        help="input format (default: sniffed from the content)",
    )
    lint.add_argument(
        "--benchmark", metavar="NAME", default=None,
        help="lint one of the paper's logic benchmarks instead of a file",
    )
    lint.add_argument(
        "--benchmarks", action="store_true",
        help="lint all fifteen paper benchmarks",
    )
    lint.add_argument(
        "--codes", action="store_true",
        help="print the table of SEM0xx diagnostic codes and exit",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="static determinism sanitizer: DET0xx diagnostics over "
             "the simulator sources (no simulation)",
    )
    sanitize.add_argument(
        "paths", type=Path, nargs="*",
        help="files or directories to analyse (default: the installed "
             "repro package sources)",
    )
    sanitize.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    sanitize.add_argument(
        "--codes", action="store_true",
        help="print the table of DET0xx diagnostic codes and exit",
    )

    check = sub.add_parser(
        "check",
        help="unified static analysis: repository, determinism, array, "
             "hot-loop, numerical-stability and dimensional rules over "
             "the simulator sources",
    )
    check.add_argument(
        "paths", type=Path, nargs="*",
        help="files or directories to analyse (default: the installed "
             "repro package sources)",
    )
    check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    check.add_argument(
        "--codes", action="store_true",
        help="print the full static-analysis code registry and exit",
    )
    check.add_argument(
        "--select", metavar="PREFIX[,PREFIX...]", default=None,
        help="keep only findings whose code starts with one of the "
             "given prefixes (e.g. 'ARR,PERF')",
    )
    check.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="suppress findings whose fingerprints appear in this "
             "baseline file (JSON, written by --write-baseline)",
    )
    check.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help="write the fingerprints of every current finding to FILE "
             "and exit 0",
    )
    check.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="analyse modules with N worker processes (0 = one per "
             "CPU core; default: 1, serial)",
    )
    check.add_argument(
        "--changed", action="store_true",
        help="report findings only for modules changed per git status "
             "plus everything that transitively depends on them",
    )
    check.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="incremental-analysis cache directory (default: the "
             "shared repro cache under ~/.cache/repro/static)",
    )
    check.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache and re-analyse every module",
    )

    report = sub.add_parser(
        "report",
        help="perf trajectories and regression verdicts from the run "
             "ledger",
    )
    report.add_argument(
        "--ledger", type=Path, default=None, metavar="FILE",
        help="ledger file to read (default: $REPRO_LEDGER or "
             "~/.cache/repro/ledger.jsonl)",
    )
    report.add_argument(
        "--bench-dir", type=Path, default=None, metavar="DIR",
        help="directory of BENCH_*.json artifacts to summarise "
             "alongside (default: ./benchmarks when present)",
    )
    report.add_argument(
        "--format", choices=("text", "json", "openmetrics"),
        default="text",
        help="report format (default: text); 'openmetrics' renders the "
             "latest snapshot per workload as a text exposition",
    )
    report.add_argument(
        "--threshold", type=float, default=0.2, metavar="FRACTION",
        help="events/second drop (vs the median of earlier runs of the "
             "same workload) that counts as a regression (default 0.2)",
    )
    report.add_argument(
        "--check", action="store_true",
        help="exit 1 when any workload regressed (for CI gating)",
    )

    bench = sub.add_parser("benchmark", help="build a paper logic benchmark")
    bench.add_argument("name", help="benchmark name, e.g. '74LS138'")

    sub.add_parser("benchmarks", help="list the paper's 15 benchmarks")

    campaign = sub.add_parser(
        "campaign",
        help="parameter-space campaigns over the persistent "
             "content-addressed result store",
    )
    csub = campaign.add_subparsers(dest="action", required=True)

    def _campaign_identity(p) -> None:
        p.add_argument("deck", type=Path, help="path to the input deck")
        p.add_argument(
            "--param", action="append", default=[], metavar="NAME=SPEC",
            required=True,
            help="one parameter dimension: NAME=START:STOP:COUNT "
                 "(inclusive linspace) or NAME=V1,V2,... ; NAME is a "
                 "source name or a deck node number (node N drives "
                 "source vN); repeat for a grid",
        )
        p.add_argument("--replicas", type=int, default=1, metavar="R",
                       help="independent repetitions per point (default 1)")
        p.add_argument("--jumps", type=int, default=0, metavar="N",
                       help="tunnel events per cell (default: the deck's "
                            "jumps directive)")
        p.add_argument("--solver",
                       choices=("adaptive", "nonadaptive"),
                       default="adaptive")
        p.add_argument("--seed", type=int, default=0,
                       help="campaign root seed; every cell's seed is "
                            "spawned from it at a content-derived "
                            "coordinate")
        p.add_argument("--store", type=Path, default=None, metavar="DIR",
                       help="campaign store root (default "
                            "$REPRO_CAMPAIGN_DIR or "
                            "<cache dir>/campaigns)")
        p.add_argument("--label", default="", help="campaign label")

    crun = csub.add_parser(
        "run", help="compute every cell of the grid not yet in the store"
    )
    _campaign_identity(crun)
    crun.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (0 = all cores); results are "
             "bit-identical for every N",
    )
    crun.add_argument(
        "--ledger", type=Path, default=None, metavar="FILE",
        help="run-ledger override (as for 'repro run')",
    )
    crun.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this campaign run in the run ledger",
    )

    cstatus = csub.add_parser(
        "status", help="diff the requested grid against the store"
    )
    _campaign_identity(cstatus)

    cresults = csub.add_parser(
        "results",
        help="assemble the stored grid as a dense array (never computes)",
    )
    _campaign_identity(cresults)
    cresults.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the grid and its axes to FILE as a numpy .npz "
             "archive instead of printing a summary",
    )

    cgc = csub.add_parser(
        "gc", help="apply retention policy to the campaign store"
    )
    cgc.add_argument("--store", type=Path, default=None, metavar="DIR")
    cgc.add_argument(
        "--keep-current-code", action="store_true",
        help="drop cells computed by any other code version than the "
             "current one",
    )
    cgc.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="drop cells older than DAYS days",
    )
    cgc.add_argument(
        "--fingerprint", default=None, metavar="HEX",
        help="restrict collection to one workload directory",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random circuits cross-checked "
             "against every applicable oracle",
    )
    fsub = fuzz.add_subparsers(dest="action", required=True)

    frun = fsub.add_parser(
        "run", help="generate and differentially check a case budget"
    )
    frun.add_argument(
        "--seed", type=int, default=0,
        help="campaign root seed; the case set and every verdict are "
             "a pure function of (seed, budget, families)",
    )
    frun.add_argument(
        "--budget", type=int, default=25, metavar="N",
        help="number of generated cases (default 25)",
    )
    frun.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (0 = all cores); verdicts are "
             "bit-identical for every N",
    )
    frun.add_argument(
        "--families", default=None, metavar="A,B,...",
        help="comma-separated case families to draw from (default: "
             "set,series_array,trap,logic)",
    )
    frun.add_argument(
        "--replicas", type=int, default=3, metavar="R",
        help="independent MC replicas per solver per case (default 3); "
             "more replicas tighten the statistical tolerance",
    )
    frun.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="write the failure corpus and report.json under DIR",
    )
    frun.add_argument(
        "--campaign", type=Path, default=None, metavar="DIR",
        help="cache whole case verdicts content-addressed in the "
             "campaign store under DIR; a re-run with unchanged cases "
             "replays them bit-identically",
    )
    frun.add_argument(
        "--inject-bug", choices=("sign-flip",), default=None,
        metavar="KIND", dest="inject_bug",
        help="seed a known solver bug into the non-adaptive MC path "
             "(CI fixture proving the differential oracle catches a "
             "corrupted solver); 'sign-flip' negates the tunnelling "
             "energy balance",
    )
    frun.add_argument(
        "--shrink", type=int, default=1, metavar="K",
        help="shrink the first K failures to minimal reproducers "
             "(default 1; 0 disables shrinking)",
    )
    frun.add_argument(
        "--shrink-evals", type=int, default=40, metavar="N",
        help="evaluation budget per shrink (each evaluation re-runs "
             "the full differential check)",
    )
    frun.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retries per pooled case after a worker dies or times out",
    )
    frun.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per pooled case",
    )

    freplay = fsub.add_parser(
        "replay",
        help="re-run pinned reproducer entries and verify they "
             "reproduce bit-for-bit",
    )
    freplay.add_argument(
        "paths", type=Path, nargs="+", metavar="PATH",
        help="corpus entry directories, or directories of entries",
    )

    fcorpus = fsub.add_parser("corpus", help="manage the reproducer corpus")
    fcorpus_sub = fcorpus.add_subparsers(dest="corpus_action", required=True)
    fpromote = fcorpus_sub.add_parser(
        "promote", help="copy fuzz corpus entries into the pinned corpus"
    )
    fpromote.add_argument(
        "source", type=Path,
        help="fuzz output corpus directory (e.g. OUT/corpus)",
    )
    fpromote.add_argument(
        "--dest", type=Path, default=Path("tests/data/golden/fuzz"),
        help="pinned corpus directory (default tests/data/golden/fuzz)",
    )
    fpromote.add_argument(
        "--name", action="append", default=[], metavar="ENTRY",
        help="promote only the named entries (repeatable; default all)",
    )
    return parser


def _cmd_run(args) -> int:
    from repro.netlist import parse_semsim
    from repro.telemetry import registry as telemetry

    deck = parse_semsim(args.deck.read_text(), strict=args.strict)

    checkpoint = None
    if args.resume and args.checkpoint is None:
        raise SimulationError("--resume requires --checkpoint DIR")
    if args.checkpoint is not None:
        from repro.recovery import CheckpointStore

        checkpoint = CheckpointStore(args.checkpoint, resume=args.resume)
    policy = None
    if args.retries != 2 or args.shard_timeout is not None:
        from repro.recovery import ExecutionPolicy

        policy = ExecutionPolicy(
            max_attempts=args.retries + 1, shard_timeout=args.shard_timeout
        )
    campaign = None
    if args.campaign is not None:
        from repro.campaign import CampaignStore

        campaign = CampaignStore(args.campaign)

    def _execute():
        if not args.dsan:
            return deck.run(
                solver=args.solver, seed=args.seed,
                jobs=args.jobs, chunks=args.chunks,
                checkpoint=checkpoint, policy=policy, campaign=campaign,
            )
        # shadow-run verification: execute the identically seeded deck
        # twice with the pool boundary armed, compare the event-stream
        # hashes, report the outcome on stderr and return the primary
        # run's curve
        from repro.dsan import dsan_mode, verify_shadow

        curves = []

        def _replica():
            curves.append(deck.run(
                solver=args.solver, seed=args.seed,
                jobs=args.jobs, chunks=args.chunks, dsan=True,
                checkpoint=checkpoint, policy=policy, campaign=campaign,
            ))
            return curves[-1].event_hash

        with dsan_mode():
            report = verify_shadow(_replica, label=str(args.deck))
        print(report.format(), file=sys.stderr)
        return curves[0]

    import contextlib

    with contextlib.ExitStack() as stack:
        if args.progress or not args.no_ledger or campaign is not None:
            # the monitor's inline event feed, the ledger's
            # recovery-counter deltas and the campaign cache summary
            # all read the parent registry; open a metrics-only
            # session when no richer one exists
            if telemetry.ACTIVE is None and args.trace is None:
                stack.enter_context(telemetry.session(trace=False))
        if not args.no_ledger:
            from repro.monitor import ledger_session

            stack.enter_context(ledger_session(args.ledger))
        if args.progress:
            from repro.monitor import monitor_session

            stack.enter_context(monitor_session())
        summary_registry = None
        if args.trace is not None:
            from repro.telemetry.exporters import write_trace

            with telemetry.session() as reg:
                curve = _execute()
            summary_registry = reg
            count = write_trace(reg, args.trace)
            print(
                f"wrote {count} trace events to {args.trace}",
                file=sys.stderr,
            )
        else:
            curve = _execute()
            summary_registry = telemetry.ACTIVE
        if campaign is not None and summary_registry is not None:
            _print_cache_summary(summary_registry)
    lines = ["sweep_voltage_V,current_A"]
    lines += [f"{v:.9g},{i:.9g}" for v, i in zip(curve.voltages, curve.currents)]
    text = "\n".join(lines) + "\n"
    if args.output is not None:
        args.output.write_text(text)
        print(f"wrote {len(curve.voltages)} points to {args.output}")
    else:
        print(text, end="")
    # the work-counter table goes to stderr so stdout stays a clean CSV
    if curve.stats is not None:
        print(curve.stats.format_table(), file=sys.stderr)
    return 0


def _print_cache_summary(registry) -> int:
    """Report campaign cache traffic on stderr; returns cells computed."""
    cached = registry.peek_counter("campaign.cell_hits")
    computed = registry.peek_counter("campaign.cells_computed")
    print(
        f"campaign cache: {cached} cached, {computed} computed",
        file=sys.stderr,
    )
    return computed


def _parse_param(spec: str) -> "tuple[str, np.ndarray]":
    """``NAME=START:STOP:COUNT`` or ``NAME=V1,V2,...`` → (name, values)."""
    import numpy as np

    name, sep, body = spec.partition("=")
    name = name.strip()
    if not sep or not name or not body:
        raise SimulationError(
            f"--param needs NAME=START:STOP:COUNT or NAME=V1,V2,... "
            f"(got {spec!r})"
        )
    try:
        if ":" in body:
            start_s, stop_s, count_s = body.split(":")
            count = int(count_s)
            if count < 1:
                raise SimulationError(
                    f"bad --param {spec!r}: COUNT must be >= 1"
                )
            values = np.linspace(float(start_s), float(stop_s), count)
        else:
            values = np.asarray(
                [float(part) for part in body.split(",") if part.strip()],
                dtype=float,
            )
    except ValueError as exc:
        raise SimulationError(f"bad --param {spec!r}: {exc}") from exc
    return name, values


def _build_campaign(args) -> "Campaign":
    """Assemble a :class:`repro.campaign.Campaign` from deck + --param."""
    from repro.campaign import Campaign, CampaignStore, PointSources
    from repro.netlist import parse_semsim

    deck = parse_semsim(args.deck.read_text())
    circuit = deck.build_circuit()
    dims = dict(_parse_param(spec) for spec in args.param)
    if len(dims) != len(args.param):
        raise SimulationError("duplicate --param dimension name")
    # map dimension names onto circuit sources: a deck node number N
    # drives its source vN, a full source name passes straight through
    source_names = {source.name for source in circuit.sources}
    rename = {}
    for name in dims:
        if name in source_names:
            continue
        if f"v{name}" in source_names:
            rename[name] = f"v{name}"
        else:
            raise SimulationError(
                f"--param dimension {name!r} matches no source "
                f"(deck has {sorted(source_names)})"
            )
    jumps = args.jumps if args.jumps > 0 else deck.jumps
    return Campaign(
        circuit,
        dims,
        deck.config(args.solver, args.seed),
        replicas=args.replicas,
        jumps_per_point=jumps,
        measure_junctions=deck.recorded_junctions(circuit),
        source_setter=PointSources(rename),
        label=args.label or str(args.deck),
        store=CampaignStore(args.store) if args.store is not None else None,
    )


def _cmd_campaign(args) -> int:
    from repro.telemetry import registry as telemetry

    if args.action == "gc":
        from repro.campaign import CampaignStore

        store = (
            CampaignStore(args.store) if args.store is not None
            else CampaignStore()
        )
        keep_version = None
        if args.keep_current_code:
            from repro.monitor.ledger import _detect_code_version

            keep_version = _detect_code_version()
        stats = store.gc(
            keep_code_version=keep_version,
            older_than=(
                args.older_than * 86400.0
                if args.older_than is not None else None
            ),
            fingerprint=args.fingerprint,
        )
        print(f"campaign store {store.root}: {stats.format()}")
        return 0

    campaign = _build_campaign(args)
    if args.action == "status":
        print(campaign.status().format())
        return 0
    if args.action == "results":
        grid = campaign.get_results_array()
        if args.out is not None:
            import numpy as np

            axes = {
                f"axis_{name}": values
                for name, values in zip(
                    campaign.space.names, campaign.space.values
                )
            }
            np.savez(args.out, currents=grid, **axes)
            print(f"wrote grid {grid.shape} to {args.out}")
        else:
            print(
                f"workload {campaign.fingerprint}: grid {grid.shape} "
                f"(dims {', '.join(campaign.space.names)} x replicas); "
                f"current range [{grid.min():.6g}, {grid.max():.6g}] A"
            )
        return 0

    # action == "run"
    import contextlib

    with contextlib.ExitStack() as stack:
        if telemetry.ACTIVE is None:
            stack.enter_context(telemetry.session(trace=False))
        if not args.no_ledger:
            from repro.monitor import ledger_session

            stack.enter_context(ledger_session(args.ledger))
        outcome = campaign.run_missing(jobs=args.jobs)
        print(outcome.format())
        if outcome.event_hash is not None:
            print(f"combined event hash: {outcome.event_hash}")
        registry = telemetry.ACTIVE
        if registry is not None:
            _print_cache_summary(registry)
    return 0


def _cmd_fuzz(args) -> int:
    if args.action == "corpus":
        from repro.gen import promote

        names = tuple(args.name) if args.name else None
        promoted = promote(args.source, args.dest, names)
        for path in promoted:
            print(f"promoted {path.name} -> {path}")
        print(f"{len(promoted)} entr{'y' if len(promoted) == 1 else 'ies'} "
              f"pinned under {args.dest}")
        return 0

    if args.action == "replay":
        from repro.gen import iter_corpus, replay
        from repro.gen.corpus import _RECORD

        entries = []
        for path in args.paths:
            if (path / _RECORD).is_file():
                entries.append(path)
            else:
                entries.extend(iter_corpus(path))
        if not entries:
            raise SemsimError(
                "no corpus entries found under "
                + ", ".join(str(p) for p in args.paths)
            )
        bad = 0
        for entry in entries:
            verdict, divergences = replay(entry)
            if divergences:
                bad += 1
                print(f"DIVERGED {entry.name}:")
                for d in divergences:
                    print(f"  {d.what}")
            else:
                print(f"ok {entry.name} ({verdict.kind})")
        print(f"replayed {len(entries)} entries, {bad} diverged")
        return 1 if bad else 0

    # action == "run"
    import contextlib

    from repro.gen import DEFAULT_FAMILIES, FuzzConfig, run_fuzz, write_artifacts
    from repro.recovery.policy import ExecutionPolicy
    from repro.telemetry import registry as telemetry

    families = (
        tuple(f.strip() for f in args.families.split(",") if f.strip())
        if args.families is not None
        else DEFAULT_FAMILIES
    )
    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        families=families,
        replicas=args.replicas,
        bug=args.inject_bug,
        shrink=args.shrink,
        shrink_evaluations=args.shrink_evals,
    )
    policy = ExecutionPolicy(
        max_attempts=args.retries + 1, shard_timeout=args.shard_timeout
    )
    with contextlib.ExitStack() as stack:
        if telemetry.ACTIVE is None:
            stack.enter_context(telemetry.session(trace=False))
        report = run_fuzz(
            config, jobs=args.jobs, policy=policy, campaign=args.campaign
        )
    print(report.format())
    if args.out is not None:
        root = write_artifacts(report, args.out)
        print(f"wrote report.json and {len(report.failures)} corpus "
              f"entr{'y' if len(report.failures) == 1 else 'ies'} "
              f"under {root}")
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    from repro.netlist import parse_semsim
    from repro.telemetry.exporters import write_trace
    from repro.telemetry.profile import profile_deck

    deck = parse_semsim(args.deck.read_text())
    report, reg = profile_deck(
        deck,
        solver=args.solver,
        seed=args.seed,
        top=args.top,
        measure_baseline=args.baseline,
    )
    print(report.format())
    if args.trace is not None:
        count = write_trace(reg, args.trace, fmt=args.format)
        print(f"wrote {count} trace events to {args.trace}")
    return 0


def _cmd_info(args) -> int:
    from repro.lint import lint_deck
    from repro.netlist import parse_semsim

    deck = parse_semsim(args.deck.read_text())
    circuit = deck.build_circuit()
    report = lint_deck(deck)
    print(f"deck: {args.deck}")
    print(f"  junctions:      {circuit.n_junctions}")
    print(f"  islands:        {circuit.n_islands}")
    print(f"  sources:        {len(circuit.sources)}")
    print(f"  temperature:    {deck.temperature} K")
    print(f"  cotunneling:    {'on' if deck.cotunnel else 'off'}")
    print(f"  superconductor: "
          f"{'yes' if deck.superconductor is not None else 'no'}")
    if deck.sweep is not None:
        print(
            f"  sweep:          node {deck.sweep.node} "
            f"+-{deck.sweep.maximum} V step {deck.sweep.step} V"
        )
    summary = report.summary()
    if report.diagnostics:
        summary += f" (run 'repro lint {args.deck}' for details)"
    print(f"  lint:           {summary}")
    if args.probe > 0:
        from repro.core import MonteCarloEngine

        engine = MonteCarloEngine(circuit, deck.config())
        engine.run(max_jumps=args.probe)
        print(engine.solver.stats.format_table(
            f"solver stats ({args.probe}-event probe)"
        ))
    return 0


def _print_code_table() -> None:
    from repro.lint import CODES

    print(f"{'code':8s} {'severity':8s} meaning")
    for info in CODES.values():
        print(f"{info.code:8s} {str(info.severity):8s} {info.title}")
        print(f"{'':8s} {'':8s}   fix: {info.fix}")


def _cmd_lint(args) -> int:
    from repro.lint import LintReport, lint_benchmark, lint_path

    if args.codes:
        _print_code_table()
        return 0

    reports: list[LintReport] = []
    if args.benchmarks:
        from repro.logic import BENCHMARKS

        reports += [lint_benchmark(spec.name) for spec in BENCHMARKS]
    if args.benchmark is not None:
        reports.append(lint_benchmark(args.benchmark))
    if args.target is not None:
        reports.append(lint_path(args.target, fmt=args.format))
    if not reports:
        print("error: nothing to lint (give a file, --benchmark or "
              "--benchmarks)", file=sys.stderr)
        return 2

    exit_code = 0
    for report in reports:
        for diagnostic in report:
            print(diagnostic.format())
        print(f"{report.subject}: {report.summary()}")
        exit_code = max(exit_code, report.exit_code)
    return exit_code


def _cmd_sanitize(args) -> int:
    from repro.dsan import (
        code_table, default_root, report_as_json, sanitize_paths,
    )

    if args.codes:
        print(code_table())
        return 0
    paths = list(args.paths) if args.paths else [default_root()]
    report = sanitize_paths(paths)
    if args.format == "json":
        print(report_as_json(report))
    else:
        print(report.format())
    return report.exit_code


def _changed_python_files(anchor: Path) -> list[str]:
    """Locally modified ``.py`` files per ``git status`` near ``anchor``."""
    import subprocess

    base = anchor if anchor.is_dir() else anchor.parent
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"], cwd=base,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=base,
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        raise SimulationError(
            f"--changed needs a git checkout around {base}: {exc}"
        ) from exc
    files: list[str] = []
    for line in status.splitlines():
        if len(line) < 4:
            continue
        path = line[3:]
        if " -> " in path:  # rename: report the new location
            path = path.split(" -> ", 1)[1]
        path = path.strip().strip('"')
        if path.endswith(".py"):
            files.append(str(Path(top) / path))
    return files


def _cmd_check(args) -> int:
    import os

    from repro.static import (
        check_paths,
        code_table,
        default_root,
        default_static_cache_root,
        load_baseline,
        report_as_json,
        report_as_sarif,
        write_baseline,
    )

    if args.codes:
        print(code_table())
        return 0
    paths = list(args.paths) if args.paths else [default_root()]
    select = None
    if args.select:
        select = tuple(
            part.strip() for part in args.select.split(",") if part.strip()
        )
    baseline = None
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    if jobs < 1:
        raise SimulationError(f"--jobs must be >= 0, got {args.jobs}")
    cache_dir = None
    if not args.no_cache:
        cache_dir = (
            args.cache_dir if args.cache_dir is not None
            else default_static_cache_root()
        )
    changed = _changed_python_files(paths[0]) if args.changed else None
    report = check_paths(
        paths, select=select, baseline=baseline, jobs=jobs,
        cache_dir=cache_dir, changed=changed,
    )
    if report.baseline_legacy_matches:
        print(
            f"note: {report.baseline_legacy_matches} baseline entries "
            "matched only by deprecated line-number fingerprints; re-run "
            "--write-baseline to upgrade the baseline file",
            file=sys.stderr,
        )
    if args.write_baseline is not None:
        write_baseline(report, args.write_baseline)
        print(
            f"wrote {len(report.findings) + len(report.baselined)} "
            f"fingerprint(s) to {args.write_baseline}"
        )
        return 0
    if args.format == "json":
        print(report_as_json(report))
    elif args.format == "sarif":
        print(report_as_sarif(report))
    else:
        print(report.format())
    return report.exit_code


def _cmd_report(args) -> int:
    from repro.monitor import build_report, default_ledger_path, read_ledger

    ledger_path = (
        args.ledger if args.ledger is not None else default_ledger_path()
    )
    bench_dir = args.bench_dir
    if bench_dir is None:
        candidate = Path("benchmarks")
        bench_dir = candidate if candidate.is_dir() else None
    report = build_report(
        read_ledger(ledger_path),
        ledger_path=str(ledger_path),
        threshold=args.threshold,
        bench_dir=bench_dir,
    )
    if args.format == "json":
        print(report.as_json())
    elif args.format == "openmetrics":
        print(report.as_openmetrics(), end="")
    else:
        print(report.format())
    return report.exit_code if args.check else 0


def _cmd_benchmark(args) -> int:
    from repro.logic import build_benchmark

    mapped = build_benchmark(args.name)
    print(f"benchmark: {mapped.netlist.name}")
    print(f"  SET devices: {mapped.n_sets}")
    print(f"  junctions:   {mapped.n_junctions}")
    print(f"  islands:     {mapped.circuit.n_islands}")
    print(f"  gates:       {len(mapped.netlist.gates)} (after mapping)")
    print(f"  inputs:      {len(mapped.netlist.inputs)}")
    print(f"  outputs:     {len(mapped.netlist.outputs)}")
    return 0


def _cmd_benchmarks() -> int:
    from repro.logic import BENCHMARKS

    print("paper benchmarks (Figs. 6-7):")
    for spec in BENCHMARKS:
        print(f"  {spec.name:18s} {spec.junctions:5d} junctions  "
              f"({spec.description})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "sanitize":
            return _cmd_sanitize(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "benchmark":
            return _cmd_benchmark(args)
        if args.command == "benchmarks":
            return _cmd_benchmarks()
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
    except (OSError, UnicodeDecodeError) as exc:
        # missing file, permission trouble, undecodable bytes: exit 2
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SemsimError as exc:
        # defective-but-readable input: exit 1, one-line diagnostic.
        # Shard failures arrive as RecoveryError with the worker's
        # exception chained on — print the chain so a retry-exhausted
        # sweep reports its root cause instead of a raw pool traceback.
        print(f"error: {exc}", file=sys.stderr)
        cause = exc.__cause__
        while cause is not None:
            print(
                f"  caused by: {type(cause).__name__}: {cause}",
                file=sys.stderr,
            )
            cause = cause.__cause__
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
