"""repro.monitor — live run monitoring, run ledger, perf reporting.

Three cooperating layers, all strictly out-of-band with respect to the
simulation (results, seeds and dsan event hashes are bit-identical
with monitoring on or off):

* :mod:`repro.monitor.stream` / :mod:`repro.monitor.monitor` — live
  cross-process progress: pooled workers stream telemetry deltas over
  a manager queue to a parent-side :class:`RunMonitor` that renders
  shards done / in flight / retried, aggregate events/second, ETA and
  stalled-shard heartbeat gaps (``repro run --progress``);
* :mod:`repro.monitor.ledger` — the persistent JSONL run ledger every
  ``deck.run`` / ``sweep_iv`` / ``sweep_map`` / ``ensemble_iv``
  invocation appends to while a ledger is installed;
* :mod:`repro.monitor.report` — ``repro report``: perf trajectories
  over the ledger with regression verdicts, JSON and OpenMetrics
  output.
"""

from __future__ import annotations

from repro.monitor.ledger import (
    Ledger,
    RunRecorder,
    active_ledger,
    default_ledger_path,
    fingerprint_circuit,
    fingerprint_workload,
    ledger_session,
    read_ledger,
    repro_cache_dir,
    run_scope,
    set_ledger,
)
from repro.monitor.monitor import (
    RunMonitor,
    current,
    monitor_session,
    set_monitor,
)
from repro.monitor.render import ProgressRenderer, format_snapshot
from repro.monitor.report import (
    DEFAULT_THRESHOLD,
    LedgerReport,
    build_report,
    summarize_bench_artifacts,
)
from repro.monitor.stream import MonitorHandle, ShardEmitter, ShardMessage

__all__ = [
    "DEFAULT_THRESHOLD",
    "Ledger",
    "LedgerReport",
    "MonitorHandle",
    "ProgressRenderer",
    "RunMonitor",
    "RunRecorder",
    "ShardEmitter",
    "ShardMessage",
    "active_ledger",
    "build_report",
    "current",
    "default_ledger_path",
    "fingerprint_circuit",
    "fingerprint_workload",
    "format_snapshot",
    "ledger_session",
    "monitor_session",
    "read_ledger",
    "repro_cache_dir",
    "run_scope",
    "set_ledger",
    "set_monitor",
    "summarize_bench_artifacts",
]
