"""Parent-side live run monitoring: the :class:`RunMonitor`.

The monitor aggregates two information streams about an executing
shard batch, both strictly *out-of-band*:

* **lifecycle calls** from :func:`repro.parallel.pool.execute_shards`
  (shard submitted / finished / retried / resumed) made directly in
  the parent process;
* **progress datagrams** (:class:`repro.monitor.stream.ShardMessage`)
  that pooled workers push onto a ``multiprocessing`` manager queue —
  cumulative event counts and heartbeats, drained by the monitor's
  render thread.

Inline shards (``jobs=1``) write their telemetry straight into the
parent registry, so the monitor reads live event counts from there
instead of the queue.  Either way the monitor never feeds anything
*back* into the run: no seeds, no payloads, no registry mutations —
results and the dsan combined event hash are bit-identical with
monitoring on or off (see ``tests/test_monitor.py``).

Heartbeat gaps surface stalled shards *before*
``ExecutionPolicy.shard_timeout`` fires: a pooled shard whose last
datagram is older than ``stall_after`` seconds is flagged in the
progress line while the pool is still waiting on it.

Install a monitor with :func:`monitor_session`; the pool discovers it
through :func:`current` exactly like the fault-injection and dsan
layers discover theirs.
"""

from __future__ import annotations

import queue as _queue
import sys
import threading
from contextlib import contextmanager
from typing import Any, Iterator, TextIO

from repro.monitor.render import ProgressRenderer
from repro.monitor.stream import (
    DEFAULT_INTERVAL,
    KIND_DONE,
    MonitorHandle,
    ShardMessage,
)
from repro.telemetry import registry as _telemetry
from repro.telemetry.clock import wall_time


class RunMonitor:
    """Aggregate and render the live state of one run's shard batches.

    Thread-safe: lifecycle methods are called from the executing
    thread, datagrams and rendering happen on the monitor's own render
    thread.  All shared state sits behind one lock.
    """

    def __init__(
        self,
        out: TextIO | None = None,
        interval: float = DEFAULT_INTERVAL,
        stall_after: float | None = None,
    ) -> None:
        self.interval = max(float(interval), 0.05)
        self.stall_after = (
            float(stall_after) if stall_after is not None
            else max(6.0 * self.interval, 3.0)
        )
        self.renderer = ProgressRenderer(out if out is not None else sys.stderr)
        self._lock = threading.Lock()
        self._manager: Any = None
        self._channel: Any = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._batch_depth = 0
        # batch state (reset by begin_batch)
        self._total = 0
        self._done = 0
        self._retried = 0
        self._resumed = 0
        self._started = wall_time()
        self._inflight: dict[int, float] = {}          # shard -> submit ts
        self._last_heard: dict[int, float] = {}        # shard -> last datagram ts
        self._shard_events: dict[int, int] = {}        # shard -> cumulative events
        self._registry_base = 0
        self._registry: _telemetry.TelemetryRegistry | None = None
        self._finished_snapshots: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # lifecycle (render thread)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the render/drain thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-monitor", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop rendering and release the manager process."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._channel = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll()

    def poll(self) -> None:
        """Drain pending datagrams and render one update (also called
        directly by tests for deterministic stepping)."""
        self._drain()
        with self._lock:
            if self._batch_depth <= 0 and self._total == 0:
                return
            snap = self._snapshot_locked()
        self.renderer.update(snap, wall_time())

    # ------------------------------------------------------------------
    # pool-facing lifecycle (executing thread)
    # ------------------------------------------------------------------
    def begin_batch(self, total: int, resumed: int = 0) -> bool:
        """Open a shard batch; returns False for nested batches.

        Only the outermost :func:`execute_shards` call of a run is
        monitored — an inline ensemble replica re-enters the pool for
        its inner sweep, and those inner shards are already accounted
        for by the outer batch.
        """
        with self._lock:
            self._batch_depth += 1
            if self._batch_depth > 1:
                return False
            self._total = total
            self._done = resumed
            self._retried = 0
            self._resumed = resumed
            self._started = wall_time()
            self._inflight.clear()
            self._last_heard.clear()
            self._shard_events.clear()
            self._registry = _telemetry.ACTIVE
            self._registry_base = (
                self._registry.peek_counter("solver.events")
                if self._registry is not None else 0
            )
            return True

    def end_batch(self) -> None:
        """Close the current batch and print the terminal summary."""
        self._drain()
        with self._lock:
            self._batch_depth = max(self._batch_depth - 1, 0)
            if self._batch_depth > 0:
                return
            self._inflight.clear()
            snap = self._snapshot_locked()
            self._finished_snapshots.append(snap)
        self.renderer.finish(snap)

    def shard_started(self, shard: int, attempt: int) -> None:
        now = wall_time()
        with self._lock:
            self._inflight[shard] = now
            self._last_heard.setdefault(shard, now)

    def shard_finished(self, shard: int) -> None:
        with self._lock:
            self._inflight.pop(shard, None)
            self._last_heard.pop(shard, None)
            self._done += 1

    def shard_retried(self, shard: int) -> None:
        with self._lock:
            self._inflight.pop(shard, None)
            self._last_heard.pop(shard, None)
            self._retried += 1

    def worker_channel(self, shard: int) -> MonitorHandle:
        """The picklable handle a pooled worker streams progress with.

        The manager (and its queue) is created lazily on first use, so
        purely inline runs never pay for a manager process.
        """
        with self._lock:
            if self._channel is None:
                import multiprocessing

                self._manager = multiprocessing.Manager()
                self._channel = self._manager.Queue()
            return MonitorHandle(self._channel, shard, self.interval)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        channel = self._channel
        if channel is None:
            return
        now = wall_time()
        while True:
            try:
                message = channel.get_nowait()
            except _queue.Empty:
                return
            except (OSError, EOFError, BrokenPipeError):
                return
            if not isinstance(message, ShardMessage):
                continue
            with self._lock:
                self._last_heard[message.shard] = now
                self._shard_events[message.shard] = max(
                    self._shard_events.get(message.shard, 0),
                    int(message.events),
                )
                if message.kind == KIND_DONE:
                    # terminal datagram: the shard's event count is final
                    self._last_heard.pop(message.shard, None)

    def _snapshot_locked(self) -> dict[str, Any]:
        now = wall_time()
        elapsed = max(now - self._started, 1e-9)
        inline_events = 0
        if self._registry is not None:
            inline_events = max(
                self._registry.peek_counter("solver.events")
                - self._registry_base,
                0,
            )
        events = inline_events + sum(self._shard_events.values())
        fresh_done = self._done - self._resumed
        eta = None
        remaining = self._total - self._done
        if fresh_done > 0 and remaining > 0:
            eta = elapsed / fresh_done * remaining
        stalled = sorted(
            (shard, now - heard)
            for shard, heard in self._last_heard.items()
            if shard in self._inflight and now - heard >= self.stall_after
        )
        return {
            "total": self._total,
            "done": self._done,
            "in_flight": len(self._inflight),
            "retried": self._retried,
            "resumed": self._resumed,
            "events": events,
            "events_per_second": events / elapsed if events else 0.0,
            "eta_seconds": eta,
            "elapsed_seconds": elapsed,
            "stalled": stalled,
        }

    def snapshot(self) -> dict[str, Any]:
        """The current aggregate state (for tests and the CLI)."""
        self._drain()
        with self._lock:
            return self._snapshot_locked()


#: The installed monitor; ``None`` means live monitoring is off.  The
#: pool reads this exactly like ``telemetry.registry.ACTIVE``.
_ACTIVE: RunMonitor | None = None


def current() -> RunMonitor | None:
    """The active run monitor, or ``None`` when monitoring is off."""
    return _ACTIVE


def set_monitor(monitor: RunMonitor | None) -> RunMonitor | None:
    """Install ``monitor`` as the active monitor; returns the previous
    one.  Parent-side only — workers never install monitors."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = monitor
    return previous


@contextmanager
def monitor_session(
    out: TextIO | None = None,
    interval: float = DEFAULT_INTERVAL,
    stall_after: float | None = None,
) -> Iterator[RunMonitor]:
    """Scoped live monitoring: install a :class:`RunMonitor`, start its
    render thread, restore the previous monitor (usually ``None``) and
    release its resources on exit.
    """
    monitor = RunMonitor(out=out, interval=interval, stall_after=stall_after)
    previous = set_monitor(monitor)
    monitor.start()
    try:
        yield monitor
    finally:
        set_monitor(previous)
        monitor.close()
