"""Progress rendering for ``repro run --progress``.

One renderer, two behaviours:

* on a TTY the status line redraws in place (``\\r`` + erase-line), so
  a long sweep shows a live ticker;
* on anything else (CI logs, redirected stderr) it prints a plain
  line at a slower cadence, so logs stay readable instead of filling
  with control characters.

The renderer is purely presentational: it receives the snapshot dicts
:class:`repro.monitor.monitor.RunMonitor` builds and never touches the
run itself.
"""

from __future__ import annotations

from typing import Any, TextIO

#: Seconds between plain (non-TTY) progress lines.
PLAIN_PERIOD = 2.0


def format_snapshot(snap: dict[str, Any]) -> str:
    """One status line from a monitor snapshot."""
    total = snap.get("total", 0)
    done = snap.get("done", 0)
    parts = [f"progress: {done}/{total} shards"]
    inflight = snap.get("in_flight", 0)
    if inflight:
        parts.append(f"{inflight} in flight")
    retried = snap.get("retried", 0)
    if retried:
        parts.append(f"{retried} retried")
    resumed = snap.get("resumed", 0)
    if resumed:
        parts.append(f"{resumed} resumed")
    events = snap.get("events", 0)
    if events:
        parts.append(f"{events:,} events")
    eps = snap.get("events_per_second", 0.0)
    if eps:
        parts.append(f"{eps:,.0f} ev/s")
    eta = snap.get("eta_seconds")
    if eta is not None:
        parts.append(f"ETA {_format_duration(eta)}")
    for shard, age in snap.get("stalled", []):
        parts.append(f"shard #{shard} stalled {age:.0f}s")
    return " · ".join(parts)


def _format_duration(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"


class ProgressRenderer:
    """Write monitor snapshots to a stream, TTY-aware."""

    def __init__(self, out: TextIO, plain_period: float = PLAIN_PERIOD) -> None:
        self.out = out
        self.plain_period = plain_period
        self.tty = bool(getattr(out, "isatty", lambda: False)())
        self._last_plain = -plain_period  # first update prints immediately
        self._last_line = ""
        self._dirty = False

    def update(self, snap: dict[str, Any], now: float) -> None:
        """Render one snapshot (``now`` is a monotonic timestamp)."""
        line = format_snapshot(snap)
        if self.tty:
            if line != self._last_line:
                self.out.write("\r\x1b[2K" + line)
                self.out.flush()
                self._dirty = True
        elif (
            now - self._last_plain >= self.plain_period
            and line != self._last_line
        ):
            self.out.write(line + "\n")
            self.out.flush()
            self._last_plain = now
        self._last_line = line

    def finish(self, snap: dict[str, Any]) -> None:
        """Write the terminal summary line and release the TTY line."""
        line = format_snapshot(snap)
        if self.tty:
            self.out.write("\r\x1b[2K" + line + "\n")
        elif line != self._last_line:
            self.out.write(line + "\n")
        self.out.flush()
        self._dirty = False
        self._last_line = line
