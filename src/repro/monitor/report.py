"""Performance-trajectory reporting over the run ledger.

``repro report`` answers "did this PR make us slower?" with machine
checks instead of eyeballs:

* ledger records are grouped by ``(fingerprint, kind, solver)`` — the
  same workload run by the same solver — and ordered by timestamp;
* within each group the **latest** run's events/second is compared
  against the **median of the earlier runs** (median, not best, so one
  lucky fast run doesn't poison the baseline); a drop beyond
  ``threshold`` is an explicit ``REGRESSED`` verdict and ``--check``
  turns any verdict into a nonzero exit for CI;
* ``BENCH_*.json`` artifacts from :mod:`benchmarks._harness` are
  summarised alongside, so the bench trajectory and the ledger
  trajectory read from one place;
* ``--format openmetrics`` renders the latest snapshot per group as an
  OpenMetrics text exposition — the exact payload the future HTTP
  monitoring service will serve from its ``/metrics`` endpoint.
"""

from __future__ import annotations

import dataclasses
import json
import statistics
from pathlib import Path
from typing import Any

from repro.telemetry.clock import iso_utc
from repro.telemetry.exporters import openmetrics_exposition

#: Default tolerated events/second drop before a run is REGRESSED.
DEFAULT_THRESHOLD = 0.2

#: Verdict strings, in increasing severity.
VERDICT_BASELINE = "baseline"
VERDICT_OK = "ok"
VERDICT_IMPROVED = "improved"
VERDICT_REGRESSED = "REGRESSED"


@dataclasses.dataclass
class RunRow:
    """One ledger record reduced to the trajectory columns."""

    run_id: str
    ts: float
    code_version: str
    jobs: Any
    events: int
    events_per_second: float
    wall_seconds: float
    verdict: str = VERDICT_BASELINE
    change: float | None = None  # fractional eps change vs the baseline


@dataclasses.dataclass
class WorkloadTrajectory:
    """All runs of one ``(fingerprint, kind, solver)`` workload."""

    fingerprint: str
    kind: str
    solver: str
    label: str
    rows: list[RunRow]

    @property
    def regressed(self) -> bool:
        return any(row.verdict == VERDICT_REGRESSED for row in self.rows)

    @property
    def latest(self) -> RunRow:
        return self.rows[-1]


@dataclasses.dataclass
class LedgerReport:
    """Everything ``repro report`` renders."""

    ledger_path: str
    records: int
    trajectories: list[WorkloadTrajectory]
    threshold: float
    bench_summary: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def regressions(self) -> list[WorkloadTrajectory]:
        return [t for t in self.trajectories if t.regressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    # ------------------------------------------------------------------
    def format(self) -> str:
        lines = [
            f"perf trajectory ({self.records} record(s) in "
            f"{self.ledger_path})"
        ]
        if not self.trajectories:
            lines.append("  (no intact ledger records)")
        for trajectory in self.trajectories:
            lines.append("")
            lines.append(
                f"workload {trajectory.fingerprint[:12]} · "
                f"{trajectory.kind} · solver={trajectory.solver}"
                + (f" · {trajectory.label}" if trajectory.label else "")
            )
            lines.append(
                f"  {'when':20s} {'code':14s} {'jobs':>4s} {'events':>10s} "
                f"{'ev/s':>12s} {'wall':>9s}  verdict"
            )
            for row in trajectory.rows:
                change = (
                    f" ({row.change:+.1%})" if row.change is not None else ""
                )
                lines.append(
                    f"  {iso_utc(row.ts):20s} {row.code_version[:14]:14s} "
                    f"{str(row.jobs):>4s} {row.events:>10,d} "
                    f"{row.events_per_second:>12,.1f} "
                    f"{row.wall_seconds:>8.2f}s  {row.verdict}{change}"
                )
        if self.bench_summary:
            lines.append("")
            lines.append("bench artifacts")
            for name, entry in sorted(self.bench_summary.items()):
                lines.append(f"  {name}: {entry}")
        lines.append("")
        if self.regressions:
            names = ", ".join(
                f"{t.fingerprint[:12]}/{t.solver}" for t in self.regressions
            )
            lines.append(
                f"verdict: {len(self.regressions)} workload(s) regressed "
                f"beyond {self.threshold:.0%}: {names}"
            )
        else:
            lines.append(
                f"verdict: no events/second regression beyond "
                f"{self.threshold:.0%}"
            )
        return "\n".join(lines)

    def as_json(self) -> str:
        payload = {
            "ledger": self.ledger_path,
            "records": self.records,
            "threshold": self.threshold,
            "regressed": bool(self.regressions),
            "workloads": [
                {
                    "fingerprint": t.fingerprint,
                    "kind": t.kind,
                    "solver": t.solver,
                    "label": t.label,
                    "regressed": t.regressed,
                    "runs": [dataclasses.asdict(row) for row in t.rows],
                }
                for t in self.trajectories
            ],
            "bench": self.bench_summary,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def as_openmetrics(self) -> str:
        """Latest snapshot per workload as one OpenMetrics exposition."""
        chunks: list[str] = []
        for trajectory in self.trajectories:
            latest = trajectory.latest
            metrics: dict[str, dict[str, Any]] = {
                "counters": {"run.events": latest.events},
                "gauges": {
                    "run.events_per_second": latest.events_per_second,
                    "run.wall_seconds": latest.wall_seconds,
                    "run.regressed": 1.0 if trajectory.regressed else 0.0,
                },
                "histograms": {},
            }
            chunks.append(openmetrics_exposition(
                metrics,
                labels={
                    "fingerprint": trajectory.fingerprint,
                    "kind": trajectory.kind,
                    "solver": trajectory.solver,
                },
                terminate=False,
            ))
        return "".join(chunks) + "# EOF\n"


# ----------------------------------------------------------------------
# building the report
# ----------------------------------------------------------------------

def _judge(rows: list[RunRow], threshold: float) -> None:
    """Assign verdicts in place: each run after the first is compared
    against the median events/second of all *earlier* runs."""
    for i, row in enumerate(rows):
        if i == 0:
            row.verdict = VERDICT_BASELINE
            continue
        baseline = statistics.median(
            earlier.events_per_second for earlier in rows[:i]
        )
        if baseline <= 0.0:
            row.verdict = VERDICT_OK
            continue
        change = row.events_per_second / baseline - 1.0
        row.change = change
        if change < -threshold:
            row.verdict = VERDICT_REGRESSED
        elif change > threshold:
            row.verdict = VERDICT_IMPROVED
        else:
            row.verdict = VERDICT_OK


def build_report(
    records: list[dict[str, Any]],
    *,
    ledger_path: str = "",
    threshold: float = DEFAULT_THRESHOLD,
    bench_dir: str | Path | None = None,
) -> LedgerReport:
    """Group ledger records into judged workload trajectories."""
    groups: dict[tuple[str, str, str], list[dict[str, Any]]] = {}
    for record in records:
        fingerprint = str(record.get("fingerprint", ""))
        if not fingerprint:
            continue
        key = (
            fingerprint,
            str(record.get("kind", "")),
            str(record.get("solver", "")),
        )
        groups.setdefault(key, []).append(record)
    trajectories: list[WorkloadTrajectory] = []
    for (fingerprint, kind, solver), members in sorted(groups.items()):
        members.sort(key=lambda r: float(r.get("ts", 0.0)))
        rows = [
            RunRow(
                run_id=str(member.get("run_id", "")),
                ts=float(member.get("ts", 0.0)),
                code_version=str(member.get("code_version", "")),
                jobs=member.get("jobs"),
                events=int(member.get("events", 0)),
                events_per_second=float(member.get("events_per_second", 0.0)),
                wall_seconds=float(member.get("wall_seconds", 0.0)),
            )
            for member in members
        ]
        _judge(rows, threshold)
        trajectories.append(WorkloadTrajectory(
            fingerprint=fingerprint,
            kind=kind,
            solver=solver,
            label=str(members[-1].get("label", "")),
            rows=rows,
        ))
    return LedgerReport(
        ledger_path=ledger_path,
        records=len(records),
        trajectories=trajectories,
        threshold=threshold,
        bench_summary=(
            summarize_bench_artifacts(bench_dir)
            if bench_dir is not None else {}
        ),
    )


# ----------------------------------------------------------------------
# bench artifacts
# ----------------------------------------------------------------------

def summarize_bench_artifacts(bench_dir: str | Path) -> dict[str, Any]:
    """One-line summaries of every ``BENCH_*.json`` under ``bench_dir``.

    ``BENCH_telemetry.json`` maps bench name to its latest payload;
    ``BENCH_parallel.json`` (and other appending artifacts) contribute
    their most recent dated record.  Unreadable artifacts are reported
    as such instead of aborting the report.
    """
    summary: dict[str, Any] = {}
    root = Path(bench_dir)
    if not root.is_dir():
        return summary
    for artifact in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(artifact.read_text())
        except (OSError, ValueError):
            summary[artifact.name] = "unreadable"
            continue
        if isinstance(data, list) and data:
            latest = data[-1]
            if isinstance(latest, dict):
                rates = _extract_rates(latest.get("rows", []))
                summary[artifact.name] = {
                    "runs": len(data),
                    "latest": latest.get("recorded", "?"),
                    **({"events_per_second": rates} if rates else {}),
                }
            else:
                summary[artifact.name] = {"runs": len(data)}
        elif isinstance(data, dict):
            summary[artifact.name] = {"benches": sorted(data.keys())}
        else:
            summary[artifact.name] = "empty"
    return summary


def _extract_rates(rows: Any) -> dict[str, float]:
    """Pull per-solver events/second out of bench rows when present."""
    rates: dict[str, float] = {}
    if not isinstance(rows, list):
        return rates
    for row in rows:
        if not isinstance(row, dict):
            continue
        eps = row.get("events_per_second")
        if eps is None:
            continue
        key = str(
            row.get("solver")
            or row.get("label")
            or f"jobs={row.get('jobs', '?')}"
        )
        try:
            rates[key] = float(eps)
        except (TypeError, ValueError):
            continue
    return rates
