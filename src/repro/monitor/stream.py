"""Out-of-band live metric streaming: the worker half.

Workers in :func:`repro.parallel.pool.execute_shards` run one shard as
a single opaque function call; while it executes, the only party that
knows how far along it is is the worker's own telemetry registry
(``solver.events`` et al. tick on every tunnel event).  This module
ships that knowledge to the parent *without touching the simulation*:

* a :class:`ShardEmitter` daemon thread samples the worker-local
  registry every ``interval`` seconds and pushes a :class:`ShardMessage`
  — cumulative event count plus incremental counter deltas (see
  :func:`repro.telemetry.registry.snapshot_delta`) — onto a
  ``multiprocessing`` manager queue;
* the thread only *reads* metric values and the wall clock.  It never
  touches the solver, the RNG, the payload or the result, so results,
  seeds and the dsan combined event hash are bit-identical with
  monitoring on or off.  The messages are advisory: losing every one
  of them changes nothing but the progress display.

The parent half (aggregation, rendering) lives in
:mod:`repro.monitor.monitor`.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any

from repro.telemetry import registry as _telemetry
from repro.telemetry.clock import wall_time
from repro.telemetry.registry import snapshot_delta

#: Message kinds a shard emits over the monitor queue.
KIND_START = "start"
KIND_PROGRESS = "progress"
KIND_DONE = "done"

#: Default sampling period (seconds) of the worker-side emitter; also
#: the parent's render cadence.
DEFAULT_INTERVAL = 0.5

#: The counters worth streaming live (everything else rides back in the
#: end-of-shard snapshot as before).
STREAMED_COUNTERS = ("solver.events", "solver.steps", "solver.deadline_advances")


@dataclasses.dataclass
class ShardMessage:
    """One progress datagram from a shard to the parent monitor.

    ``events`` is the shard's *cumulative* realised tunnel-event count
    (robust to lost messages: the latest message alone is sufficient);
    ``counters`` carries the incremental deltas since the previous
    message for anything else worth aggregating live.  ``elapsed`` is
    the shard's own monotonic clock, used parent-side only for
    heartbeat-gap / stall detection.
    """

    shard: int
    kind: str
    events: int = 0
    elapsed: float = 0.0
    counters: dict[str, int] = dataclasses.field(default_factory=dict)


class ShardEmitter:
    """Worker-side sampling thread behind one shard's progress stream.

    Start it around the real worker call::

        emitter = ShardEmitter(queue, shard=3, interval=0.5)
        emitter.start()
        try:
            value = worker(payload)
        finally:
            emitter.stop()

    ``stop()`` joins the thread and sends the final ``done`` message,
    so the parent always sees a terminal datagram even for shards that
    finish between two sampling ticks.
    """

    def __init__(
        self,
        queue: Any,
        shard: int,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        self._queue = queue
        self._shard = shard
        self._interval = max(float(interval), 0.05)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = wall_time()
        self._last_sent: dict[str, dict[str, Any]] | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._send(KIND_START)
        self._thread = threading.Thread(
            target=self._run, name=f"repro-monitor-shard-{self._shard}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._send(KIND_DONE)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._send(KIND_PROGRESS)

    def _sample(self) -> tuple[int, dict[str, int]]:
        """Read the active registry's counters without mutating it.

        The solver thread inserts counters concurrently; a dict resize
        mid-iteration raises ``RuntimeError``, in which case this tick
        is simply skipped (the next one sees a settled dict).
        """
        registry = _telemetry.ACTIVE
        if registry is None:
            return 0, {}
        try:
            current = registry.metrics()
        except RuntimeError:
            return self._events_only(registry), {}
        delta = snapshot_delta(current, self._last_sent)
        self._last_sent = current
        counters = {
            name: int(value)
            for name, value in delta.get("counters", {}).items()
            if name in STREAMED_COUNTERS
        }
        return int(current.get("counters", {}).get("solver.events", 0)), counters

    @staticmethod
    def _events_only(registry: _telemetry.TelemetryRegistry) -> int:
        return registry.peek_counter("solver.events")

    def _send(self, kind: str) -> None:
        events, counters = self._sample()
        message = ShardMessage(
            shard=self._shard,
            kind=kind,
            events=events,
            elapsed=wall_time() - self._started,
            counters=counters,
        )
        try:
            self._queue.put(message)
        except (OSError, EOFError, BrokenPipeError):
            # the parent's manager went away (run aborted); progress is
            # advisory, so drop the datagram and stop sampling
            self._stop.set()


@dataclasses.dataclass
class MonitorHandle:
    """The picklable parcel the pool hands each worker: where to send
    progress (a manager-queue proxy) and how often."""

    queue: Any
    shard: int
    interval: float = DEFAULT_INTERVAL

    def emitter(self) -> ShardEmitter:
        return ShardEmitter(self.queue, self.shard, self.interval)
