"""The persistent run ledger: one JSONL record per simulation run.

Every ``deck.run`` / ``sweep_iv`` / ``sweep_map`` / ``ensemble_iv``
invocation executed while a ledger is installed appends one structured
record — the durable identity card of the run the future campaign
cache will key on:

``run_id``
    Unique id derived from the fingerprint, seed, time and pid.
``fingerprint``
    Content hash of the *workload*: the circuit's components, the
    sweep values, the per-point event budget and the physics knobs —
    everything that defines the problem, nothing that merely tunes its
    execution (seed, jobs, chunks and solver are separate fields).
``events`` / ``events_per_second`` / ``wall_seconds`` / ``solver``
    The per-solver throughput trajectory ``repro report`` matches
    across runs.
``counters``
    Recovery/pool activity: resume hits, shard retries, pool rebuilds.
``event_hash``
    The dsan combined event-stream hash when the run maintained one.

The ledger lives at ``~/.cache/repro/ledger.jsonl`` by default; the
``REPRO_LEDGER`` environment variable or an explicit path overrides
it.  Appends are single ``write`` calls of one line each, and
:func:`read_ledger` tolerates a torn final line, so a crash mid-append
never corrupts the history.

Recording is opt-in at the library level: install a ledger with
:func:`ledger_session` (the CLI does this for every ``repro run``
unless ``--no-ledger``), and :func:`run_scope` becomes a no-op
otherwise.  Nested invocations (an ensemble's inner sweeps, a deck's
inner ensemble) are suppressed — one user-visible run, one record.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.telemetry import registry as _telemetry
from repro.telemetry.clock import utc_time, wall_time

if TYPE_CHECKING:  # import cycle guard: circuit/config are heavy imports
    from repro.circuit.circuit import Circuit
    from repro.core.base import SolverStats
    from repro.core.config import SimulationConfig

#: Ledger record schema version (bump on incompatible field changes).
SCHEMA_VERSION = 1

#: Recovery/pool/cache counters copied from the parent telemetry
#: registry into each record (deltas over the run).
TRACKED_COUNTERS = (
    "recovery.resume_hits",
    "recovery.shards_retried",
    "recovery.pool_rebuilds",
    "campaign.cell_hits",
    "campaign.cells_computed",
)


def repro_cache_dir() -> Path:
    """The durable per-user cache root shared by the run ledger and the
    campaign result store.

    ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.  Service and
    CI containers frequently run without a usable ``$HOME`` — either
    ``Path.home()`` raises outright or resolves to ``/`` — and in that
    case the cache falls back to a repo-local ``.repro/`` directory
    instead of failing the run or scattering state under the root
    directory.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    try:
        home: Path | None = Path.home()
    except (KeyError, RuntimeError, OSError):
        home = None
    if home is None or str(home) in ("", "/"):
        return Path(".repro")
    return home / ".cache" / "repro"


def default_ledger_path() -> Path:
    """``$REPRO_LEDGER`` when set, else ``<cache dir>/ledger.jsonl``
    (see :func:`repro_cache_dir` for the no-``$HOME`` fallback)."""
    override = os.environ.get("REPRO_LEDGER")
    if override:
        path = Path(override)
        try:
            return path.expanduser()
        except RuntimeError:
            # "~" with no resolvable home: use the path verbatim
            return path
    return repro_cache_dir() / "ledger.jsonl"


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------

def _hash_text(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def fingerprint_circuit(circuit: "Circuit") -> str:
    """Content hash of a frozen circuit's components.

    Dataclass reprs are stable (``repr(float)`` is the shortest
    round-trip form), so the same circuit fingerprints identically
    across processes, machines and sessions.
    """
    parts = [
        repr(circuit.junctions),
        repr(circuit.capacitors),
        repr(circuit.sources),
        repr(circuit.background_charges),
        repr(circuit.superconductor),
    ]
    return _hash_text("\n".join(parts))


def _config_identity(config: "SimulationConfig") -> str:
    """The physics knobs of a config — not its seed, solver choice or
    bookkeeping flags, which vary between runs of the same workload."""
    skip = {"seed", "solver", "event_hash"}
    fields = {
        field.name: getattr(config, field.name)
        for field in dataclasses.fields(config)
        if field.name not in skip
    }
    return repr(sorted(fields.items()))


def fingerprint_workload(
    circuit: "Circuit",
    config: "SimulationConfig",
    *,
    kind: str,
    values: Any = None,
    jumps_per_point: int = 0,
    extra: Sequence[str] = (),
) -> str:
    """Fingerprint of one runnable workload: circuit + sweep shape +
    event budget + physics configuration.

    ``extra`` appends further identity parts (the campaign layer adds
    the solver, measured junctions and parameter-space axes); an empty
    ``extra`` leaves historical fingerprints unchanged.
    """
    parts = [
        fingerprint_circuit(circuit),
        _config_identity(config),
        kind,
        repr([float(v) for v in values] if values is not None else None),
        str(int(jumps_per_point)),
    ]
    parts.extend(str(part) for part in extra)
    return _hash_text("\n".join(parts))


# ----------------------------------------------------------------------
# the ledger object
# ----------------------------------------------------------------------

def _detect_code_version() -> str:
    """``<package version>+<git short sha>`` when available."""
    from repro import __version__

    version = __version__
    try:
        import subprocess

        root = Path(__file__).resolve().parents[3]
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=5.0,
        )
        if probe.returncode == 0 and probe.stdout.strip():
            return f"{version}+{probe.stdout.strip()}"
    except (OSError, subprocess.SubprocessError):
        pass
    return version


class Ledger:
    """Appends run records to one JSONL file."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_ledger_path()
        self.code_version = _detect_code_version()
        self._sequence = 0
        self._depth = 0

    def append(self, record: dict[str, Any]) -> None:
        """Append one record as one ``os.write`` on an ``O_APPEND`` fd.

        Buffered text appends can interleave *partial* lines when two
        runs (different processes sharing one ledger — exactly the
        overlapping-user scenario the campaign cache serves) flush
        concurrently, corrupting more than the tolerated torn final
        line.  A single ``write(2)`` on an ``O_APPEND`` descriptor is
        atomic with respect to the file offset, so concurrent appends
        produce whole interleaved lines and a crash mid-append tears at
        most the final one.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def next_run_id(self, fingerprint: str, timestamp: float) -> str:
        self._sequence += 1
        raw = f"{fingerprint}:{timestamp!r}:{os.getpid()}:{self._sequence}"
        return _hash_text(raw)


def read_ledger(path: str | Path) -> list[dict[str, Any]]:
    """Read every intact record; a torn or corrupt line (crash during
    append) is skipped rather than fatal."""
    records: list[dict[str, Any]] = []
    ledger_file = Path(path)
    if not ledger_file.exists():
        return records
    with open(ledger_file, encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


# ----------------------------------------------------------------------
# active-ledger plumbing (parent-side only)
# ----------------------------------------------------------------------

#: The installed ledger; ``None`` disables recording.  Only ever set in
#: the parent process (CLI / user session) — pool workers never install
#: one, so library calls inside workers record nothing.
_ACTIVE: Ledger | None = None


def active_ledger() -> Ledger | None:
    """The installed ledger, or ``None`` while recording is off."""
    return _ACTIVE


def set_ledger(ledger: Ledger | None) -> Ledger | None:
    """Install ``ledger``; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ledger
    return previous


@contextmanager
def ledger_session(path: str | Path | None = None) -> Iterator[Ledger]:
    """Scoped recording: install a :class:`Ledger`, restore the
    previous one (usually ``None``) on exit."""
    ledger = Ledger(path)
    previous = set_ledger(ledger)
    try:
        yield ledger
    finally:
        set_ledger(previous)


class RunRecorder:
    """Collects one run's identity and outcome, then appends the record.

    Created by :func:`run_scope`; the owning entry point calls
    :meth:`commit` with the workload identity once the run finishes.
    A recorder snapshots the parent registry's recovery counters at
    creation so the record carries this run's deltas, not the
    session's cumulative totals.
    """

    def __init__(self, ledger: Ledger, kind: str) -> None:
        self._ledger = ledger
        self.kind = kind
        self._t0 = wall_time()
        self._registry = _telemetry.ACTIVE
        self._counter_base = {
            name: self._registry.peek_counter(name)
            for name in TRACKED_COUNTERS
        } if self._registry is not None else {}

    def _counter_deltas(self) -> dict[str, int]:
        if self._registry is None:
            return {name.split(".", 1)[1]: 0 for name in TRACKED_COUNTERS}
        return {
            name.split(".", 1)[1]: (
                self._registry.peek_counter(name) - self._counter_base[name]
            )
            for name in TRACKED_COUNTERS
        }

    def commit(
        self,
        *,
        circuit: "Circuit",
        config: "SimulationConfig",
        values: Any = None,
        jumps_per_point: int = 0,
        label: str = "",
        solver: str | None = None,
        seed: Any = None,
        jobs: Any = None,
        chunks: int | None = None,
        replicas: int | None = None,
        stats: "SolverStats | None" = None,
        event_hash: str | None = None,
    ) -> dict[str, Any]:
        """Build and append this run's record; returns it."""
        from repro.parallel.seeds import describe_seed

        wall = wall_time() - self._t0
        timestamp = utc_time()
        fingerprint = fingerprint_workload(
            circuit, config, kind=self.kind,
            values=values, jumps_per_point=jumps_per_point,
        )
        events = int(stats.events) if stats is not None else 0
        record: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "run_id": self._ledger.next_run_id(fingerprint, timestamp),
            "ts": timestamp,
            "kind": self.kind,
            "label": label,
            "fingerprint": fingerprint,
            "solver": solver if solver is not None else config.solver,
            "seed": describe_seed(seed if seed is not None else config.seed),
            "jobs": jobs,
            "chunks": chunks,
            "replicas": replicas,
            "points": len(values) if values is not None else 1,
            "code_version": self._ledger.code_version,
            "wall_seconds": wall,
            "events": events,
            "events_per_second": events / wall if wall > 0.0 else 0.0,
            "counters": self._counter_deltas(),
            "event_hash": event_hash,
        }
        self._ledger.append(record)
        return record


@contextmanager
def run_scope(kind: str) -> Iterator[RunRecorder | None]:
    """Recording scope for one library entry point.

    Yields a :class:`RunRecorder` when an active ledger is installed
    and this is the *outermost* scope, ``None`` otherwise — so an
    ensemble's inner ``sweep_iv`` calls (or a deck's inner ensemble)
    never append their own records.  The depth guard lives on the
    ledger object and is only ever touched in the process that
    installed it; pool workers see no active ledger at all.
    """
    ledger = _ACTIVE
    if ledger is None or ledger._depth > 0:
        yield None
        return
    ledger._depth += 1
    try:
        yield RunRecorder(ledger, kind)
    finally:
        ledger._depth -= 1
