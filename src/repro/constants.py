"""Physical constants used throughout the simulator.

All quantities are in SI units: energies in joules, voltages in volts,
capacitances in farads, resistances in ohms, temperatures in kelvin and
times in seconds.  The values follow the 2019 SI redefinition, where the
elementary charge, Boltzmann constant and Planck constant are exact.
"""

from __future__ import annotations

import math

from repro.errors import PhysicsError
from repro.static import units

#: Elementary charge (C).  Exact since the 2019 SI redefinition.
E_CHARGE = 1.602176634e-19

#: Boltzmann constant (J/K).  Exact.
K_B = 1.380649e-23

#: Planck constant (J*s).  Exact.
H_PLANCK = 6.62607015e-34

#: Reduced Planck constant (J*s).
HBAR = H_PLANCK / (2.0 * math.pi)

#: Superconducting resistance quantum for Cooper pairs, R_Q = h / (4 e^2).
#: Roughly 6.45 kOhm; junctions with R_N >> R_Q are in the incoherent
#: Cooper-pair tunneling regime assumed by the paper (Sec. III-A).
R_QUANTUM = H_PLANCK / (4.0 * E_CHARGE**2)

#: Single-electron resistance quantum (von Klitzing constant),
#: R_K = h / e^2, roughly 25.8 kOhm.  Orthodox theory treats tunneling
#: perturbatively and requires R_T >> R_K; junctions below it leak
#: charge quantum-coherently and the rate equations lose validity.
R_K = H_PLANCK / E_CHARGE**2

#: BCS weak-coupling ratio Delta(0) = BCS_RATIO * k_B * Tc.
BCS_RATIO = 1.764

#: Electron-volt in joules, for convenient conversions in tests/benches.
EV = E_CHARGE

#: One milli-electron-volt in joules.
MEV = 1.0e-3 * E_CHARGE


@units("temperature: K -> J")
def thermal_energy(temperature: float) -> float:
    """Return ``k_B * T`` in joules for a temperature in kelvin.

    Raises :class:`repro.errors.PhysicsError` for negative temperatures,
    keeping the package contract that every deliberate error derives
    from :class:`repro.errors.SemsimError`.
    """
    if temperature < 0.0:
        raise PhysicsError(f"temperature must be >= 0 K, got {temperature}")
    return K_B * temperature
