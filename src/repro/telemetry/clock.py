"""The repository's single wall-clock timing utility.

Every wall-time measurement in the package — the engine's
:class:`~repro.core.engine.RunResult` wall time, the Fig. 6
extrapolation machinery in :mod:`repro.analysis.timing`, telemetry
spans — goes through this module, so there is exactly one definition
of "wall time" (``time.perf_counter``: monotonic, highest available
resolution) and one place to change it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, TypeVar

T = TypeVar("T")


def wall_time() -> float:
    """Monotonic wall-clock timestamp in seconds.

    Only differences of these values are meaningful.
    """
    return time.perf_counter()


def utc_time() -> float:
    """Seconds since the Unix epoch (UTC).

    The one *absolute* timestamp source in the package — used where a
    record must be comparable across processes and machines (the run
    ledger, bench artifacts), never inside simulation code, where only
    :func:`wall_time` differences are meaningful.
    """
    return time.time()


def iso_utc(timestamp: float) -> str:
    """Render an epoch timestamp as ``YYYY-mm-ddTHH:MM:SSZ`` (UTC)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(timestamp))


class Stopwatch:
    """Minimal monotonic stopwatch.

    >>> watch = Stopwatch()
    >>> ...              # doctest: +SKIP
    >>> watch.elapsed()  # doctest: +SKIP
    0.37
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = wall_time()

    def restart(self) -> None:
        """Reset the elapsed time to zero."""
        self._start = wall_time()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return wall_time() - self._start


def time_call(
    fn: Callable[..., T], *args: Any, **kwargs: Any
) -> tuple[float, T]:
    """``(wall_seconds, result)`` of one call."""
    start = wall_time()
    result = fn(*args, **kwargs)
    return wall_time() - start, result
