"""Process-wide instrumentation registry: spans, counters, gauges,
histograms and a bounded trace-event buffer.

Design contract — **zero cost when off**:

* telemetry is *disabled* whenever no registry is installed
  (:data:`ACTIVE` is ``None``, the default);
* hot code pays exactly one module-attribute load and one ``is None``
  test per instrumented operation while disabled (the solvers read
  ``registry.ACTIVE`` directly; :func:`span` returns a shared no-op
  context manager without allocating);
* nothing is imported, allocated or formatted until a registry is
  installed with :func:`enable` / :func:`session`.

The registry is deliberately not thread-safe: the Monte Carlo engine
is single-threaded per run, and a registry is meant to observe one run
(or one sweep) at a time.  Install one registry per worker if runs are
ever parallelised.
"""

from __future__ import annotations

import dataclasses
import math
from contextlib import contextmanager
from types import TracebackType
from typing import Any, Iterator

from repro.errors import TelemetryError
from repro.telemetry.clock import wall_time


@dataclasses.dataclass
class TraceEvent:
    """One record of the trace buffer.

    ``phase`` follows the Chrome trace-event convention: ``"X"`` is a
    complete span (with ``dur``), ``"i"`` an instant event.  ``ts`` and
    ``dur`` are seconds relative to the registry's epoch.
    """

    name: str
    phase: str
    ts: float
    dur: float = 0.0
    category: str = ""
    args: dict[str, Any] = dataclasses.field(default_factory=dict)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """Last-value-wins float metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming moments of an observed quantity (no samples kept).

    Carries the Welford second moment ``m2`` alongside count/total/
    min/max, so a histogram (and any merge of histograms — see
    :meth:`TelemetryRegistry.merge_snapshot`) reports a correct
    standard deviation without retaining samples.
    """

    __slots__ = ("name", "count", "total", "m2", "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        old_mean = self.total / self.count if self.count else 0.0
        self.count += 1
        self.total += value
        # Welford update phrased against the running total: m2
        # accumulates sum((x - mean)^2) without catastrophic
        # cancellation
        self.m2 += (value - old_mean) * (value - self.total / self.count)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the observed values."""
        if self.count < 2:
            return 0.0
        return math.sqrt(max(self.m2, 0.0) / self.count)

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
            "m2": self.m2,
            "std": self.std,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class Span:
    """No-op span; the object :func:`span` returns while disabled.

    A single shared instance is reused, so a disabled ``with span(...)``
    allocates nothing.
    """

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        """Attach an argument to the span (ignored when disabled)."""

    def __enter__(self) -> Span:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SPAN = Span()


class _LiveSpan(Span):
    """Span that records a complete ("X") trace event on exit."""

    __slots__ = ("_registry", "name", "category", "args", "_t0")

    def __init__(
        self,
        registry_: TelemetryRegistry,
        name: str,
        category: str,
        args: dict[str, Any],
    ):
        self._registry = registry_
        self.name = name
        self.category = category
        self.args = args
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        self.args[key] = value

    def __enter__(self) -> _LiveSpan:
        self._t0 = self._registry.now()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        registry_ = self._registry
        t0 = self._t0
        registry_.record(
            TraceEvent(
                name=self.name,
                phase="X",
                ts=t0,
                dur=registry_.now() - t0,
                category=self.category,
                args=self.args,
            )
        )
        return None


class TelemetryRegistry:
    """Holds the metrics and the trace buffer of one observation window.

    Parameters
    ----------
    trace:
        Record :class:`TraceEvent` records (spans and per-event
        instants).  With ``trace=False`` only metrics (counters,
        gauges, histograms) accumulate — the mode for long runs where
        a full event trace would not fit in memory.
    max_trace_events:
        Bound on the trace buffer.  Once full, further records are
        counted in :attr:`dropped_events` instead of stored, so a
        pathological run degrades gracefully instead of exhausting
        memory.
    """

    def __init__(self, trace: bool = True, max_trace_events: int = 1_000_000):
        if max_trace_events < 0:
            raise TelemetryError(
                f"max_trace_events must be >= 0, got {max_trace_events}"
            )
        self.trace = trace
        self.max_trace_events = max_trace_events
        self.epoch = wall_time()
        self.events: list[TraceEvent] = []
        self.dropped_events = 0
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # highest shard index that contributed each merged gauge, so
        # snapshot folding is deterministic whatever the fold order
        self._gauge_shards: dict[str, int] = {}

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def metrics(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every metric, keyed by kind then name."""
        return {
            "counters": {c.name: c.value for c in self._counters.values()},
            "gauges": {g.name: g.value for g in self._gauges.values()},
            "histograms": {
                h.name: h.as_dict() for h in self._histograms.values()
            },
        }

    def merge_snapshot(
        self,
        metrics: dict[str, dict[str, Any]],
        shard: int | None = None,
    ) -> None:
        """Fold a :meth:`metrics` snapshot from another registry into
        this one — how parallel workers report back to the parent
        session.

        Counters add and histograms combine their streaming moments
        (Chan's parallel variance merge for ``m2``, so the merged
        histogram reports a correct std).  Gauges are last-value
        metrics: with ``shard`` given, the value from the *highest*
        shard index wins regardless of the order the snapshots are
        folded in, so a merged gauge is deterministic and
        jobs-invariant; without ``shard`` the snapshot simply adopts
        (in-process last-wins semantics).  Trace events are
        per-process and are *not* transported.
        """
        for name, value in metrics.get("counters", {}).items():
            self.counter(name).add(int(value))
        for name, value in metrics.get("gauges", {}).items():
            if shard is None:
                self.gauge(name).set(float(value))
                continue
            seen = self._gauge_shards.get(name)
            if seen is None or shard >= seen:
                self._gauge_shards[name] = shard
                self.gauge(name).set(float(value))
        for name, moments in metrics.get("histograms", {}).items():
            count = int(moments.get("count", 0))
            if count <= 0:
                continue
            hist = self.histogram(name)
            total = float(moments.get("total", 0.0))
            if hist.count:
                # Chan et al. parallel merge: combine the two second
                # moments plus the between-parts mean-shift term
                delta = total / count - hist.total / hist.count
                hist.m2 += float(moments.get("m2", 0.0)) + (
                    delta * delta * hist.count * count / (hist.count + count)
                )
            else:
                hist.m2 = float(moments.get("m2", 0.0))
            hist.count += count
            hist.total += total
            low = float(moments.get("min", math.inf))
            high = float(moments.get("max", -math.inf))
            if low < hist.minimum:
                hist.minimum = low
            if high > hist.maximum:
                hist.maximum = high

    def peek_counter(self, name: str) -> int:
        """Current value of a counter *without* creating it (0 when the
        counter does not exist).  Safe to call from an observer thread:
        it never mutates the registry."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this registry's epoch."""
        return wall_time() - self.epoch

    def record(self, event: TraceEvent) -> None:
        """Append a trace record, honouring the buffer bound."""
        if not self.trace:
            return
        if len(self.events) >= self.max_trace_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def span(self, name: str, category: str = "", **args: Any) -> Span:
        """Context manager recording a complete span around its body."""
        if not self.trace:
            return _NULL_SPAN
        return _LiveSpan(self, name, category, args)

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """Record an instant ("i") trace event at the current time."""
        if not self.trace:
            return
        self.record(
            TraceEvent(
                name=name, phase="i", ts=self.now(), category=category,
                args=args,
            )
        )


def snapshot_delta(
    current: dict[str, dict[str, Any]],
    previous: dict[str, dict[str, Any]] | None,
) -> dict[str, dict[str, Any]]:
    """Incremental difference between two :meth:`TelemetryRegistry.metrics`
    snapshots of the *same* registry.

    Counters subtract (new counters appear whole); gauges and histogram
    moments are carried as-is, since they are absolute state rather
    than accumulation.  This is the unit the live-monitoring layer
    streams over its out-of-band queue: a worker periodically sends
    ``snapshot_delta(now, last_sent)`` so the parent can aggregate
    progress without waiting for the shard to finish.
    """
    if previous is None:
        return current
    counters: dict[str, Any] = {}
    last = previous.get("counters", {})
    for name, value in current.get("counters", {}).items():
        step = int(value) - int(last.get(name, 0))
        if step:
            counters[name] = step
    return {
        "counters": counters,
        "gauges": dict(current.get("gauges", {})),
        "histograms": dict(current.get("histograms", {})),
    }


#: The process-wide active registry; ``None`` means telemetry is
#: disabled.  Hot paths read this attribute directly (one load + one
#: ``is None`` test); mutate it only through :func:`enable`,
#: :func:`disable`, :func:`set_registry` or :func:`session`.
ACTIVE: TelemetryRegistry | None = None


def get_registry() -> TelemetryRegistry | None:
    """The active registry, or ``None`` while telemetry is disabled."""
    return ACTIVE


def set_registry(
    registry_: TelemetryRegistry | None,
) -> TelemetryRegistry | None:
    """Install ``registry_`` as the active registry; returns the
    previous one (``None`` if telemetry was disabled)."""
    # dsan: allow[DET020] the worker-side write is the *contract*: _shard_entry
    # installs a worker-local registry via session(), which restores the
    # previous value on exit; metrics ride back in the shard result and the
    # runtime sanitizer's state fingerprint verifies the restoration.
    global ACTIVE
    previous = ACTIVE
    ACTIVE = registry_
    return previous


def enable(
    trace: bool = True, max_trace_events: int = 1_000_000
) -> TelemetryRegistry:
    """Install and return a fresh active registry."""
    registry_ = TelemetryRegistry(trace=trace, max_trace_events=max_trace_events)
    set_registry(registry_)
    return registry_


def disable() -> None:
    """Remove the active registry; instrumentation reverts to no-ops."""
    set_registry(None)


@contextmanager
def session(
    trace: bool = True, max_trace_events: int = 1_000_000
) -> Iterator[TelemetryRegistry]:
    """Scoped telemetry: install a fresh registry, restore the previous
    one (usually ``None``) on exit.

    >>> from repro.telemetry import registry
    >>> with registry.session() as reg:    # doctest: +SKIP
    ...     engine.run(max_jumps=1000)
    >>> len(reg.events)                    # doctest: +SKIP
    1001
    """
    registry_ = TelemetryRegistry(trace=trace, max_trace_events=max_trace_events)
    previous = set_registry(registry_)
    try:
        yield registry_
    finally:
        set_registry(previous)


def span(name: str, category: str = "", **args: Any) -> Span:
    """Module-level span helper: a live span when telemetry is enabled,
    the shared no-op span otherwise.

    This is the form library code uses (``with span("engine.run"):``);
    it never allocates while disabled.
    """
    registry_ = ACTIVE
    if registry_ is None:
        return _NULL_SPAN
    return registry_.span(name, category, **args)
