"""Trace and metrics exporters.

Three output shapes, all derived from one :class:`TelemetryRegistry`:

* **JSONL** — one JSON object per line per trace record, the shape
  log-processing pipelines want;
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` /
  Perfetto (``{"traceEvents": [...]}`` with microsecond timestamps);
* **plain-text summary** — per-phase wall-time aggregation plus the
  metric snapshot, for terminals and CI logs.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Any

from repro.errors import TelemetryError
from repro.telemetry.registry import TelemetryRegistry


def _json_default(value: Any) -> Any:
    """Last-resort JSON coercion (numpy scalars mostly)."""
    for kind in (int, float):
        try:
            return kind(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def trace_records(registry: TelemetryRegistry) -> list[dict[str, Any]]:
    """The trace buffer as plain dicts (timestamps in seconds)."""
    return [dataclasses.asdict(event) for event in registry.events]


def write_jsonl(registry: TelemetryRegistry, path: str | Path) -> int:
    """Write the trace as JSON Lines; returns the record count."""
    records = trace_records(registry)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, default=_json_default))
            handle.write("\n")
    return len(records)


def chrome_trace(registry: TelemetryRegistry) -> dict[str, Any]:
    """The registry as a Chrome trace-event JSON object.

    Spans become complete ("X") events, instants stay instant ("i",
    global scope); the final metric snapshot rides along in
    ``otherData`` so one file carries the whole observation.
    """
    trace_events: list[dict[str, Any]] = []
    for event in registry.events:
        record: dict[str, Any] = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts * 1e6,
            "pid": 1,
            "tid": 1,
            "cat": event.category or "repro",
            "args": event.args,
        }
        if event.phase == "X":
            record["dur"] = event.dur * 1e6
        elif event.phase == "i":
            record["s"] = "g"
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "metrics": registry.metrics(),
            "dropped_events": registry.dropped_events,
        },
    }


def write_chrome_trace(registry: TelemetryRegistry, path: str | Path) -> int:
    """Write a ``chrome://tracing`` file; returns the event count."""
    payload = chrome_trace(registry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=_json_default)
        handle.write("\n")
    return len(payload["traceEvents"])


def write_trace(
    registry: TelemetryRegistry, path: str | Path, fmt: str = "auto"
) -> int:
    """Write the trace in ``fmt`` (``chrome``, ``jsonl``, or ``auto``
    to pick by file suffix: ``.jsonl`` means JSONL, anything else the
    Chrome format).  Returns the record count."""
    if fmt == "auto":
        fmt = "jsonl" if Path(path).suffix == ".jsonl" else "chrome"
    if fmt == "jsonl":
        return write_jsonl(registry, path)
    if fmt == "chrome":
        return write_chrome_trace(registry, path)
    raise TelemetryError(
        f"unknown trace format {fmt!r} (expected 'chrome', 'jsonl' or 'auto')"
    )


_METRIC_NAME_SAFE = re.compile(r"[^a-zA-Z0-9_:]")


def _openmetrics_name(name: str, prefix: str) -> str:
    """Coerce a dotted metric name to the OpenMetrics charset."""
    flat = _METRIC_NAME_SAFE.sub("_", name.replace(".", "_"))
    return f"{prefix}_{flat}" if prefix else flat


def _openmetrics_labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def openmetrics_exposition(
    metrics: dict[str, dict[str, Any]],
    *,
    prefix: str = "repro",
    labels: dict[str, str] | None = None,
    terminate: bool = True,
) -> str:
    """Render a :meth:`TelemetryRegistry.metrics` snapshot as an
    OpenMetrics text exposition.

    Counters become ``<prefix>_<name>_total`` counter families, gauges
    plain gauges, histograms a ``count``/``sum`` pair plus ``min``/
    ``max``/``std`` gauges.  This is the wire format the future HTTP
    monitoring service will serve; ``repro report --format openmetrics``
    uses it today for the latest ledger snapshot.  ``terminate=False``
    omits the ``# EOF`` line so several expositions can concatenate.
    """
    tag = _openmetrics_labels(labels)
    lines: list[str] = []
    for name in sorted(metrics.get("counters", {})):
        metric = _openmetrics_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total{tag} {metrics['counters'][name]}")
    for name in sorted(metrics.get("gauges", {})):
        metric = _openmetrics_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{tag} {metrics['gauges'][name]:.10g}")
    for name in sorted(metrics.get("histograms", {})):
        stats = metrics["histograms"][name]
        metric = _openmetrics_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count{tag} {int(stats.get('count', 0))}")
        lines.append(f"{metric}_sum{tag} {stats.get('total', 0.0):.10g}")
        for part in ("min", "max", "std"):
            if part in stats:
                lines.append(
                    f"{metric}_{part}{tag} {float(stats[part]):.10g}"
                )
    if terminate:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    registry: TelemetryRegistry,
    path: str | Path,
    *,
    labels: dict[str, str] | None = None,
) -> int:
    """Write the registry's metric snapshot as OpenMetrics text;
    returns the number of metric families written."""
    metrics = registry.metrics()
    Path(path).write_text(openmetrics_exposition(metrics, labels=labels))
    return sum(len(metrics.get(kind, {}))
               for kind in ("counters", "gauges", "histograms"))


@dataclasses.dataclass
class PhaseTiming:
    """Aggregated wall time of all spans sharing one name."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float


def phase_timings(registry: TelemetryRegistry) -> list[PhaseTiming]:
    """Per-phase (span-name) wall-time totals, longest first."""
    totals: dict[str, tuple[int, float]] = {}
    for event in registry.events:
        if event.phase != "X":
            continue
        count, total = totals.get(event.name, (0, 0.0))
        totals[event.name] = (count + 1, total + event.dur)
    return sorted(
        (
            PhaseTiming(name, count, total, total / count)
            for name, (count, total) in totals.items()
        ),
        key=lambda timing: timing.total_seconds,
        reverse=True,
    )


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.3f} us"


def summary(registry: TelemetryRegistry) -> str:
    """Plain-text report: phase wall times, counters, gauges, histograms."""
    lines: list[str] = []
    timings = phase_timings(registry)
    if timings:
        lines.append("phase wall time")
        width = max(len(timing.name) for timing in timings)
        for timing in timings:
            lines.append(
                f"  {timing.name:{width}s}  x{timing.count:<7d}"
                f"  total {_format_seconds(timing.total_seconds)}"
                f"  mean {_format_seconds(timing.mean_seconds)}"
            )
    metrics = registry.metrics()
    if metrics["counters"]:
        lines.append("counters")
        for name in sorted(metrics["counters"]):
            lines.append(f"  {name:40s} {metrics['counters'][name]:>14d}")
    if metrics["gauges"]:
        lines.append("gauges")
        for name in sorted(metrics["gauges"]):
            lines.append(f"  {name:40s} {metrics['gauges'][name]:>14.6g}")
    if metrics["histograms"]:
        lines.append("histograms")
        for name in sorted(metrics["histograms"]):
            stats = metrics["histograms"][name]
            lines.append(
                f"  {name:40s} n={int(stats['count'])}"
                f" mean={stats['mean']:.4g}"
                f" min={stats['min']:.4g} max={stats['max']:.4g}"
            )
    if registry.dropped_events:
        lines.append(
            f"note: {registry.dropped_events} trace event(s) dropped "
            f"(buffer bound {registry.max_trace_events})"
        )
    return "\n".join(lines) if lines else "telemetry: no data recorded"
