"""Deck-level profiling: run a simulation under telemetry and reduce
the trace to the numbers a performance investigation starts from.

This is the library behind ``repro profile``: phase wall times, the
solver's work counters, the adaptive solver's efficiency against the
non-adaptive baseline (which recomputes every rate after every event,
so its sequential-rate work is exactly ``2 x junctions`` per event),
and the busiest junctions of the trajectory.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from repro.errors import TelemetryError
from repro.telemetry import registry as _registry
from repro.telemetry.clock import Stopwatch
from repro.telemetry.exporters import PhaseTiming, phase_timings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.base import SolverStats
    from repro.netlist.semsim import SemsimDeck


@dataclasses.dataclass
class JunctionActivity:
    """Tunnel-event share of one junction over the profiled run."""

    junction: int
    label: str
    events: int
    share: float


@dataclasses.dataclass
class SolverProfile:
    """One solver's measured run."""

    solver: str
    wall_seconds: float
    stats: SolverStats


@dataclasses.dataclass
class ProfileReport:
    """Everything ``repro profile`` prints."""

    solver: str
    n_junctions: int
    events: int
    wall_seconds: float
    phases: list[PhaseTiming]
    stats: SolverStats
    rate_evaluations: int
    baseline_rate_evaluations: int
    saved_fraction: float
    hottest: list[JunctionActivity]
    dropped_events: int = 0
    baseline: SolverProfile | None = None

    def format(self) -> str:
        """Render the report as the CLI's plain-text summary."""
        lines = [
            f"profile: solver={self.solver}  junctions={self.n_junctions}"
            f"  events={self.events}  wall={self.wall_seconds:.3f} s",
            "",
            "phase wall time",
        ]
        if self.phases:
            width = max(len(timing.name) for timing in self.phases)
            for timing in self.phases:
                lines.append(
                    f"  {timing.name:{width}s}  x{timing.count:<7d}"
                    f"  total {timing.total_seconds:10.4f} s"
                    f"  mean {timing.mean_seconds * 1e3:10.4f} ms"
                )
        else:
            lines.append("  (no spans recorded)")
        lines += ["", self.stats.format_table(f"solver stats ({self.solver})")]
        if self.baseline is not None:
            lines += [
                "",
                self.baseline.stats.format_table(
                    f"solver stats ({self.baseline.solver}, measured baseline)"
                ),
            ]
        lines += [
            "",
            "rate evaluations (sequential)",
            f"  {self.solver} (measured)            {self.rate_evaluations:>14d}",
            f"  non-adaptive baseline         "
            f"{self.baseline_rate_evaluations:>14d}  (2 x junctions x events)",
            f"  work saved                    {self.saved_fraction:>13.1%}",
        ]
        if self.baseline is not None and self.baseline.wall_seconds > 0.0:
            speedup = self.baseline.wall_seconds / max(self.wall_seconds, 1e-12)
            lines.append(
                f"  measured baseline wall        "
                f"{self.baseline.wall_seconds:>12.3f} s  "
                f"(speedup {speedup:.2f}x)"
            )
        lines += ["", "hottest junctions (by tunnel events)"]
        if self.hottest:
            for activity in self.hottest:
                lines.append(
                    f"  #{activity.junction:<4d} {activity.label:12s}"
                    f" {activity.events:>12d}  {activity.share:6.1%}"
                )
        else:
            lines.append("  (no per-event trace records)")
        if self.dropped_events:
            lines.append(
                f"note: {self.dropped_events} trace event(s) dropped — "
                "per-event numbers undercount"
            )
        return "\n".join(lines)


def hottest_junctions(
    registry_: _registry.TelemetryRegistry,
    top: int = 5,
    labels: list[str] | None = None,
) -> list[JunctionActivity]:
    """Rank junctions by realised tunnel events in the trace buffer."""
    counts: dict[int, int] = {}
    total = 0
    for event in registry_.events:
        if event.name != "solver.event":
            continue
        junction = event.args.get("junction", -1)
        if junction < 0:
            continue
        counts[junction] = counts.get(junction, 0) + 1
        total += 1
    ranked = sorted(counts.items(), key=lambda item: item[1], reverse=True)
    return [
        JunctionActivity(
            junction=junction,
            label=(
                labels[junction]
                if labels is not None and junction < len(labels)
                else f"junction {junction}"
            ),
            events=count,
            share=count / total if total else 0.0,
        )
        for junction, count in ranked[: max(top, 0)]
    ]


def _run_deck(
    deck: SemsimDeck, solver: str, seed: int, trace: bool,
    max_trace_events: int,
) -> tuple[SolverProfile, _registry.TelemetryRegistry]:
    with _registry.session(
        trace=trace, max_trace_events=max_trace_events
    ) as reg:
        watch = Stopwatch()
        curve = deck.run(solver=solver, seed=seed)
        wall = watch.elapsed()
    stats = curve.stats
    if stats is None:
        raise TelemetryError(
            "deck run returned no solver stats; cannot build a profile"
        )
    return SolverProfile(solver=solver, wall_seconds=wall, stats=stats), reg


def profile_deck(
    deck: SemsimDeck,
    solver: str = "adaptive",
    seed: int = 0,
    top: int = 5,
    trace: bool = True,
    max_trace_events: int = 1_000_000,
    measure_baseline: bool = False,
) -> tuple[ProfileReport, _registry.TelemetryRegistry]:
    """Profile one deck run; returns the report and the registry whose
    trace buffer backs it (ready for :func:`..exporters.write_trace`).

    With ``measure_baseline=True`` the deck is additionally run with
    the non-adaptive solver (same seed, separate registry) so the
    report carries a measured wall-clock comparison next to the
    analytic rate-evaluation baseline.
    """
    profile, reg = _run_deck(deck, solver, seed, trace, max_trace_events)
    baseline: SolverProfile | None = None
    if measure_baseline and solver != "nonadaptive":
        baseline, _ = _run_deck(
            deck, "nonadaptive", seed, trace=False,
            max_trace_events=max_trace_events,
        )
    stats = profile.stats
    n_junctions = len(deck.junctions)
    baseline_evaluations = 2 * n_junctions * stats.events
    evaluations = stats.sequential_rate_evaluations
    saved = (
        1.0 - evaluations / baseline_evaluations if baseline_evaluations else 0.0
    )
    labels = [f"j{name}" for name, _, _, _, _ in deck.junctions]
    report = ProfileReport(
        solver=solver,
        n_junctions=n_junctions,
        events=stats.events,
        wall_seconds=profile.wall_seconds,
        phases=phase_timings(reg),
        stats=stats,
        rate_evaluations=evaluations,
        baseline_rate_evaluations=baseline_evaluations,
        saved_fraction=saved,
        hottest=hottest_junctions(reg, top=top, labels=labels),
        dropped_events=reg.dropped_events,
        baseline=baseline,
    )
    return report, reg


def metrics_payload(registry_: _registry.TelemetryRegistry) -> dict[str, Any]:
    """Phase timings + metric snapshot as a JSON-ready dict (the shape
    the benchmark harness persists in ``BENCH_telemetry.json``)."""
    return {
        "phases": {
            timing.name: {
                "count": timing.count,
                "total_seconds": timing.total_seconds,
                "mean_seconds": timing.mean_seconds,
            }
            for timing in phase_timings(registry_)
        },
        "metrics": registry_.metrics(),
        "dropped_events": registry_.dropped_events,
    }
