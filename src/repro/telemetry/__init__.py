"""Structured tracing, metrics and profiling for the solver stack.

The package has four layers, meant to be imported from the bottom up:

:mod:`repro.telemetry.clock`
    The single wall-clock utility (``Stopwatch``, ``time_call``).
:mod:`repro.telemetry.registry`
    The process-wide :class:`TelemetryRegistry` — spans, counters,
    gauges, histograms, bounded trace buffer — with a strict
    zero-cost-when-disabled contract.
:mod:`repro.telemetry.exporters`
    JSONL / Chrome trace-event / plain-text renderings of a registry.
:mod:`repro.telemetry.profile`
    Deck-level profiling reports (``repro profile``).

Hot solver code imports the ``registry`` *submodule* and reads
``registry.ACTIVE`` directly; everything else can use the re-exports
below.
"""

from __future__ import annotations

from repro.telemetry.clock import Stopwatch, time_call, wall_time
from repro.telemetry.exporters import (
    PhaseTiming,
    chrome_trace,
    phase_timings,
    summary,
    trace_records,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Span,
    TelemetryRegistry,
    TraceEvent,
    disable,
    enable,
    get_registry,
    session,
    set_registry,
    span,
)
from repro.telemetry.profile import (
    JunctionActivity,
    ProfileReport,
    SolverProfile,
    hottest_junctions,
    metrics_payload,
    profile_deck,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JunctionActivity",
    "PhaseTiming",
    "ProfileReport",
    "SolverProfile",
    "Span",
    "Stopwatch",
    "TelemetryRegistry",
    "TraceEvent",
    "chrome_trace",
    "disable",
    "enable",
    "get_registry",
    "hottest_junctions",
    "metrics_payload",
    "phase_timings",
    "profile_deck",
    "session",
    "set_registry",
    "span",
    "summary",
    "time_call",
    "trace_records",
    "wall_time",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
