"""Determinism & concurrency sanitizer (``repro sanitize`` / ``--dsan``).

Two halves guard the reproducibility contract the parallel layer
promises (bit-identical results for any worker count):

* a **static pass** (:func:`sanitize_paths`) over the package source,
  emitting stable ``DET0xx`` findings for unseeded/global RNG use,
  wall-clock reads outside ``telemetry.clock``, worker-reachable
  module-state writes, closures crossing the pool boundary and
  unordered-set iteration feeding order-sensitive work;
* a **runtime sanitizer** (:mod:`repro.dsan.runtime`): event-stream
  hashing with shadow-run comparison (``repro run --dsan``) plus
  pickle and state-leak verification of every pool shard while
  :func:`~repro.dsan.runtime.dsan_mode` is armed.

The static half is hosted on the unified analysis framework
(:mod:`repro.static`); ``repro check`` runs the same DET rules
alongside the repository, array and hot-loop passes.
"""

from __future__ import annotations

from typing import Any

from repro.dsan.runtime import (
    ShadowReport,
    dsan_mode,
    fold_hashes,
    verify_shadow,
)

#: static-pass names resolved lazily (PEP 562): the analyzer pulls in
#: :mod:`repro.lint`, which imports the netlist and sweep layers — and
#: those import *this* package for the runtime half.  Deferring the
#: static half breaks that cycle while keeping ``from repro.dsan
#: import sanitize_paths`` working.
_STATIC_EXPORTS = {
    "code_table": "repro.dsan.analyzer",
    "default_root": "repro.dsan.analyzer",
    "report_as_json": "repro.dsan.analyzer",
    "sanitize_paths": "repro.dsan.analyzer",
    "DET_CODES": "repro.dsan.diagnostics",
    "DetCodeInfo": "repro.dsan.diagnostics",
    "Finding": "repro.dsan.diagnostics",
    "SanitizerReport": "repro.dsan.diagnostics",
    "finding": "repro.dsan.diagnostics",
    "waived_codes": "repro.dsan.diagnostics",
}


def __getattr__(name: str) -> Any:
    module_name = _STATIC_EXPORTS.get(name)
    if module_name is None:
        # repro-lint: allow — PEP 562 requires AttributeError here;
        # anything else breaks hasattr()/getattr() on the package
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "DET_CODES",
    "DetCodeInfo",
    "Finding",
    "SanitizerReport",
    "ShadowReport",
    "code_table",
    "default_root",
    "dsan_mode",
    "finding",
    "fold_hashes",
    "report_as_json",
    "sanitize_paths",
    "verify_shadow",
    "waived_codes",
]
