"""Runtime determinism sanitizer (the ``--dsan`` half).

The static pass (:mod:`repro.dsan.rules`) catches hazard *patterns*;
this module verifies the contract *on a live run*:

* :func:`dsan_mode` arms the process-pool layer
  (:mod:`repro.parallel.pool`): every shard payload is
  pickle-round-tripped before submission, the worker callable is
  verified to be a plain module-level function, and each worker
  fingerprints its process-global state (global numpy/stdlib RNGs,
  active telemetry registry) before and after the shard — a stray
  ``np.random.random()`` in solver code changes the fingerprint and is
  reported as a :class:`~repro.errors.DeterminismError` state leak.
* the **event-stream hash**: with
  :attr:`repro.core.config.SimulationConfig.event_hash` enabled, every
  solver maintains an order-sensitive BLAKE2 digest of its realised
  tunnel events (kind, junction, direction, electron count, endpoint
  islands, exact ``dt`` bits).  Shard digests are folded in shard
  order by :func:`fold_hashes`, so the combined hash is a pure
  function of the shard layout — identical for every ``jobs`` value.
* :func:`verify_shadow` runs the same seeded simulation twice and
  compares the hashes: any hidden entropy (global RNG, wall clock,
  unordered iteration) makes the replicas diverge.

Nothing here imports the pool or the solvers: the dependency points
the other way, so the sanitizer can be armed before they load.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import random
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.errors import DeterminismError

#: Digest size (bytes) of every event-stream hash in the package.
DIGEST_SIZE = 16

# ----------------------------------------------------------------------
# mode flag
# ----------------------------------------------------------------------

_ACTIVE = False


def active() -> bool:
    """Is the runtime sanitizer armed in this process?"""
    return _ACTIVE


@contextmanager
def dsan_mode() -> Iterator[None]:
    """Arm the runtime sanitizer for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = True
    try:
        yield
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# event-stream hashing
# ----------------------------------------------------------------------

def new_digest() -> "hashlib.blake2b":
    """A fresh event-stream digest (BLAKE2b, :data:`DIGEST_SIZE`)."""
    return hashlib.blake2b(digest_size=DIGEST_SIZE)


def fold_hashes(hashes: Sequence[str]) -> str:
    """Order-sensitive fold of per-shard hex digests.

    The fold runs in *shard order* — which the pool guarantees is the
    submission order regardless of completion order — so the result
    depends only on the shard layout, never on worker count or
    scheduling.  Folding a single digest is deliberately *not* the
    identity: a one-chunk sweep and a bare engine run hash differently
    because they are different experiments.
    """
    digest = new_digest()
    for item in hashes:
        digest.update(bytes.fromhex(item))
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class ShadowReport:
    """Outcome of one shadow-run comparison."""

    hash_primary: str
    hash_shadow: str
    label: str = "run"

    @property
    def match(self) -> bool:
        return self.hash_primary == self.hash_shadow

    def format(self) -> str:
        if self.match:
            return (
                f"dsan: {self.label}: event streams identical "
                f"(hash {self.hash_primary})"
            )
        return (
            f"dsan: {self.label}: EVENT STREAMS DIVERGE "
            f"({self.hash_primary} != {self.hash_shadow})"
        )


def verify_shadow(
    run: Callable[[], str | None], label: str = "run"
) -> ShadowReport:
    """Execute ``run`` twice and compare its event-stream hashes.

    ``run`` must perform one *identically seeded* simulation per call
    and return its event-stream hash.  Raises
    :class:`DeterminismError` when the replicas diverge — the seeded
    RNG stream was not the only entropy in the run — or when no hash
    was produced.
    """
    primary = run()
    shadow = run()
    if primary is None or shadow is None:
        raise DeterminismError(
            f"{label}: no event-stream hash produced; enable "
            "SimulationConfig.event_hash for the shadow comparison"
        )
    report = ShadowReport(primary, shadow, label)
    if not report.match:
        raise DeterminismError(
            f"{label}: shadow run diverged from the primary run under the "
            f"same seed ({primary} != {shadow}); the simulation consumed "
            "entropy outside its seeded Generator (global RNG, wall clock, "
            "or unordered iteration)"
        )
    return report


# ----------------------------------------------------------------------
# pool-boundary verification
# ----------------------------------------------------------------------

def verify_worker(worker: Callable[..., Any]) -> None:
    """Require a plain module-level callable for the pool boundary."""
    qualname = getattr(worker, "__qualname__", "")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise DeterminismError(
            f"dsan: worker {qualname or worker!r} is a lambda or locally "
            "defined function; pool workers must be module-level so they "
            "pickle by reference and capture no state (DET021)"
        )
    try:
        pickle.dumps(worker)
    except Exception as exc:  # repro-lint: allow — pickle raises arbitrary types
        raise DeterminismError(
            f"dsan: worker {qualname or worker!r} cannot be pickled across "
            f"the process boundary: {exc} (DET021)"
        )


def verify_payload(payload: Any, index: int) -> None:
    """Round-trip one shard payload through pickle before submission.

    Serial (``jobs=1``) runs never pickle their payloads, so a
    closure-carrying payload "works on my machine" until someone passes
    ``--jobs 4``; in dsan mode the serial path performs the same
    round-trip the pool would.
    """
    try:
        blob = pickle.dumps(payload)
        pickle.loads(blob)
    except Exception as exc:  # repro-lint: allow — pickle raises arbitrary types
        raise DeterminismError(
            f"dsan: shard payload #{index} does not survive a pickle "
            f"round-trip: {exc}; shard payloads must be plain picklable "
            "data (DET021)"
        )


# ----------------------------------------------------------------------
# worker state-leak detection
# ----------------------------------------------------------------------

def state_fingerprint() -> dict[str, str]:
    """Hashes of the process-global state a simulation must not touch.

    Covers the legacy global numpy ``RandomState``, the stdlib
    ``random`` module state and the identity of the active telemetry
    registry.  Cheap (three small hashes), so workers can afford one
    before and one after every shard.
    """
    return {
        "numpy.random (global RandomState)": hashlib.blake2b(
            pickle.dumps(np.random.get_state()), digest_size=8
        ).hexdigest(),
        "random (stdlib global RNG)": hashlib.blake2b(
            pickle.dumps(random.getstate()), digest_size=8
        ).hexdigest(),
        "telemetry registry": _registry_identity(),
    }


def _registry_identity() -> str:
    from repro.telemetry import registry as _telemetry

    return "none" if _telemetry.ACTIVE is None else (
        f"{type(_telemetry.ACTIVE).__name__}@{id(_telemetry.ACTIVE):#x}"
    )


def diff_fingerprints(
    before: dict[str, str], after: dict[str, str]
) -> list[str]:
    """Names of the state slots that changed during a shard."""
    return [name for name in before if after.get(name) != before[name]]


def raise_state_leaks(leaks: Sequence[tuple[int, list[str]]]) -> None:
    """Raise a :class:`DeterminismError` describing worker state leaks."""
    if not leaks:
        return
    details = "; ".join(
        f"shard #{index} mutated {', '.join(names)}"
        for index, names in leaks
    )
    raise DeterminismError(
        f"dsan: pool worker state leak: {details}. Simulation code drew "
        "from a process-global RNG or left telemetry installed — state "
        "the reproducibility contract requires to stay untouched (DET020/"
        "DET002)"
    )
