"""Orchestration of the static determinism pass.

:func:`sanitize_paths` parses every Python file under the given roots
once, builds the cross-module call graph, runs the DET rules over each
module and returns a :class:`~repro.dsan.diagnostics.SanitizerReport`
ordered by path then line.  Waivers (``# dsan: allow[DET0xx]``) are
honoured per line and per code.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dsan.callgraph import CallGraph
from repro.dsan.diagnostics import (
    DET_CODES,
    Finding,
    SanitizerReport,
    finding,
    waived_codes,
)
from repro.dsan.rules import module_rules
from repro.dsan.visitors import ModuleSource, iter_python_files


def default_root() -> Path:
    """The installed ``repro`` package directory — what CI scans."""
    return Path(__file__).resolve().parent.parent


def _waiver(line: str, code: str) -> bool:
    return code in waived_codes(line)


def sanitize_paths(
    roots: list[Path] | None = None,
    *,
    relative_to: Path | None = None,
) -> SanitizerReport:
    """Run the DET pass over files/directories (default: ``repro``)."""
    if not roots:
        roots = [default_root()]
    scan_root = relative_to
    if scan_root is None:
        scan_root = roots[0] if roots[0].is_dir() else roots[0].parent

    modules = [
        ModuleSource.parse(path, root=scan_root)
        for path in iter_python_files(roots)
    ]
    graph = CallGraph(modules)
    reachable = graph.worker_reachable()

    findings: list[Finding] = []
    for module in modules:
        for rule in module_rules(module, _waiver, graph, reachable):
            rule.visit(module.tree)
            for lineno, code, message in rule.raw_reports:
                findings.append(finding(
                    code, message,
                    path=str(module.path), line=lineno,
                ))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return SanitizerReport(tuple(findings), files_scanned=len(modules))


def report_as_json(report: SanitizerReport) -> str:
    """Machine-readable rendering for ``repro sanitize --format json``."""
    return json.dumps(
        {
            "files_scanned": report.files_scanned,
            "findings": [f.as_dict() for f in report.findings],
            "summary": report.summary(),
            "exit_code": report.exit_code,
        },
        indent=2,
    )


def code_table() -> str:
    """The DET code registry as a fixed-width table (``--codes``)."""
    lines = [f"{'code':8s} {'severity':8s} meaning"]
    for info in DET_CODES.values():
        lines.append(f"{info.code:8s} {str(info.severity):8s} {info.title}")
        lines.append(f"{'':8s} {'':8s}   fix: {info.fix}")
    return "\n".join(lines)
