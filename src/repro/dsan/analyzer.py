"""Orchestration of the static determinism pass.

:func:`sanitize_paths` is now a thin adapter over the unified static
engine (:func:`repro.static.engine.check_paths`): it runs only the
``det`` pass and converts the engine's diagnostics back into the
:class:`~repro.dsan.diagnostics.SanitizerReport` surface that
``repro sanitize`` and its callers have always consumed.  Waivers
(``# dsan: allow[DET0xx]`` or the unified ``# repro: allow[...]``)
are honoured per line and per code.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dsan.diagnostics import (
    DET_CODES,
    Finding,
    SanitizerReport,
    finding,
)
from repro.static.engine import check_paths
from repro.static.engine import default_root as _engine_default_root


def default_root() -> Path:
    """The installed ``repro`` package directory — what CI scans."""
    return _engine_default_root()


def sanitize_paths(
    roots: list[Path] | None = None,
    *,
    relative_to: Path | None = None,
) -> SanitizerReport:
    """Run the DET pass over files/directories (default: ``repro``)."""
    report = check_paths(
        roots,
        relative_to=relative_to,
        passes=("det",),
        warn_unused_waivers=False,
    )
    findings: list[Finding] = [
        finding(
            diag.code, diag.message,
            path=diag.path, line=diag.line, symbol=diag.symbol,
        )
        for diag in report.findings
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return SanitizerReport(
        tuple(findings), files_scanned=report.files_scanned
    )


def report_as_json(report: SanitizerReport) -> str:
    """Machine-readable rendering for ``repro sanitize --format json``."""
    return json.dumps(
        {
            "files_scanned": report.files_scanned,
            "findings": [f.as_dict() for f in report.findings],
            "summary": report.summary(),
            "exit_code": report.exit_code,
        },
        indent=2,
    )


def code_table() -> str:
    """The DET code registry as a fixed-width table (``--codes``)."""
    lines = [f"{'code':8s} {'severity':8s} meaning"]
    for info in DET_CODES.values():
        lines.append(f"{info.code:8s} {str(info.severity):8s} {info.title}")
        lines.append(f"{'':8s} {'':8s}   fix: {info.fix}")
    return "\n".join(lines)
