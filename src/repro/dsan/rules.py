"""The ``DET0xx`` determinism rules.

Each rule is a :class:`RuleVisitor` over one module, with the
cross-module context (call graph, worker reachability) supplied by the
analyzer.  The rules are deliberately syntactic over-approximations:
a determinism sanitizer that stays quiet on a real hazard is worse
than one that needs an occasional justified ``# dsan: allow[...]``.

Rule inventory (see :data:`repro.dsan.diagnostics.DET_CODES`):

``DET001``  ``np.random.default_rng()`` with no seed argument.
``DET002``  draws/seeding through the *global* RNGs (``np.random.*``,
            stdlib ``random.*``).
``DET003``  ``default_rng``/``Generator`` construction whose seed does
            not flow from the seed plumbing (``config.seed``,
            ``seed_sequence()``, ``spawn_seeds()``, a seed/rng
            parameter) — e.g. a hard-coded or wall-clock seed.
``DET010``  wall-clock/entropy calls outside ``telemetry/clock.py``.
``DET020``  module-level state written by a function reachable from a
            pool worker entry point.
``DET021``  a lambda / nested function handed to ``execute_shards``.
``DET022``  iterating an unordered ``set`` where the order feeds RNG
            draws or float accumulation.
"""

from __future__ import annotations

import ast

from repro.static.callgraph import CallGraph
from repro.static.source import ModuleSource
from repro.static.visitors import (
    RuleVisitor,
    call_name,
    is_set_expression,
    last_attr,
    module_level_assignments,
    toplevel_function_names,
)
from repro.static.waivers import WaiverIndex

#: Modules exempt from the RNG-construction rules: they *are* the seed
#: plumbing (DET001/DET002/DET003 would flag their own machinery).
RNG_PLUMBING_MODULES = ("parallel/seeds.py", "core/config.py")

#: The one module allowed to touch the process clock (DET010).
CLOCK_MODULE = "telemetry/clock.py"

#: Drawing / state-mutating attributes of ``numpy.random`` (module
#: level, i.e. the shared legacy global RandomState).
_NUMPY_GLOBAL_DRAWS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "integers", "choice", "shuffle", "permutation", "bytes",
    "normal", "uniform", "exponential", "standard_normal", "poisson",
    "binomial", "gamma", "beta", "lognormal", "laplace", "set_state",
})

#: Drawing / state-mutating functions of the stdlib ``random`` module.
_STDLIB_GLOBAL_DRAWS = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "getrandbits", "randbytes", "setstate",
})

#: Wall-clock / entropy callees (dotted suffixes) for DET010.
_CLOCK_ENTROPY_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})

#: Calls whose seed argument legitimises a Generator (DET003 dataflow).
_SEED_SOURCES = frozenset({
    "seed_sequence", "spawn_seeds", "as_seed_sequence", "spawn",
    "SeedSequence", "PCG64", "Philox", "SFC64", "MT19937",
})

#: Parameter-name fragments treated as externally supplied seeds.
_SEED_PARAM_FRAGMENTS = ("seed", "rng", "entropy")

#: Method names that mutate a list/dict/set in place (DET020).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem", "sort", "reverse",
})


def _in_modules(module: ModuleSource, suffixes: tuple[str, ...]) -> bool:
    return any(module.relpath.endswith(suffix) for suffix in suffixes)


# ----------------------------------------------------------------------
# DET001 / DET002 / DET003 — RNG stream discipline
# ----------------------------------------------------------------------

class RngRules(RuleVisitor):
    """The three RNG rules share one traversal: they all need the
    enclosing-function dataflow facts."""

    def __init__(self, module: ModuleSource, waivers: WaiverIndex):
        super().__init__(module, waivers)
        self._exempt = _in_modules(module, RNG_PLUMBING_MODULES)
        #: names that "flow from the seed plumbing" in the current scope
        self._flows: list[set[str]] = [set()]
        self._module_funcs = toplevel_function_names(module.tree)

    # -- scope bookkeeping ---------------------------------------------
    def _enter_function(self, node) -> None:
        params = {
            a.arg
            for a in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
        }
        if node.args.vararg is not None:
            params.add(node.args.vararg.arg)
        if node.args.kwarg is not None:
            params.add(node.args.kwarg.arg)
        # a parameter counts as a seed source only when its *name* says
        # so — `default_rng(n_points)` should not pass the gate
        flows = {
            p for p in params
            if any(frag in p.lower() for frag in _SEED_PARAM_FRAGMENTS)
        }
        self._flows.append(flows)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._flows.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._flows.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._expr_flows(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._flows[-1].add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    self._flows[-1].update(
                        e.id for e in target.elts if isinstance(e, ast.Name)
                    )
        self.generic_visit(node)

    # -- seed dataflow --------------------------------------------------
    def _expr_flows(self, node: ast.expr) -> bool:
        """Does the expression derive from the seed plumbing?"""
        if isinstance(node, ast.Name):
            return node.id in self._flows[-1] or any(
                frag in node.id.lower() for frag in _SEED_PARAM_FRAGMENTS
            )
        if isinstance(node, ast.Attribute):
            # config.seed, self.config.seed, root.spawn_key …
            return any(
                frag in node.attr.lower() for frag in _SEED_PARAM_FRAGMENTS
            ) or self._expr_flows(node.value)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None and last_attr(name) in _SEED_SOURCES:
                return True
            return any(self._expr_flows(a) for a in node.args)
        if isinstance(node, ast.BinOp):
            return self._expr_flows(node.left) or self._expr_flows(node.right)
        if isinstance(node, ast.Subscript):
            return self._expr_flows(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._expr_flows(e) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return self._expr_flows(node.body) and self._expr_flows(node.orelse)
        return False

    # -- the rules ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None and not self._exempt:
            self._check_rng_construction(node, name)
            self._check_global_rng(node, name)
        self.generic_visit(node)

    def _check_rng_construction(self, node: ast.Call, name: str) -> None:
        tail = last_attr(name)
        if tail not in ("default_rng", "Generator"):
            return
        if tail == "Generator" and not name.endswith("random.Generator"):
            # a Name `Generator` that is not numpy's (annotations etc.)
            if name != "Generator":
                return
        seed_args = [a for a in node.args if not isinstance(a, ast.Starred)]
        seed_args += [k.value for k in node.keywords]
        if not seed_args or all(
            isinstance(a, ast.Constant) and a.value is None for a in seed_args
        ):
            self.report(
                node, "DET001",
                f"{name}() without a seed draws fresh OS entropy; pass a "
                "seed spawned from SimulationConfig.seed",
            )
            return
        if not any(self._expr_flows(a) for a in seed_args):
            self.report(
                node, "DET003",
                f"{name}({ast.unparse(seed_args[0])}) does not flow from "
                "config.seed_sequence()/spawn_seeds or a seed parameter",
            )

    def _check_global_rng(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        tail = parts[-1]
        if len(parts) >= 2 and parts[-2] == "random":
            root = parts[0]
            if root in ("np", "numpy") and tail in _NUMPY_GLOBAL_DRAWS:
                self.report(
                    node, "DET002",
                    f"{name}() uses the shared global numpy RandomState; "
                    "draw from an explicit seeded Generator",
                )
            elif root == "random" and len(parts) == 2 \
                    and tail in _STDLIB_GLOBAL_DRAWS:
                self.report(
                    node, "DET002",
                    f"{name}() uses the global stdlib RNG; draw from an "
                    "explicit seeded Generator",
                )


# ----------------------------------------------------------------------
# DET010 — wall clock / entropy
# ----------------------------------------------------------------------

class ClockRule(RuleVisitor):
    def __init__(self, module: ModuleSource, waivers: WaiverIndex):
        super().__init__(module, waivers)
        self._exempt = _in_modules(module, (CLOCK_MODULE,))

    def visit_Call(self, node: ast.Call) -> None:
        if not self._exempt:
            name = call_name(node)
            if name is not None:
                suffix = ".".join(name.split(".")[-2:])
                if suffix in _CLOCK_ENTROPY_CALLS:
                    self.report(
                        node, "DET010",
                        f"{name}() reads the process clock/entropy; go "
                        "through repro.telemetry.clock so runs stay "
                        "reproducible and wall time has one definition",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET020 — module state written by worker-reachable functions
# ----------------------------------------------------------------------

class WorkerStateRule(RuleVisitor):
    """Flags module-level state written inside any function whose bare
    name is reachable from a pool worker entry (over-approximate)."""

    def __init__(self, module: ModuleSource, waivers: WaiverIndex,
                 graph: CallGraph, reachable: frozenset[str]):
        super().__init__(module, waivers)
        self._graph = graph
        self._reachable = reachable
        self._module_globals = module_level_assignments(module.tree)
        self._stack: list[str] = []

    def _visit_function(self, node) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _current_reachable(self) -> str | None:
        for name in self._stack:
            if name in self._reachable:
                return name
        return None

    def _flag(self, node: ast.AST, what: str) -> None:
        func = self._current_reachable()
        if func is None:
            return
        chain = " -> ".join(self._graph.witness_path(func))
        self.report(
            node, "DET020",
            f"{what} inside {func}(), which can run in a pool worker "
            f"({chain}); worker-side writes are lost and desynchronise "
            "jobs=1 and jobs>1 runs",
        )

    def visit_Global(self, node: ast.Global) -> None:
        self._flag(node, f"global statement for {', '.join(node.names)}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            owner = node.func.value.id
            if node.func.attr in _MUTATOR_METHODS \
                    and owner in self._module_globals:
                self._flag(
                    node,
                    f"in-place mutation {owner}.{node.func.attr}(...) of "
                    "module-level state",
                )
        self.generic_visit(node)

    def _flag_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ) and target.value.id in self._module_globals:
            self._flag(
                node,
                f"item assignment into module-level {target.value.id!r}",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._flag_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag_target(node.target, node)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET021 — closures across the pool boundary
# ----------------------------------------------------------------------

class PoolBoundaryRule(RuleVisitor):
    def __init__(self, module: ModuleSource, waivers: WaiverIndex):
        super().__init__(module, waivers)
        self._module_funcs = toplevel_function_names(module.tree)
        self._local_defs: list[set[str]] = []

    def _visit_function(self, node) -> None:
        nested = {
            child.name
            for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node
        }
        self._local_defs.append(nested)
        self.generic_visit(node)
        self._local_defs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None and last_attr(name) == "execute_shards" \
                and node.args:
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                self.report(
                    node, "DET021",
                    "lambda passed to execute_shards; lambdas cannot be "
                    "pickled across the process boundary",
                )
            elif isinstance(worker, ast.Name):
                in_local_scope = any(
                    worker.id in defs for defs in self._local_defs
                )
                if in_local_scope and worker.id not in self._module_funcs:
                    self.report(
                        node, "DET021",
                        f"locally defined function {worker.id!r} passed to "
                        "execute_shards; move it to module level so it "
                        "pickles by reference and captures no state",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET022 — unordered iteration feeding order-sensitive work
# ----------------------------------------------------------------------

class SetOrderRule(RuleVisitor):
    """Set iteration order depends on ``PYTHONHASHSEED``; when the
    order feeds RNG draws or float accumulation the run result does
    too.  Flags ``sum``/``fsum``/``np.sum`` directly over a set
    expression, and ``for``-loops/comprehensions over a set expression
    whose body draws RNG or accumulates floats."""

    _ACCUMULATORS = frozenset({"sum", "fsum", "cumsum"})

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None and last_attr(name) in self._ACCUMULATORS \
                and node.args and is_set_expression(node.args[0]):
            self.report(
                node, "DET022",
                f"{last_attr(name)}() over an unordered set: float "
                "accumulation order (and thus rounding) follows the hash "
                "seed; sort first",
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if is_set_expression(node.iter) and _order_sensitive_body(node.body):
            self.report(
                node, "DET022",
                "iterating an unordered set where the body draws RNG or "
                "accumulates floats; iterate sorted(...) instead",
            )
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            if is_set_expression(gen.iter) and _order_sensitive_body([node]):
                self.report(
                    node, "DET022",
                    "comprehension over an unordered set feeding RNG draws "
                    "or float accumulation; iterate sorted(...) instead",
                )
                break
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def _order_sensitive_body(body) -> bool:
    """Does the loop body draw RNG or accumulate floats?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                return True
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                parts = name.lower().split(".")
                if any("rng" in part or part == "random" for part in parts):
                    return True
    return False


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------

def module_rules(
    module: ModuleSource,
    waivers: WaiverIndex,
    graph: CallGraph,
    reachable: frozenset[str],
) -> list[RuleVisitor]:
    """All DET rule visitors for one module, ready to run."""
    return [
        RngRules(module, waivers),
        ClockRule(module, waivers),
        WorkerStateRule(module, waivers, graph, reachable),
        PoolBoundaryRule(module, waivers),
        SetOrderRule(module, waivers),
    ]
