"""Shared AST visitor infrastructure of the code gates.

Both static gates over the *codebase* — the determinism sanitizer
(``DET0xx``, :mod:`repro.dsan.rules`) and the repository style rules
(``REPRO00x``, :mod:`repro.dsan.repo_rules`, fronted by
``tools/check_source.py``) — are built on this module: one parsed
representation per file (:class:`ModuleSource`), one waiver-aware
reporting base class (:class:`RuleVisitor`), and small AST helpers the
rules share (dotted-name resolution, set-expression detection).
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import SanitizerError


@dataclasses.dataclass
class ModuleSource:
    """One parsed source file plus the context the rules need."""

    path: Path
    #: path relative to the scan root, POSIX-style (``core/engine.py``);
    #: rules use it for module-scoped exemptions
    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "ModuleSource":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SanitizerError(f"cannot read {path}: {exc}")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise SanitizerError(f"{path}: not parseable python: {exc}")
        if root is not None:
            try:
                relpath = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                relpath = path.name
        else:
            relpath = path.name
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            lines=source.splitlines(),
            tree=tree,
        )

    def line_text(self, lineno: int) -> str:
        """1-based source line (empty for out-of-range linenos)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def iter_python_files(roots: list[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for root in roots:
        if root.is_file():
            yield root
        elif root.is_dir():
            yield from sorted(root.rglob("*.py"))
        else:
            raise SanitizerError(f"no such file or directory: {root}")


class RuleVisitor(ast.NodeVisitor):
    """Node visitor with per-line waiver handling.

    ``waiver`` decides, from the source line text and a diagnostic
    code, whether a report on that line is suppressed; subclasses call
    :meth:`report` instead of appending directly.
    """

    def __init__(
        self,
        module: ModuleSource,
        waiver: Callable[[str, str], bool],
    ):
        self.module = module
        self._waiver = waiver
        #: ``(lineno, code, message)`` tuples, in visit order
        self.raw_reports: list[tuple[int, str, str]] = []

    def report(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        if not self._is_waived(lineno, code):
            self.raw_reports.append((lineno, code, message))

    def _is_waived(self, lineno: int, code: str) -> bool:
        """Waived by a trailing comment on the line, or by a comment in
        the pure-comment block immediately above it (where a waiver's
        justification is readable)."""
        if self._waiver(self.module.line_text(lineno), code):
            return True
        above = lineno - 1
        while above >= 1:
            text = self.module.line_text(above).strip()
            if not text.startswith("#"):
                break
            if self._waiver(text, code):
                return True
            above -= 1
        return False


# ----------------------------------------------------------------------
# AST helpers shared by the rules
# ----------------------------------------------------------------------

def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``np.random.default_rng``)."""
    return dotted_name(node.func)


def last_attr(name: str) -> str:
    """Final component of a dotted name."""
    return name.rsplit(".", 1)[-1]


def is_set_expression(node: ast.expr) -> bool:
    """Does the expression build an unordered ``set``/``frozenset``?

    Dicts are excluded deliberately: CPython dicts preserve insertion
    order (a language guarantee since 3.7), so iterating one is
    deterministic; only set iteration order depends on hash values and
    therefore on ``PYTHONHASHSEED``.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        # chained construction: set(a) | set(b), set(a).union(b)
        if name is not None and last_attr(name) in ("union", "intersection",
                                                    "difference",
                                                    "symmetric_difference"):
            return is_set_expression(node.func.value) \
                if isinstance(node.func, ast.Attribute) else False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expression(node.left) or is_set_expression(node.right)
    return False


def toplevel_function_names(tree: ast.Module) -> frozenset[str]:
    """Names bound to module-level ``def``/``async def`` statements."""
    return frozenset(
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


def module_level_assignments(tree: ast.Module) -> frozenset[str]:
    """Plain names assigned at module level (the module's globals)."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(
                    e.id for e in target.elts if isinstance(e, ast.Name)
                )
    return frozenset(names)
