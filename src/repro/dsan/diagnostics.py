"""Finding records and the stable ``DET0xx`` code registry.

The determinism sanitizer mirrors :mod:`repro.lint`'s design: every
pass emits :class:`Finding` records rather than raising, codes are
stable so CI scripts and waiver comments can filter on them, and the
registry below is the single source of truth for default severities
and the documentation table in the README.

A finding can be waived for one line with a trailing comment naming
the code::

    rng = np.random.default_rng()  # dsan: allow[DET001] replay tool, seeded upstream

Waivers are deliberately per-code (``allow[DET001,DET005]`` waives
two), so silencing one rule never silences the others on that line.
"""

from __future__ import annotations

import dataclasses
import re

from repro.lint.diagnostics import Severity

#: Waiver comment syntax: ``dsan: allow[...]`` naming one code or a
#: comma-separated list; anything after the bracket is the
#: (encouraged) human justification.
WAIVER_PATTERN = re.compile(r"#\s*dsan:\s*allow\[([A-Z0-9,\s]+)\]")


def waived_codes(line: str) -> frozenset[str]:
    """Codes waived by the trailing ``# dsan: allow[...]`` comment."""
    match = WAIVER_PATTERN.search(line)
    if match is None:
        return frozenset()
    return frozenset(
        code.strip() for code in match.group(1).split(",") if code.strip()
    )


@dataclasses.dataclass(frozen=True)
class DetCodeInfo:
    """Registry entry for one determinism diagnostic code."""

    code: str
    severity: Severity
    title: str
    fix: str


def _c(code: str, severity: Severity, title: str, fix: str) -> DetCodeInfo:
    return DetCodeInfo(code, severity, title, fix)


#: The determinism vocabulary.  DET00x are RNG-stream rules, DET01x
#: process/environment entropy, DET02x parallel-execution safety.
DET_CODES: dict[str, DetCodeInfo] = {c.code: c for c in (
    _c("DET001", Severity.ERROR,
       "unseeded RNG construction",
       "pass a seed that flows from SimulationConfig.seed / "
       "spawn_seeds; default_rng() draws fresh OS entropy and every "
       "run differs"),
    _c("DET002", Severity.ERROR,
       "global RNG state used",
       "draw from an explicit numpy Generator seeded through "
       "config.seed_sequence()/spawn_seeds; module-level "
       "np.random.*/random.* state is shared, order-dependent and "
       "invisible to the reproducibility contract"),
    _c("DET003", Severity.ERROR,
       "Generator does not flow from the seed plumbing",
       "derive the seed from config.seed_sequence(), spawn_seeds() or "
       "a seed parameter instead of a hard-coded or computed constant"),
    _c("DET010", Severity.ERROR,
       "wall-clock or entropy source outside telemetry.clock",
       "route timing through repro.telemetry.clock (wall_time/"
       "Stopwatch/time_call) and never let wall time, os.urandom or "
       "uuid values feed simulation results"),
    _c("DET020", Severity.ERROR,
       "worker-reachable function writes module-level state",
       "thread the state through the shard payload/result instead; "
       "module globals written in a pool worker are silently lost and "
       "make inline (jobs=1) and pooled runs diverge"),
    _c("DET021", Severity.ERROR,
       "non-module-level callable crosses the pool boundary",
       "use a module-level function or a picklable dataclass "
       "instance (see repro.core.sweep.SymmetricBias); lambdas and "
       "closures either fail to pickle or silently capture state"),
    _c("DET022", Severity.WARNING,
       "iteration over an unordered set feeds order-sensitive work",
       "iterate sorted(...) or a list; set order depends on "
       "PYTHONHASHSEED, so RNG draws and float accumulation over it "
       "differ between runs"),
)}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One determinism finding of the static pass."""

    code: str
    severity: Severity
    message: str
    path: str
    line: int
    symbol: str | None = None

    def format(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return (
            f"{self.path}:{self.line}: {self.code} "
            f"{self.severity}:{where} {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
        }


def finding(
    code: str,
    message: str,
    *,
    path: str,
    line: int,
    symbol: str | None = None,
    severity: Severity | None = None,
) -> Finding:
    """Build a :class:`Finding`, defaulting severity from the registry."""
    info = DET_CODES[code]
    return Finding(
        code=code,
        severity=info.severity if severity is None else severity,
        message=message,
        path=path,
        line=line,
        symbol=symbol,
    )


@dataclasses.dataclass(frozen=True)
class SanitizerReport:
    """The ordered findings of one ``repro sanitize`` run."""

    findings: tuple[Finding, ...]
    files_scanned: int = 0

    @property
    def max_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    @property
    def codes(self) -> frozenset[str]:
        return frozenset(f.code for f in self.findings)

    def has(self, code: str) -> bool:
        return any(f.code == code for f in self.findings)

    def by_code(self, code: str) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.code == code)

    def __iter__(self):
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def exit_code(self) -> int:
        """Process exit code mirroring the worst severity (0/1/2)."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 1 if worst is Severity.WARNING else 2

    def summary(self) -> str:
        if not self.findings:
            return f"clean ({self.files_scanned} files)"
        counts = []
        for severity, noun in (
            (Severity.ERROR, "error"),
            (Severity.WARNING, "warning"),
            (Severity.INFO, "info note"),
        ):
            n = sum(1 for f in self.findings if f.severity is severity)
            if n:
                counts.append(f"{n} {noun}{'s' if n != 1 else ''}")
        return ", ".join(counts) + f" ({self.files_scanned} files)"

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(f"determinism: {self.summary()}")
        return "\n".join(lines)
