"""Small shared I/O primitives.

Currently one: the atomic text-write codec introduced for the campaign
store's content-addressed cells (write to a sibling ``.tmp`` file, then
``os.replace`` into place so readers never observe a torn write).  The
static-analysis summary cache persists with the same codec, so the
implementation lives here where both can import it without pulling in
either package's heavier dependencies.
"""

from __future__ import annotations

import os
from pathlib import Path


def write_atomic_text(
    path: Path,
    text: str,
    *,
    error: type[Exception] = OSError,
) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    On failure raises ``error`` (a caller-supplied exception class, so
    each subsystem keeps its own error taxonomy) chained to the OS
    error.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    except OSError as exc:
        raise error(f"cannot write {path}: {exc}") from exc
