"""The ``repro check`` engine: load once, run every pass, one report.

:func:`check_paths` parses every Python file under the given roots
once (through the shared :data:`~repro.static.source.GLOBAL_CACHE`),
builds the cross-module call graph, runs the requested passes over
each module and returns a :class:`~repro.static.model.StaticReport`
ordered by path, line and code.  After a full run, waiver comments
that suppressed nothing are reported as ``W000``.

Passes (run in this order):

========  =============================================  ============
name      rules                                          module
========  =============================================  ============
repo      ``REPRO001-004`` repository style              repro.static.repo
det       ``DET0xx`` determinism                         repro.dsan.rules
arr       ``ARR0xx`` array-kernel abstract interpreter   repro.static.arr
perf      ``PERF0xx`` hot-loop hygiene                   repro.static.perf
num       ``NUM0xx`` numerical stability                 repro.static.numstab
units     ``UNIT0xx`` dimensional analysis               repro.static.unitcheck
========  =============================================  ============

All but ``units`` are per-module; ``units`` is interprocedural and
scheduled over the module SCC condensation by
:mod:`repro.static.summaries`, which also hosts the incremental
on-disk cache (``cache_dir``) and the ``--jobs`` fan-out both phases
share.  ``changed`` narrows the *reported* set to the dependency
closure of the given files — the ``--changed`` pre-commit path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.dsan.diagnostics import DET_CODES
from repro.errors import SanitizerError
from repro.static.arr import arr_pass
from repro.static.callgraph import CallGraph
from repro.static.model import (
    Diagnostic,
    StaticCode,
    StaticReport,
    diagnostic,
    register_codes,
)
from repro.static.numstab import numstab_pass
from repro.static.perf import perf_pass
from repro.static.repo import repo_pass
from repro.static.source import GLOBAL_CACHE, ModuleSource, iter_python_files
from repro.static.summaries import (
    ANALYSIS_VERSION,
    StaticCache,
    cell_id,
    finding_from_json,
    finding_to_json,
    run_units,
    set_pool_modules,
)
from repro.static.waivers import WaiverIndex

# the DET vocabulary lives in repro.dsan.diagnostics (its historical
# home, still the `repro sanitize` surface); mirror it into the
# unified registry so every emitter sees one vocabulary
register_codes(*(
    StaticCode(info.code, info.severity, info.title, info.fix,
               domain="determinism")
    for info in DET_CODES.values()
))


@dataclasses.dataclass
class AnalysisContext:
    """Cross-module facts shared by all passes of one run."""

    modules: list[ModuleSource]
    graph: CallGraph
    reachable: frozenset[str]


def _det_pass(module: ModuleSource, windex: WaiverIndex,
              ctx: AnalysisContext) -> list[Diagnostic]:
    from repro.dsan.rules import module_rules

    findings: list[Diagnostic] = []
    for rule in module_rules(module, windex, ctx.graph, ctx.reachable):
        rule.visit(module.tree)
        for lineno, code, message in rule.raw_reports:
            findings.append(
                diagnostic(
                    code, message,
                    path=str(module.path), line=lineno,
                    relpath=module.relpath,
                )
            )
    return findings


def _repo_pass(module: ModuleSource, windex: WaiverIndex,
               ctx: AnalysisContext) -> list[Diagnostic]:
    del ctx
    return repo_pass(module, windex)


def _arr_pass(module: ModuleSource, windex: WaiverIndex,
              ctx: AnalysisContext) -> list[Diagnostic]:
    del ctx
    return arr_pass(module, windex)


def _perf_pass(module: ModuleSource, windex: WaiverIndex,
               ctx: AnalysisContext) -> list[Diagnostic]:
    del ctx
    return perf_pass(module, windex)


def _num_pass(module: ModuleSource, windex: WaiverIndex,
              ctx: AnalysisContext) -> list[Diagnostic]:
    del ctx
    return numstab_pass(module, windex)


PassFn = Callable[[ModuleSource, WaiverIndex, AnalysisContext],
                  list[Diagnostic]]

#: Registered per-module passes, in execution order.
PASSES: dict[str, PassFn] = {
    "repo": _repo_pass,
    "det": _det_pass,
    "arr": _arr_pass,
    "perf": _perf_pass,
    "num": _num_pass,
}

#: Passes whose findings depend only on the module's own text — one
#: shared cache sub-entry covers them all.
_LOCAL_PASSES = ("repo", "arr", "perf", "num")

#: Every selectable pass name (``units`` is interprocedural, driven by
#: :mod:`repro.static.summaries` rather than the per-module loop).
PASS_NAMES: tuple[str, ...] = (*PASSES, "units")


def default_root() -> Path:
    """The installed ``repro`` package directory — what CI scans."""
    return Path(__file__).resolve().parent.parent


def load_context(
    roots: list[Path] | None = None,
    *,
    relative_to: Path | None = None,
) -> AnalysisContext:
    """Parse the scan set once and build the cross-module facts."""
    if not roots:
        roots = [default_root()]
    scan_root = relative_to
    if scan_root is None:
        scan_root = roots[0] if roots[0].is_dir() else roots[0].parent
    modules = [
        GLOBAL_CACHE.load(path, root=scan_root)
        for path in iter_python_files(roots)
    ]
    graph = CallGraph(modules)
    return AnalysisContext(
        modules=modules, graph=graph, reachable=graph.worker_reachable()
    )


# ----------------------------------------------------------------------
# per-module phase (with fork-pool worker)
# ----------------------------------------------------------------------

def _run_module_passes(
    module: ModuleSource,
    ctx: AnalysisContext,
    local_names: tuple[str, ...],
    run_det: bool,
) -> tuple[list[Diagnostic], set[int], list[Diagnostic], set[int]]:
    """One module through the selected per-module passes; returns
    (local findings, local used-waiver linenos, det findings, det
    used-waiver linenos) — the two cache sub-entries."""
    windex = WaiverIndex(module)
    local: list[Diagnostic] = []
    for name in local_names:
        local.extend(PASSES[name](module, windex, ctx))
    local_used = {w.lineno for w in windex.waivers if w.used}
    det: list[Diagnostic] = []
    det_used: set[int] = set()
    if run_det:
        det_windex = WaiverIndex(module)
        det = _det_pass(module, det_windex, ctx)
        det_used = {w.lineno for w in det_windex.waivers if w.used}
    return local, local_used, det, det_used


#: Fork-pool state: set before the executor is created so children
#: inherit the parsed context instead of pickling it per task.
_POOL_CTX: AnalysisContext | None = None
_POOL_SELECTION: tuple[tuple[str, ...], bool] = ((), False)


def _set_pool_state(
    ctx: AnalysisContext, local_names: tuple[str, ...], run_det: bool
) -> None:
    global _POOL_CTX, _POOL_SELECTION
    _POOL_CTX = ctx
    _POOL_SELECTION = (local_names, run_det)
    set_pool_modules(ctx.modules)


def _module_worker(
    relpath: str,
) -> tuple[list[Diagnostic], set[int], list[Diagnostic], set[int]]:
    ctx = _POOL_CTX
    assert ctx is not None, "pool state not initialised before fork"
    local_names, run_det = _POOL_SELECTION
    module = next(m for m in ctx.modules if m.relpath == relpath)
    return _run_module_passes(module, ctx, local_names, run_det)


def _det_context_hash(ctx: AnalysisContext) -> str:
    """Identity of the det pass's cross-module inputs.

    The only whole-program facts the DET rules consume are the
    worker-reachable name set and the witness call chains quoted in
    messages (DET020).  Keying the det cache cell on those — rather
    than the whole scan set — keeps entries valid across edits that
    leave pool reachability unchanged, so transitive invalidation is
    governed by the units summary machinery alone.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(ANALYSIS_VERSION.encode("utf-8"))
    for name in sorted(ctx.reachable):
        h.update(name.encode("utf-8"))
        h.update("\x1f".join(ctx.graph.witness_path(name)).encode("utf-8"))
        h.update(b"\x1e")
    return h.hexdigest()


def _resolve_changed(
    changed: Iterable[str | Path],
    modules: list[ModuleSource],
) -> set[str]:
    """Map externally supplied paths (git output, CLI args) onto scan
    relpaths; paths outside the scan set are silently ignored."""
    rels = {m.relpath for m in modules}
    by_resolved: dict[Path, str] = {}
    for module in modules:
        try:
            by_resolved[module.path.resolve()] = module.relpath
        except OSError:  # pragma: no cover - dangling scan entry
            continue
    out: set[str] = set()
    for item in changed:
        text = str(item).replace("\\", "/")
        if text in rels:
            out.add(text)
            continue
        try:
            resolved = Path(item).resolve()
        except OSError:  # pragma: no cover
            continue
        rel = by_resolved.get(resolved)
        if rel is not None:
            out.add(rel)
    return out


def check_paths(
    roots: list[Path] | None = None,
    *,
    relative_to: Path | None = None,
    passes: tuple[str, ...] | None = None,
    select: tuple[str, ...] | None = None,
    baseline: frozenset[str] | None = None,
    warn_unused_waivers: bool = True,
    jobs: int = 1,
    cache_dir: Path | None = None,
    changed: Sequence[str | Path] | None = None,
) -> StaticReport:
    """Run the static passes over files/directories (default: ``repro``).

    ``passes`` restricts which rule families run (``None`` = all);
    ``select`` keeps only findings whose code starts with one of the
    given prefixes; ``baseline`` moves findings with known
    fingerprints into the report's ``baselined`` bucket (both the
    context-hashed and the deprecated positional form match, the
    latter counted in ``baseline_legacy_matches``).  ``W000`` (unused
    waiver) is emitted only when every pass ran, since a partial run
    cannot know whether a waiver is stale.

    ``cache_dir`` enables the incremental cache (full pass set only —
    a partial run would poison shared cells); ``jobs`` > 1 fans
    modules and summary SCCs out over a fork pool (0 = all cores);
    ``changed`` narrows the *reported* modules to the dependency
    closure of the given files while summaries still cover the whole
    scan set.
    """
    ctx = load_context(roots, relative_to=relative_to)
    selected = PASS_NAMES if passes is None else tuple(passes)
    for name in selected:
        if name not in PASS_NAMES:
            raise SanitizerError(
                f"unknown pass {name!r} (have: {', '.join(PASS_NAMES)})"
            )
    full_run = set(selected) == set(PASS_NAMES)
    by_rel = {m.relpath: m for m in ctx.modules}

    if changed is None:
        report_rels = set(by_rel)
    else:
        report_rels = ctx.graph.dependents_of(
            _resolve_changed(changed, ctx.modules)
        )
    report_order = [m for m in ctx.modules if m.relpath in report_rels]

    cache: StaticCache | None = None
    if cache_dir is not None and full_run:
        try:
            cache = StaticCache(cache_dir)
        except OSError:
            cache = None

    local_names = tuple(n for n in _LOCAL_PASSES if n in selected)
    run_det = "det" in selected
    det_key = _det_context_hash(ctx)

    n_jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    executor: Any = None

    def pool() -> Any:
        """Lazily created fork executor (None when unavailable)."""
        nonlocal executor
        if executor is None and n_jobs > 1 and can_fork:
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(
                max_workers=n_jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        return executor

    if n_jobs > 1 and can_fork:
        _set_pool_state(ctx, local_names, run_det)

    findings: list[Diagnostic] = []
    used_by_rel: dict[str, set[int]] = {rel: set() for rel in report_rels}
    analyzed_rels: set[str] = set()

    try:
        # ---- per-module phase over the reported set -------------------
        misses: list[ModuleSource] = []
        for module in report_order:
            entry: dict[str, Any] = (
                {} if cache is None
                else cache.load(cell_id(module.relpath,
                                        module.content_hash))
            )
            local_entry = entry.get("local")
            det_entry = entry.get("det")
            hit = (
                cache is not None
                and isinstance(local_entry, dict)
                and isinstance(det_entry, dict)
                and det_entry.get("key") == det_key
            )
            if not hit:
                misses.append(module)
                continue
            try:
                assert isinstance(local_entry, dict)
                assert isinstance(det_entry, dict)
                for sub in (local_entry, det_entry):
                    findings.extend(
                        finding_from_json(p, module)
                        for p in sub["findings"]
                    )
                    used_by_rel[module.relpath] |= {
                        int(n) for n in sub["used"]
                    }
            except (KeyError, TypeError, ValueError):
                misses.append(module)

        if misses:
            analyzed_rels.update(m.relpath for m in misses)
            runner = pool() if len(misses) > 1 else None
            if runner is not None:
                results = list(runner.map(
                    _module_worker, [m.relpath for m in misses]
                ))
            else:
                results = [
                    _run_module_passes(m, ctx, local_names, run_det)
                    for m in misses
                ]
            for module, (local, local_used, det, det_used) in zip(
                misses, results
            ):
                findings.extend(local)
                findings.extend(det)
                used_by_rel[module.relpath] |= local_used | det_used
                if cache is not None:
                    cache.update(
                        cell_id(module.relpath, module.content_hash),
                        local={
                            "findings": [
                                finding_to_json(f) for f in local
                            ],
                            "used": sorted(local_used),
                        },
                        det={
                            "key": det_key,
                            "findings": [
                                finding_to_json(f) for f in det
                            ],
                            "used": sorted(det_used),
                        },
                    )

        # ---- interprocedural units phase (whole scan set) -------------
        if "units" in selected:
            outcome = run_units(
                ctx.modules, ctx.graph,
                cache=cache,
                executor_factory=(
                    pool if n_jobs > 1 and can_fork else None
                ),
            )
            for rel in report_rels:
                findings.extend(outcome.findings.get(rel, ()))
                used_by_rel[rel] |= outcome.used_waivers.get(rel, set())
            analyzed_rels |= outcome.reanalyzed & report_rels
    finally:
        if executor is not None:
            executor.shutdown()

    if warn_unused_waivers and full_run:
        for module in report_order:
            windex = WaiverIndex(module)
            used = used_by_rel[module.relpath]
            for waiver in windex.waivers:
                if waiver.lineno in used:
                    continue
                findings.append(
                    diagnostic(
                        "W000",
                        f"waiver {waiver.text!r} suppressed nothing; "
                        f"delete it or fix its code list",
                        path=str(module.path),
                        line=waiver.lineno,
                        relpath=module.relpath,
                    )
                )

    # attach the line's stripped text as the position-independent
    # fingerprint context (cached findings get it identically — same
    # content hash, same line text)
    findings = [
        dataclasses.replace(
            f,
            context=by_rel[f.relpath].line_text(f.line).strip(),
        ) if f.relpath in by_rel else f
        for f in findings
    ]

    if select:
        findings = [
            f for f in findings
            if any(f.code.startswith(prefix) for prefix in select)
        ]

    findings.sort(key=lambda f: (f.path, f.line, f.code))
    baselined: list[Diagnostic] = []
    legacy_matches = 0
    if baseline:
        kept: list[Diagnostic] = []
        for f in findings:
            if f.fingerprint() in baseline:
                baselined.append(f)
            elif f.legacy_fingerprint() in baseline:
                baselined.append(f)
                legacy_matches += 1
            else:
                kept.append(f)
        findings = kept
    analyzed_count = len(analyzed_rels & report_rels)
    return StaticReport(
        tuple(findings),
        files_scanned=len(ctx.modules),
        baselined=tuple(baselined),
        analyzed=analyzed_count if cache is not None else -1,
        cached=(
            len(report_rels) - analyzed_count if cache is not None else 0
        ),
        baseline_legacy_matches=legacy_matches,
    )


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------

def load_baseline(path: Path) -> frozenset[str]:
    """Read a baseline file: a JSON list of finding fingerprints."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SanitizerError(f"cannot read baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SanitizerError(f"baseline {path} is not valid JSON: {exc}")
    if isinstance(payload, dict):
        payload = payload.get("fingerprints", [])
    if not isinstance(payload, list) or not all(
        isinstance(item, str) for item in payload
    ):
        raise SanitizerError(
            f"baseline {path} must be a JSON list of fingerprint strings"
        )
    return frozenset(payload)


def write_baseline(report: StaticReport, path: Path) -> None:
    """Write every current finding's fingerprint as the new baseline
    (always the context-hashed, position-independent form)."""
    fingerprints = sorted(
        {f.fingerprint() for f in (*report.findings, *report.baselined)}
    )
    payload = json.dumps({"fingerprints": fingerprints}, indent=2) + "\n"
    try:
        path.write_text(payload, encoding="utf-8")
    except OSError as exc:
        raise SanitizerError(f"cannot write baseline {path}: {exc}")
