"""The ``repro check`` engine: load once, run every pass, one report.

:func:`check_paths` parses every Python file under the given roots
once (through the shared :data:`~repro.static.source.GLOBAL_CACHE`),
builds the cross-module call graph, runs the requested passes over
each module and returns a :class:`~repro.static.model.StaticReport`
ordered by path, line and code.  After a full run, waiver comments
that suppressed nothing are reported as ``W000``.

Passes (run in this order):

========  =============================================  ============
name      rules                                          module
========  =============================================  ============
repo      ``REPRO001-004`` repository style              repro.static.repo
det       ``DET0xx`` determinism                         repro.dsan.rules
arr       ``ARR0xx`` array-kernel abstract interpreter   repro.static.arr
perf      ``PERF0xx`` hot-loop hygiene                   repro.static.perf
========  =============================================  ============
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable

from repro.dsan.diagnostics import DET_CODES
from repro.errors import SanitizerError
from repro.static.arr import arr_pass
from repro.static.callgraph import CallGraph
from repro.static.model import (
    Diagnostic,
    StaticCode,
    StaticReport,
    diagnostic,
    register_codes,
)
from repro.static.perf import perf_pass
from repro.static.repo import repo_pass
from repro.static.source import GLOBAL_CACHE, ModuleSource, iter_python_files
from repro.static.waivers import WaiverIndex

# the DET vocabulary lives in repro.dsan.diagnostics (its historical
# home, still the `repro sanitize` surface); mirror it into the
# unified registry so every emitter sees one vocabulary
register_codes(*(
    StaticCode(info.code, info.severity, info.title, info.fix,
               domain="determinism")
    for info in DET_CODES.values()
))


@dataclasses.dataclass
class AnalysisContext:
    """Cross-module facts shared by all passes of one run."""

    modules: list[ModuleSource]
    graph: CallGraph
    reachable: frozenset[str]


def _det_pass(module: ModuleSource, windex: WaiverIndex,
              ctx: AnalysisContext) -> list[Diagnostic]:
    from repro.dsan.rules import module_rules

    findings: list[Diagnostic] = []
    for rule in module_rules(module, windex, ctx.graph, ctx.reachable):
        rule.visit(module.tree)
        for lineno, code, message in rule.raw_reports:
            findings.append(
                diagnostic(
                    code, message,
                    path=str(module.path), line=lineno,
                    relpath=module.relpath,
                )
            )
    return findings


def _repo_pass(module: ModuleSource, windex: WaiverIndex,
               ctx: AnalysisContext) -> list[Diagnostic]:
    del ctx
    return repo_pass(module, windex)


def _arr_pass(module: ModuleSource, windex: WaiverIndex,
              ctx: AnalysisContext) -> list[Diagnostic]:
    del ctx
    return arr_pass(module, windex)


def _perf_pass(module: ModuleSource, windex: WaiverIndex,
               ctx: AnalysisContext) -> list[Diagnostic]:
    del ctx
    return perf_pass(module, windex)


PassFn = Callable[[ModuleSource, WaiverIndex, AnalysisContext],
                  list[Diagnostic]]

#: Registered passes, in execution order.
PASSES: dict[str, PassFn] = {
    "repo": _repo_pass,
    "det": _det_pass,
    "arr": _arr_pass,
    "perf": _perf_pass,
}


def default_root() -> Path:
    """The installed ``repro`` package directory — what CI scans."""
    return Path(__file__).resolve().parent.parent


def load_context(
    roots: list[Path] | None = None,
    *,
    relative_to: Path | None = None,
) -> AnalysisContext:
    """Parse the scan set once and build the cross-module facts."""
    if not roots:
        roots = [default_root()]
    scan_root = relative_to
    if scan_root is None:
        scan_root = roots[0] if roots[0].is_dir() else roots[0].parent
    modules = [
        GLOBAL_CACHE.load(path, root=scan_root)
        for path in iter_python_files(roots)
    ]
    graph = CallGraph(modules)
    return AnalysisContext(
        modules=modules, graph=graph, reachable=graph.worker_reachable()
    )


def check_paths(
    roots: list[Path] | None = None,
    *,
    relative_to: Path | None = None,
    passes: tuple[str, ...] | None = None,
    select: tuple[str, ...] | None = None,
    baseline: frozenset[str] | None = None,
    warn_unused_waivers: bool = True,
) -> StaticReport:
    """Run the static passes over files/directories (default: ``repro``).

    ``passes`` restricts which rule families run (``None`` = all);
    ``select`` keeps only findings whose code starts with one of the
    given prefixes; ``baseline`` moves findings with known
    fingerprints into the report's ``baselined`` bucket.  ``W000``
    (unused waiver) is emitted only when every pass ran, since a
    partial run cannot know whether a waiver is stale.
    """
    ctx = load_context(roots, relative_to=relative_to)
    selected_passes = tuple(PASSES) if passes is None else passes
    for name in selected_passes:
        if name not in PASSES:
            raise SanitizerError(
                f"unknown pass {name!r} (have: {', '.join(PASSES)})"
            )

    findings: list[Diagnostic] = []
    windexes = [(module, WaiverIndex(module)) for module in ctx.modules]
    for name in PASSES:
        if name not in selected_passes:
            continue
        pass_fn = PASSES[name]
        for module, windex in windexes:
            findings.extend(pass_fn(module, windex, ctx))

    if warn_unused_waivers and set(selected_passes) == set(PASSES):
        for module, windex in windexes:
            for waiver in windex.unused():
                findings.append(
                    diagnostic(
                        "W000",
                        f"waiver {waiver.text!r} suppressed nothing; "
                        f"delete it or fix its code list",
                        path=str(module.path),
                        line=waiver.lineno,
                        relpath=module.relpath,
                    )
                )

    if select:
        findings = [
            f for f in findings
            if any(f.code.startswith(prefix) for prefix in select)
        ]

    findings.sort(key=lambda f: (f.path, f.line, f.code))
    baselined: list[Diagnostic] = []
    if baseline:
        kept: list[Diagnostic] = []
        for f in findings:
            (baselined if f.fingerprint() in baseline else kept).append(f)
        findings = kept
    return StaticReport(
        tuple(findings),
        files_scanned=len(ctx.modules),
        baselined=tuple(baselined),
    )


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------

def load_baseline(path: Path) -> frozenset[str]:
    """Read a baseline file: a JSON list of finding fingerprints."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SanitizerError(f"cannot read baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SanitizerError(f"baseline {path} is not valid JSON: {exc}")
    if isinstance(payload, dict):
        payload = payload.get("fingerprints", [])
    if not isinstance(payload, list) or not all(
        isinstance(item, str) for item in payload
    ):
        raise SanitizerError(
            f"baseline {path} must be a JSON list of fingerprint strings"
        )
    return frozenset(payload)


def write_baseline(report: StaticReport, path: Path) -> None:
    """Write every current finding's fingerprint as the new baseline."""
    fingerprints = sorted(
        {f.fingerprint() for f in (*report.findings, *report.baselined)}
    )
    payload = json.dumps({"fingerprints": fingerprints}, indent=2) + "\n"
    try:
        path.write_text(payload, encoding="utf-8")
    except OSError as exc:
        raise SanitizerError(f"cannot write baseline {path}: {exc}")
