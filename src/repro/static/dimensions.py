"""The physical-dimension lattice behind the ``UNIT0xx`` pass.

A :class:`Dimension` is a vector of rational exponents over the seven
SI base dimensions (kg, m, s, A, K, mol, cd).  Multiplication adds the
vectors, division subtracts, powers scale — so derived-unit identities
the physics relies on (``C^2 * ohm = J*s``, ``C/F = V``, ``C*V = J``)
hold *exactly*, with no table of special cases.  The spec parser
understands the derived units the simulator speaks (``J``, ``V``,
``C``, ``F``, ``ohm``, ``Hz``, ``eV``, ...) and compositions of them
(``J/K``, ``1/s``, ``C^2``, ``J*s``).

Like :mod:`repro.static.contracts`, this module imports nothing
heavier than the stdlib and :mod:`repro.errors`: the kernels pull it
in at import time through the :func:`~repro.static.contracts.units`
decorator.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

from repro.errors import ContractError

__all__ = [
    "DIMENSIONLESS",
    "Dimension",
    "UnitContract",
    "format_dimension",
    "parse_unit",
    "parse_units_spec",
]

#: The seven SI base dimensions, in canonical order.
BASE_SYMBOLS = ("kg", "m", "s", "A", "K", "mol", "cd")

_Vec = tuple[Fraction, ...]

_ZERO: _Vec = (Fraction(0),) * 7


def _base(symbol: str) -> _Vec:
    index = BASE_SYMBOLS.index(symbol)
    return tuple(
        Fraction(1 if i == index else 0) for i in range(7)
    )


@dataclasses.dataclass(frozen=True)
class Dimension:
    """A point of the dimension lattice: rational SI-base exponents."""

    exponents: _Vec = _ZERO

    def __mul__(self, other: "Dimension") -> "Dimension":
        return Dimension(tuple(
            a + b for a, b in zip(self.exponents, other.exponents)
        ))

    def __truediv__(self, other: "Dimension") -> "Dimension":
        return Dimension(tuple(
            a - b for a, b in zip(self.exponents, other.exponents)
        ))

    def __pow__(self, power: Fraction | int) -> "Dimension":
        p = Fraction(power)
        return Dimension(tuple(a * p for a in self.exponents))

    @property
    def is_dimensionless(self) -> bool:
        return all(a == 0 for a in self.exponents)

    def encode(self) -> str:
        """Canonical serialisation (``kg:1,m:2,s:-2``; ``1`` if empty)."""
        parts = [
            f"{sym}:{exp}"
            for sym, exp in zip(BASE_SYMBOLS, self.exponents)
            if exp != 0
        ]
        return ",".join(parts) or "1"

    @classmethod
    def decode(cls, text: str) -> "Dimension":
        if text == "1":
            return DIMENSIONLESS
        exps = {sym: Fraction(0) for sym in BASE_SYMBOLS}
        for part in text.split(","):
            sym, _, exp = part.partition(":")
            if sym not in exps:
                raise ContractError(f"bad dimension encoding {text!r}")
            exps[sym] = Fraction(exp)
        return cls(tuple(exps[sym] for sym in BASE_SYMBOLS))

    def __str__(self) -> str:
        return format_dimension(self)


DIMENSIONLESS = Dimension()

_KG = Dimension(_base("kg"))
_M = Dimension(_base("m"))
_S = Dimension(_base("s"))
_A = Dimension(_base("A"))
_KELVIN = Dimension(_base("K"))
_MOL = Dimension(_base("mol"))
_CD = Dimension(_base("cd"))

_J = _KG * _M * _M / (_S * _S)
_W = _J / _S
_C = _A * _S
_V = _J / _C
_F = _C / _V
_OHM = _V / _A
_HZ = DIMENSIONLESS / _S
_N = _J / _M

#: Every unit symbol the spec grammar accepts.
UNIT_SYMBOLS: dict[str, Dimension] = {
    "1": DIMENSIONLESS,
    "kg": _KG,
    "m": _M,
    "s": _S,
    "A": _A,
    "K": _KELVIN,
    "mol": _MOL,
    "cd": _CD,
    "J": _J,
    "W": _W,
    "C": _C,
    "V": _V,
    "F": _F,
    "ohm": _OHM,
    "Ohm": _OHM,
    "Hz": _HZ,
    "N": _N,
    #: electron-volt — an energy *scale*, dimensionally a joule
    "eV": _J,
}

#: Preferred names for pretty-printing, most specific first.
_DISPLAY: tuple[tuple[str, Dimension], ...] = (
    ("1", DIMENSIONLESS),
    ("J", _J),
    ("V", _V),
    ("C", _C),
    ("F", _F),
    ("ohm", _OHM),
    ("W", _W),
    ("N", _N),
    ("A", _A),
    ("K", _KELVIN),
    ("s", _S),
    ("kg", _KG),
    ("m", _M),
    ("1/s", _HZ),
    ("J/K", _J / _KELVIN),
    ("J*s", _J * _S),
    ("1/F", DIMENSIONLESS / _F),
    ("V/s", _V / _S),
    ("C^2", _C * _C),
    ("J^2", _J * _J),
    ("1/J", DIMENSIONLESS / _J),
    ("A/V", _A / _V),
)


def format_dimension(dim: Dimension) -> str:
    """Human-readable unit name: a derived symbol when one matches
    exactly, otherwise the base-exponent product (``kg m^2 s^-2``)."""
    for name, known in _DISPLAY:
        if dim == known:
            return name
    parts = []
    for sym, exp in zip(BASE_SYMBOLS, dim.exponents):
        if exp == 0:
            continue
        parts.append(sym if exp == 1 else f"{sym}^{exp}")
    return " ".join(parts) or "1"


def parse_unit(text: str) -> Dimension:
    """Parse one unit expression: symbols joined by ``*`` and ``/``,
    each optionally raised with ``^`` to an integer or fractional
    power (``J``, ``J/K``, ``1/s``, ``C^2``, ``J*s``, ``m^1/2``)."""
    stripped = text.strip()
    if not stripped:
        raise ContractError("empty unit expression")
    result = DIMENSIONLESS
    divide = False
    token = ""
    # split on * and / while remembering which operator preceded
    for piece, op in _tokenize(stripped):
        token = piece.strip()
        if not token:
            raise ContractError(f"empty term in unit expression {text!r}")
        factor = _parse_term(token, text)
        result = result / factor if divide else result * factor
        divide = op == "/"
    return result


def _tokenize(text: str) -> list[tuple[str, str]]:
    """``(term, following_operator)`` pairs; the last operator is ``""``."""
    pairs: list[tuple[str, str]] = []
    term = ""
    i = 0
    while i < len(text):
        ch = text[i]
        # a '/' directly after '^' belongs to a fractional exponent
        if ch in "*/" and not term.rstrip().endswith("^") \
                and not _in_exponent(term):
            pairs.append((term, ch))
            term = ""
        else:
            term += ch
        i += 1
    pairs.append((term, ""))
    return pairs


def _in_exponent(term: str) -> bool:
    """Is the parse position inside ``^p/q`` (so ``/`` is a fraction
    bar, not a unit divide)?  True right after ``^<digits>``."""
    idx = term.rfind("^")
    if idx < 0:
        return False
    tail = term[idx + 1:].strip()
    return bool(tail) and all(c.isdigit() or c == "-" for c in tail)


def _parse_term(token: str, context: str) -> Dimension:
    name, caret, power = token.partition("^")
    name = name.strip()
    if name not in UNIT_SYMBOLS:
        raise ContractError(
            f"unknown unit {name!r} in {context!r} "
            f"(known: {', '.join(sorted(UNIT_SYMBOLS))})"
        )
    dim = UNIT_SYMBOLS[name]
    if not caret:
        return dim
    try:
        exponent = Fraction(power.strip().replace(" ", ""))
    except (ValueError, ZeroDivisionError):
        raise ContractError(
            f"bad exponent {power!r} in unit expression {context!r}"
        )
    return dim ** exponent


@dataclasses.dataclass(frozen=True)
class UnitContract:
    """Parsed ``@units`` specification of one function.

    ``params`` maps parameter names to their declared dimensions;
    ``ret`` is the declared return dimension (``None`` when the spec
    has no ``->`` clause).  ``text`` is the original spec string.
    """

    params: dict[str, Dimension]
    ret: Dimension | None
    text: str = ""

    def param(self, name: str) -> Dimension | None:
        return self.params.get(name)


def parse_units_spec(text: str) -> UnitContract:
    """Parse ``"delta_w: J, resistance: ohm, temperature: K -> 1/s"``.

    Either side is optional: ``"-> J"`` declares only the return,
    ``"energy: J"`` only a parameter.  Parameter names not mentioned
    are unconstrained.
    """
    head, arrow, tail = text.partition("->")
    ret: Dimension | None = None
    if arrow:
        if not tail.strip():
            raise ContractError(f"empty return unit in spec {text!r}")
        ret = parse_unit(tail)
    params: dict[str, Dimension] = {}
    head = head.strip()
    if head:
        for clause in head.split(","):
            name, colon, unit = clause.partition(":")
            name = name.strip()
            if not colon or not name or not unit.strip():
                raise ContractError(
                    f"bad parameter clause {clause.strip()!r} in units "
                    f"spec {text!r} (expected 'name: unit')"
                )
            if not name.isidentifier():
                raise ContractError(
                    f"bad parameter name {name!r} in units spec {text!r}"
                )
            if name in params:
                raise ContractError(
                    f"parameter {name!r} declared twice in units "
                    f"spec {text!r}"
                )
            params[name] = parse_unit(unit)
    return UnitContract(params=params, ret=ret, text=text.strip())
