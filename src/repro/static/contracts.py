"""Array-contract decorators for numpy kernels.

Kernel entry points declare the symbolic shape and dtype of their array
arguments and results::

    @array_contract(q="(n_islands,) float64", out="() float64")
    def free_energy_change(q, ...):
        ...

The decorators are zero-cost at runtime — they parse the specification
once at import time and attach it as ``__array_contract__`` — and the
``ARR0xx`` abstract interpreter (:mod:`repro.static.arr`) reads the
same decorators back off the AST, so the declaration and the check can
never drift apart.  :func:`hot` and :func:`lowerable` similarly mark
functions for the ``PERF0xx`` hot-loop hygiene pass and the planned
numba lowering of the batched engine.

Specification grammar (one string per parameter, ``out`` for the
return value)::

    spec     := shape [dtype] [order]
    shape    := "()" | "(" dim ("," dim)* [","] ")" | "any"
    dim      := integer | identifier | "?"
    dtype    := "bool" | "int32" | "int64" | "float32" | "float64"
              | "complex128" | "int" | "float" | "any"
    order    := "C" | "F"

``()`` is a 0-d scalar, identifiers are symbolic dimensions unified
across parameters of one contract (two parameters declared ``(n,)``
must agree), ``?`` is an anonymous unknown, ``any`` leaves shape or
dtype unconstrained.  ``mutates=("a", ...)`` whitelists parameters the
kernel intentionally writes in place; writes to any other parameter
are flagged as ``ARR003``.

This module deliberately imports nothing heavier than the stdlib and
:mod:`repro.errors`, because the physics kernels import it at the top
of their own import chain.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, TypeVar

from repro.errors import ContractError
from repro.static.dimensions import UnitContract, parse_units_spec

__all__ = [
    "ArrayContract",
    "ArraySpec",
    "array_contract",
    "hot",
    "lowerable",
    "parse_spec",
    "units",
]

_F = TypeVar("_F", bound=Callable[..., object])

#: Canonical dtype names in promotion order, plus accepted aliases.
DTYPE_ALIASES = {
    "bool": "bool",
    "int32": "int32",
    "int64": "int64",
    "int": "int64",
    "float32": "float32",
    "float64": "float64",
    "float": "float64",
    "complex128": "complex128",
    "complex": "complex128",
}

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclasses.dataclass(frozen=True)
class ArraySpec:
    """Parsed contract for one array value.

    ``shape`` is a tuple of dims — ``int`` for fixed sizes, ``str``
    for named symbolic dims, ``None`` for ``?`` — or ``None`` when the
    shape is unconstrained (``any``).  ``dtype`` is a canonical dtype
    name or ``None`` for unconstrained; ``order`` is ``"C"``/``"F"``
    or ``None``.
    """

    shape: tuple[int | str | None, ...] | None
    dtype: str | None
    order: str | None = None
    #: the original text, for error messages and documentation
    text: str = ""

    @property
    def rank(self) -> int | None:
        return None if self.shape is None else len(self.shape)

    def describe(self) -> str:
        return self.text or "any"


def parse_spec(text: str) -> ArraySpec:
    """Parse one contract string into an :class:`ArraySpec`."""
    stripped = text.strip()
    rest = stripped
    shape: tuple[int | str | None, ...] | None
    if rest.startswith("("):
        end = rest.find(")")
        if end < 0:
            raise ContractError(f"unclosed shape in contract {text!r}")
        shape = _parse_shape(rest[1:end], text)
        rest = rest[end + 1:].strip()
    elif rest == "any" or rest.startswith("any "):
        shape = None
        rest = rest[3:].strip()
    else:
        raise ContractError(
            f"contract {text!r} must start with a shape: '(...)' or 'any'"
        )
    dtype: str | None = None
    order: str | None = None
    for word in rest.split():
        if word in ("C", "F") and order is None:
            order = word
        elif word == "any" and dtype is None:
            dtype = None
        elif word in DTYPE_ALIASES and dtype is None:
            dtype = DTYPE_ALIASES[word]
        else:
            raise ContractError(
                f"unrecognised token {word!r} in contract {text!r} "
                f"(expected a dtype or C/F order flag)"
            )
    return ArraySpec(shape=shape, dtype=dtype, order=order, text=stripped)


def _parse_shape(body: str, text: str) -> tuple[int | str | None, ...]:
    body = body.strip()
    if not body:
        return ()
    dims: list[int | str | None] = []
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue  # trailing comma: "(n,)"
        if part == "?":
            dims.append(None)
        elif part.lstrip("-").isdigit():
            size = int(part)
            if size < 0:
                raise ContractError(
                    f"negative dimension {part} in contract {text!r}"
                )
            dims.append(size)
        elif _IDENT.match(part):
            dims.append(part)
        else:
            raise ContractError(
                f"bad dimension {part!r} in contract {text!r}"
            )
    return tuple(dims)


@dataclasses.dataclass(frozen=True)
class ArrayContract:
    """The full parsed contract of one kernel."""

    params: dict[str, ArraySpec]
    out: ArraySpec | None
    mutates: frozenset[str]

    def spec_for(self, name: str) -> ArraySpec | None:
        return self.params.get(name)


def array_contract(
    *,
    out: str | None = None,
    mutates: tuple[str, ...] | str = (),
    **specs: str,
) -> Callable[[_F], _F]:
    """Declare the array shapes/dtypes of a kernel's signature.

    Keyword arguments name parameters and give their spec strings;
    ``out`` is the return value's spec; ``mutates`` whitelists
    parameters that are intentionally written in place.
    """
    if isinstance(mutates, str):
        mutates = (mutates,)
    parsed = {name: parse_spec(spec) for name, spec in specs.items()}
    out_spec = None if out is None else parse_spec(out)
    contract = ArrayContract(
        params=parsed, out=out_spec, mutates=frozenset(mutates)
    )

    def decorate(func: _F) -> _F:
        _check_parameters(func, contract)
        func.__array_contract__ = contract  # type: ignore[attr-defined]
        return func

    return decorate


def _check_parameters(func: Callable[..., object],
                      contract: ArrayContract) -> None:
    """Fail at decoration time if the contract names unknown params."""
    code = getattr(func, "__code__", None)
    if code is None:
        return
    names = set(
        code.co_varnames[: code.co_argcount + code.co_kwonlyargcount]
    )
    for name in sorted(set(contract.params) | contract.mutates):
        if name not in names:
            raise ContractError(
                f"contract on {func.__qualname__}() names parameter "
                f"{name!r}, which the function does not have"
            )


def units(spec: str) -> Callable[[_F], _F]:
    """Declare the physical dimensions of a kernel's signature.

    One string in the grammar of
    :func:`repro.static.dimensions.parse_units_spec`::

        @units("delta_w: J, resistance: ohm, temperature: K -> 1/s")
        def orthodox_rate(delta_w, resistance, temperature):
            ...

    Zero-cost at runtime: the spec is parsed once at import time and
    attached as ``__units__``; the ``UNIT0xx`` abstract interpreter
    (:mod:`repro.static.unitcheck`) reads the same decorator back off the
    AST and checks every use site — including calls from *other*
    modules, through the function-summary engine — against it.
    """
    contract = parse_units_spec(spec)

    def decorate(func: _F) -> _F:
        _check_unit_parameters(func, contract)
        func.__units__ = contract  # type: ignore[attr-defined]
        return func

    return decorate


def _check_unit_parameters(func: Callable[..., object],
                           contract: UnitContract) -> None:
    """Fail at decoration time if the spec names unknown parameters."""
    code = getattr(func, "__code__", None)
    if code is None:
        return
    names = set(
        code.co_varnames[: code.co_argcount + code.co_kwonlyargcount]
    )
    for name in sorted(contract.params):
        if name not in names:
            raise ContractError(
                f"units contract on {func.__qualname__}() names parameter "
                f"{name!r}, which the function does not have"
            )


def hot(func: _F) -> _F:
    """Mark a kernel as hot-path: the ``PERF0xx`` hygiene rules apply."""
    func.__hot__ = True  # type: ignore[attr-defined]
    return func


def lowerable(func: _F) -> _F:
    """Mark a kernel as a numba-lowering candidate: in addition to the
    hot-path hygiene rules, ``PERF004`` flags constructs the planned
    ``nopython`` lowering cannot compile."""
    func.__lowerable__ = True  # type: ignore[attr-defined]
    func.__hot__ = True  # type: ignore[attr-defined]
    return func
