"""``ARR0xx``: abstract interpretation of annotated array kernels.

For every function carrying an :func:`repro.static.array_contract`
decorator, an intraprocedural interpreter tracks symbolic numpy facts
— shape (concrete, symbolic or unknown per dimension), dtype and
aliasing back to caller-visible parameters — through assignments,
arithmetic, numpy constructors, reductions and control flow (branches
and loops merge environments with a widening join).

The pass only reports what it can *prove* from the contract and the
dataflow; two symbolic dimensions that merely *might* differ are never
flagged.

Codes
=====

========  ========================================================
ARR001    provably incompatible broadcast (or matmul inner dims)
ARR002    silent dtype promotion/demotion (mixed float32/float64
          arithmetic, narrowing stores, return dtype vs contract)
ARR003    in-place mutation of a caller-visible array not listed
          in the contract's ``mutates`` whitelist
ARR004    reduction axis or returned shape contradicts the
          declared contract
ARR005    malformed or unparseable ``array_contract`` declaration
========  ========================================================
"""

from __future__ import annotations

import ast
import dataclasses

from repro.errors import ContractError
from repro.lint.diagnostics import Severity
from repro.static.contracts import (
    DTYPE_ALIASES,
    ArrayContract,
    ArraySpec,
    parse_spec,
)
from repro.static.model import Diagnostic, StaticCode, diagnostic, register_codes
from repro.static.shapes import (
    BroadcastError,
    Dim,
    Shape,
    broadcast,
    format_shape,
    is_narrowing,
    join_shape,
    matmul_shape,
    promote,
    reduce_shape,
)
from repro.static.source import ModuleSource
from repro.static.visitors import dotted_name, last_attr
from repro.static.waivers import WaiverIndex

register_codes(
    StaticCode(
        "ARR001", Severity.ERROR, "incompatible array broadcast",
        "the operand shapes can never broadcast; fix the shapes or "
        "the contract that declares them",
        domain="array",
    ),
    StaticCode(
        "ARR002", Severity.WARNING, "silent dtype conversion",
        "make the conversion explicit with astype()/dtype= or align "
        "the dtypes in the contract",
        domain="array",
    ),
    StaticCode(
        "ARR003", Severity.ERROR, "in-place mutation of caller array",
        "copy before writing, or declare the parameter in the "
        "contract's mutates=(...) whitelist",
        domain="array",
    ),
    StaticCode(
        "ARR004", Severity.ERROR, "shape contradicts declared contract",
        "the reduction axis or returned shape can never satisfy the "
        "declared contract; fix the code or the contract",
        domain="array",
    ),
    StaticCode(
        "ARR005", Severity.ERROR, "malformed array contract",
        "fix the contract specification string (see the grammar in "
        "repro.static.contracts)",
        domain="array",
    ),
)

#: numpy namespaces the AST-side analysis recognises
_NUMPY_NAMES = ("np", "numpy")

#: constructors returning a fresh array of an explicit shape
_FRESH_BY_SHAPE = {"zeros", "ones", "empty", "full"}
#: constructors mirroring another array's shape
_FRESH_LIKE = {"zeros_like", "ones_like", "empty_like", "full_like"}
#: conversions that may return the input itself (alias-preserving)
_ALIASING = {"asarray", "ascontiguousarray", "asfortranarray", "atleast_1d"}
#: elementwise ufuncs that keep shape and promote ints to float64
_FLOAT_UFUNCS = {
    "sqrt", "exp", "expm1", "log", "log1p", "log2", "log10", "sin",
    "cos", "tan", "sinh", "cosh", "tanh", "arcsin", "arccos", "arctan",
}
#: elementwise ufuncs that keep shape and dtype
_SAME_UFUNCS = {"abs", "absolute", "negative", "clip", "minimum", "maximum"}
#: reductions (numpy functions and ndarray methods alike)
_REDUCTIONS = {
    "sum", "mean", "max", "min", "amax", "amin", "prod", "std", "var",
    "any", "all", "argmax", "argmin", "nansum", "nanmean",
}
#: ndarray methods that write the receiver in place
_MUTATOR_METHODS = {"sort", "fill", "resize", "partition", "put"}


@dataclasses.dataclass(frozen=True)
class AValue:
    """Abstract value: what the interpreter knows about one name."""

    shape: Shape = None
    dtype: str | None = None
    #: caller-visible parameter this value aliases (views preserve it)
    source: str | None = None
    #: for scalar ints only: the dimension this value measures
    #: (``n = q.shape[0]`` knows it equals symbolic dim ``n_islands``)
    dim: Dim = None


UNKNOWN = AValue()

Env = dict[str, AValue]


def _join_env(a: Env, b: Env) -> Env:
    """Widening merge of two branch environments."""
    merged: Env = {}
    for name in set(a) & set(b):
        va, vb = a[name], b[name]
        merged[name] = AValue(
            shape=join_shape(va.shape, vb.shape),
            dtype=va.dtype if va.dtype == vb.dtype else None,
            source=va.source if va.source == vb.source else None,
            dim=va.dim if va.dim == vb.dim else None,
        )
    return merged


def _spec_value(spec: ArraySpec, source: str | None) -> AValue:
    return AValue(shape=spec.shape, dtype=spec.dtype, source=source)


class KernelInterpreter:
    """Interpret one annotated kernel body abstractly."""

    def __init__(
        self,
        module: ModuleSource,
        windex: WaiverIndex,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        contract: ArrayContract,
        qualname: str,
    ):
        self.module = module
        self.windex = windex
        self.func = func
        self.contract = contract
        self.qualname = qualname
        self.findings: list[Diagnostic] = []

    # ------------------------------------------------------------------
    def report(self, node: ast.AST, code: str, message: str,
               witness: tuple[str, ...] = ()) -> None:
        lineno = getattr(node, "lineno", self.func.lineno)
        if self.windex.waives(lineno, code):
            return
        self.findings.append(
            diagnostic(
                code,
                message,
                path=str(self.module.path),
                line=lineno,
                relpath=self.module.relpath,
                symbol=self.qualname,
                witness=witness,
            )
        )

    # ------------------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        env: Env = {}
        args = self.func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            spec = self.contract.spec_for(arg.arg)
            if spec is not None:
                env[arg.arg] = _spec_value(spec, source=arg.arg)
        self.exec_block(self.func.body, env)
        return self.findings

    # -- statements ----------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt], env: Env) -> Env:
        for stmt in stmts:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.assign_target(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign_target(
                    stmt.target, self.eval(stmt.value, env), env
                )
        elif isinstance(stmt, ast.AugAssign):
            self.exec_augassign(stmt, env)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_return(stmt, self.eval(stmt.value, env))
        elif isinstance(stmt, ast.If):
            then_env = self.exec_block(stmt.body, dict(env))
            else_env = self.exec_block(stmt.orelse, dict(env))
            env = _join_env(then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.bind_loop_target(stmt, env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _join_env(env, body_env)
            env = self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _join_env(env, body_env)
            env = self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.With):
            env = self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            env = self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                env = _join_env(env, self.exec_block(handler.body, dict(env)))
            env = self.exec_block(stmt.orelse, env)
            env = self.exec_block(stmt.finalbody, env)
        # nested defs/classes, imports, pass/break/continue: no dataflow
        return env

    def assign_target(self, target: ast.expr, value: AValue,
                      env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Subscript):
            self.check_store(target, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign_target(elt, UNKNOWN, env)
        # attribute stores (self.x = ...) are out of scope

    def exec_augassign(self, stmt: ast.AugAssign, env: Env) -> None:
        value = self.eval(stmt.value, env)
        if isinstance(stmt.target, ast.Name):
            current = env.get(stmt.target.id, UNKNOWN)
            self.check_mutation(stmt, current,
                                f"augmented assignment to {stmt.target.id!r}")
            env[stmt.target.id] = self.binop_value(
                stmt, current, value, stmt.op
            )
        elif isinstance(stmt.target, ast.Subscript):
            self.check_store(stmt.target, value, env)

    # -- mutation / store checks ---------------------------------------
    def check_store(self, target: ast.Subscript, value: AValue,
                    env: Env) -> None:
        """``arr[...] = value`` — alias mutation and narrowing dtype."""
        base = self.eval(target.value, env)
        self.check_mutation(
            target, base,
            "subscript store into caller-visible array",
        )
        if is_narrowing(value.dtype, base.dtype):
            self.report(
                target, "ARR002",
                f"storing {value.dtype} values into a {base.dtype} array "
                f"silently demotes them",
            )

    def check_mutation(self, node: ast.AST, base: AValue,
                       what: str) -> None:
        if base.source is None or base.source in self.contract.mutates:
            return
        if base.shape is not None and len(base.shape) == 0:
            return  # 0-d contract values are scalars in practice
        self.report(
            node, "ARR003",
            f"{what} mutates parameter {base.source!r}, which the "
            f"contract does not list in mutates=(...)",
        )

    # -- return checks -------------------------------------------------
    def check_return(self, stmt: ast.Return, value: AValue) -> None:
        spec = self.contract.out
        if spec is None:
            return
        if spec.shape is not None and value.shape is not None:
            if len(spec.shape) != len(value.shape):
                self.report(
                    stmt, "ARR004",
                    f"returns shape {format_shape(value.shape)} but the "
                    f"contract declares out={spec.describe()!r}",
                )
                return
            for declared, got in zip(spec.shape, value.shape):
                if isinstance(declared, int) and isinstance(got, int) \
                        and declared != got:
                    self.report(
                        stmt, "ARR004",
                        f"returns shape {format_shape(value.shape)} but "
                        f"the contract declares out={spec.describe()!r}",
                    )
                    return
        if spec.dtype is not None and value.dtype is not None \
                and spec.dtype != value.dtype:
            self.report(
                stmt, "ARR002",
                f"returns dtype {value.dtype} but the contract declares "
                f"out={spec.describe()!r}",
            )

    # -- loop binding --------------------------------------------------
    def bind_loop_target(self, stmt: ast.For | ast.AsyncFor,
                         env: Env) -> None:
        iterated = self.eval(stmt.iter, env)
        element = UNKNOWN
        if iterated.shape is not None and len(iterated.shape) >= 1:
            inner = iterated.shape[1:]
            element = AValue(
                shape=inner,
                dtype=iterated.dtype,
                source=iterated.source if len(inner) else None,
            )
        if isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = element
        else:
            self.assign_target(stmt.target, UNKNOWN, env)

    # -- expressions ---------------------------------------------------
    def eval(self, node: ast.expr, env: Env) -> AValue:
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AValue(shape=(), dtype="bool")
            if isinstance(node.value, int):
                # python ints are weakly typed in numpy arithmetic:
                # dtype None so `x * 2` never reports a promotion
                return AValue(shape=(), dtype=None, dim=node.value)
            if isinstance(node.value, (float, complex)):
                return AValue(shape=(), dtype=None)
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self.binop_value(node, left, right, node.op)
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand, env)
            return dataclasses.replace(inner, source=None)
        if isinstance(node, ast.Compare):
            value = self.eval(node.left, env)
            for comparator in node.comparators:
                other = self.eval(comparator, env)
                value = self.binop_value(node, value, other, None)
            return AValue(shape=value.shape, dtype="bool")
        if isinstance(node, ast.BoolOp):
            values = [self.eval(v, env) for v in node.values]
            merged = values[0]
            for value in values[1:]:
                merged = AValue(
                    shape=join_shape(merged.shape, value.shape),
                    dtype=merged.dtype if merged.dtype == value.dtype
                    else None,
                )
            return merged
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            then = self.eval(node.body, env)
            other = self.eval(node.orelse, env)
            return AValue(
                shape=join_shape(then.shape, other.shape),
                dtype=then.dtype if then.dtype == other.dtype else None,
                source=then.source if then.source == other.source else None,
            )
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.ListComp,
                             ast.GeneratorExp, ast.Dict, ast.Set)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        return UNKNOWN

    def binop_value(self, node: ast.AST, left: AValue, right: AValue,
                    op: ast.operator | None) -> AValue:
        if isinstance(op, ast.MatMult):
            result = matmul_shape(left.shape, right.shape)
            if isinstance(result, BroadcastError):
                self.report(
                    node, "ARR001",
                    f"matmul inner dimensions can never agree: "
                    f"{format_shape(left.shape)} @ "
                    f"{format_shape(right.shape)}",
                )
                return UNKNOWN
            return AValue(shape=result,
                          dtype=promote(left.dtype, right.dtype))
        try:
            shape = broadcast(left.shape, right.shape)
        except BroadcastError:
            self.report(
                node, "ARR001",
                f"operands with shapes {format_shape(left.shape)} and "
                f"{format_shape(right.shape)} can never broadcast",
            )
            return UNKNOWN
        if {left.dtype, right.dtype} == {"float32", "float64"}:
            self.report(
                node, "ARR002",
                "mixing float32 and float64 operands silently promotes "
                "the result to float64",
            )
        dtype = promote(left.dtype, right.dtype)
        if isinstance(op, ast.Div):
            dtype = promote(dtype, "float64") if dtype is not None else None
        return AValue(shape=shape, dtype=dtype)

    # -- attribute / subscript -----------------------------------------
    def eval_attribute(self, node: ast.Attribute, env: Env) -> AValue:
        base = self.eval(node.value, env)
        if node.attr == "T":
            shape = None if base.shape is None else tuple(
                reversed(base.shape)
            )
            return dataclasses.replace(base, shape=shape)
        if node.attr in ("real", "imag"):
            return dataclasses.replace(base, source=None)
        return UNKNOWN

    def eval_subscript(self, node: ast.Subscript, env: Env) -> AValue:
        # n = x.shape[0]: a scalar that measures a known dimension
        if isinstance(node.value, ast.Attribute) \
                and node.value.attr == "shape":
            owner = self.eval(node.value.value, env)
            if owner.shape is not None \
                    and isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, int) \
                    and -len(owner.shape) <= node.slice.value \
                    < len(owner.shape):
                return AValue(shape=(), dtype="int64",
                              dim=owner.shape[node.slice.value])
            return AValue(shape=(), dtype="int64")
        base = self.eval(node.value, env)
        if base.shape is None:
            return AValue(source=base.source)
        if isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, int):
            if len(base.shape) == 0:
                return UNKNOWN
            inner = base.shape[1:]
            return AValue(
                shape=inner,
                dtype=base.dtype,
                source=base.source if len(inner) else None,
            )
        if isinstance(node.slice, ast.Slice):
            if len(base.shape) == 0:
                return UNKNOWN
            lower, upper = node.slice.lower, node.slice.upper
            full = lower is None and upper is None and \
                node.slice.step is None
            first: Dim = base.shape[0] if full else None
            return AValue(
                shape=(first,) + base.shape[1:],
                dtype=base.dtype,
                source=base.source,
            )
        # tuple / fancy / boolean indexing: give up on shape, but a
        # basic-slice view still aliases the base
        self.eval(node.slice, env)
        return AValue(dtype=base.dtype, source=base.source)

    # -- calls ---------------------------------------------------------
    def eval_call(self, node: ast.Call, env: Env) -> AValue:
        for keyword in node.keywords:
            if keyword.arg == "out":
                target = self.eval(keyword.value, env)
                self.check_mutation(
                    node, target, "out= argument writes into"
                )
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if parts[0] in _NUMPY_NAMES and len(parts) >= 2:
                return self.eval_numpy_call(node, parts[-1], env)
            if parts[0] == "len" and len(parts) == 1 and node.args:
                target = self.eval(node.args[0], env)
                if target.shape is not None and len(target.shape) >= 1:
                    return AValue(shape=(), dtype="int64",
                                  dim=target.shape[0])
                return AValue(shape=(), dtype="int64")
        # ndarray method calls: receiver is an expression we know about
        if isinstance(node.func, ast.Attribute):
            return self.eval_method_call(node, node.func, env)
        for arg in node.args:
            self.eval(arg, env)
        return UNKNOWN

    def eval_method_call(self, node: ast.Call, func: ast.Attribute,
                         env: Env) -> AValue:
        receiver = self.eval(func.value, env)
        method = func.attr
        if method in _MUTATOR_METHODS:
            self.check_mutation(
                node, receiver, f".{method}() call on"
            )
            return UNKNOWN
        if method == "copy":
            return dataclasses.replace(receiver, source=None)
        if method == "astype":
            dtype = self.dtype_of_arg(node.args[0], env) if node.args \
                else None
            return AValue(shape=receiver.shape, dtype=dtype)
        if method == "reshape":
            return AValue(dtype=receiver.dtype, source=receiver.source)
        if method in _REDUCTIONS:
            return self.reduction_value(node, receiver, method,
                                        axis_arg_index=0)
        for arg in node.args:
            self.eval(arg, env)
        return UNKNOWN

    def eval_numpy_call(self, node: ast.Call, func: str,
                        env: Env) -> AValue:
        if func in _FRESH_BY_SHAPE:
            shape = self.shape_from_arg(node.args[0], env) if node.args \
                else None
            dtype = self.dtype_keyword(node, env, default="float64")
            return AValue(shape=shape, dtype=dtype)
        if func in _FRESH_LIKE:
            template = self.eval(node.args[0], env) if node.args \
                else UNKNOWN
            dtype = self.dtype_keyword(node, env, default=template.dtype)
            return AValue(shape=template.shape, dtype=dtype)
        if func in _ALIASING:
            value = self.eval(node.args[0], env) if node.args else UNKNOWN
            dtype = self.dtype_keyword(node, env, default=value.dtype)
            return AValue(shape=value.shape, dtype=dtype,
                          source=value.source)
        if func == "array":
            value = self.eval(node.args[0], env) if node.args else UNKNOWN
            dtype = self.dtype_keyword(node, env, default=value.dtype)
            return AValue(shape=value.shape, dtype=dtype)
        if func == "copy":
            value = self.eval(node.args[0], env) if node.args else UNKNOWN
            return dataclasses.replace(value, source=None)
        if func in _REDUCTIONS:
            receiver = self.eval(node.args[0], env) if node.args \
                else UNKNOWN
            return self.reduction_value(node, receiver, func,
                                        axis_arg_index=1)
        if func in ("dot", "matmul"):
            if len(node.args) >= 2:
                left = self.eval(node.args[0], env)
                right = self.eval(node.args[1], env)
                return self.binop_value(node, left, right, ast.MatMult())
            return UNKNOWN
        if func == "where":
            values = [self.eval(arg, env) for arg in node.args]
            if len(values) == 3:
                try:
                    shape = broadcast(
                        broadcast(values[0].shape, values[1].shape),
                        values[2].shape,
                    )
                except BroadcastError:
                    self.report(
                        node, "ARR001",
                        "np.where operands can never broadcast",
                    )
                    return UNKNOWN
                return AValue(
                    shape=shape,
                    dtype=promote(values[1].dtype, values[2].dtype),
                )
            return UNKNOWN
        if func == "interp":
            values = [self.eval(arg, env) for arg in node.args]
            if values:
                return AValue(shape=values[0].shape, dtype="float64")
            return UNKNOWN
        if func in _FLOAT_UFUNCS:
            value = self.eval(node.args[0], env) if node.args else UNKNOWN
            dtype = "float64" if value.dtype in (
                None, "bool", "int32", "int64", "float64"
            ) else value.dtype
            return AValue(shape=value.shape, dtype=dtype)
        if func in _SAME_UFUNCS:
            values = [self.eval(arg, env) for arg in node.args]
            if not values:
                return UNKNOWN
            shape = values[0].shape
            dtype = values[0].dtype
            for value in values[1:]:
                try:
                    shape = broadcast(shape, value.shape)
                except BroadcastError:
                    self.report(
                        node, "ARR001",
                        f"np.{func} operands can never broadcast",
                    )
                    return UNKNOWN
                dtype = promote(dtype, value.dtype)
            return AValue(shape=shape, dtype=dtype)
        if func == "arange":
            for arg in node.args:
                self.eval(arg, env)
            return AValue(shape=(None,), dtype=None)
        if func == "linspace":
            for arg in node.args:
                self.eval(arg, env)
            return AValue(shape=(None,), dtype="float64")
        for arg in node.args:
            self.eval(arg, env)
        return UNKNOWN

    def reduction_value(self, node: ast.Call, receiver: AValue,
                        func: str, axis_arg_index: int) -> AValue:
        axis: int | None = None
        axis_given = False
        if len(node.args) > axis_arg_index:
            arg = node.args[axis_arg_index]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                axis, axis_given = arg.value, True
            elif isinstance(arg, ast.UnaryOp) \
                    and isinstance(arg.op, ast.USub) \
                    and isinstance(arg.operand, ast.Constant) \
                    and isinstance(arg.operand.value, int):
                axis, axis_given = -arg.operand.value, True
            else:
                return UNKNOWN  # dynamic axis: give up
        keepdims = False
        for keyword in node.keywords:
            if keyword.arg == "axis":
                if isinstance(keyword.value, ast.Constant) \
                        and isinstance(keyword.value.value, int):
                    axis, axis_given = keyword.value.value, True
                elif isinstance(keyword.value, ast.UnaryOp) \
                        and isinstance(keyword.value.op, ast.USub) \
                        and isinstance(keyword.value.operand, ast.Constant) \
                        and isinstance(keyword.value.operand.value, int):
                    axis = -keyword.value.operand.value
                    axis_given = True
                elif isinstance(keyword.value, ast.Constant) \
                        and keyword.value.value is None:
                    axis, axis_given = None, True
                else:
                    return UNKNOWN
            elif keyword.arg == "keepdims":
                keepdims = bool(
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        if not axis_given:
            axis = None  # numpy default: reduce everything
        result = reduce_shape(receiver.shape, axis, keepdims)
        if isinstance(result, BroadcastError):
            self.report(
                node, "ARR004",
                f"reduction axis {axis} is out of range for shape "
                f"{format_shape(receiver.shape)}",
            )
            return UNKNOWN
        if func in ("any", "all"):
            dtype: str | None = "bool"
        elif func in ("argmax", "argmin"):
            dtype = "int64"
        elif func in ("mean", "std", "var", "nanmean"):
            dtype = promote(receiver.dtype, "float64") \
                if receiver.dtype is not None else "float64"
        else:
            dtype = receiver.dtype
        return AValue(shape=result, dtype=dtype)

    # -- literal helpers ------------------------------------------------
    def shape_from_arg(self, node: ast.expr, env: Env) -> Shape:
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self.dim_from_arg(e, env) for e in node.elts)
        dim = self.dim_from_arg(node, env)
        return (dim,)

    def dim_from_arg(self, node: ast.expr, env: Env) -> Dim:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        value = self.eval(node, env)
        if value.dim is not None:
            return value.dim
        if isinstance(node, ast.Name):
            return node.id  # symbolic: a size parameter by name
        return None

    def dtype_of_arg(self, node: ast.expr, env: Env) -> str | None:
        del env
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return DTYPE_ALIASES.get(node.value)
        name = dotted_name(node)
        if name is not None:
            return DTYPE_ALIASES.get(last_attr(name))
        return None

    def dtype_keyword(self, node: ast.Call, env: Env,
                      default: str | None) -> str | None:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return self.dtype_of_arg(keyword.value, env)
        return default


# ----------------------------------------------------------------------
# pass entry point
# ----------------------------------------------------------------------

def contract_of(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[ArrayContract | None, str | None]:
    """Parse an ``array_contract`` decorator off the AST.

    Returns ``(contract, error)``; a malformed declaration yields
    ``(None, message)`` for an ARR005 report.
    """
    for dec in func.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = dotted_name(dec.func)
        if name is None or last_attr(name) != "array_contract":
            continue
        params: dict[str, ArraySpec] = {}
        out: ArraySpec | None = None
        mutates: list[str] = []
        for keyword in dec.keywords:
            if keyword.arg is None:
                return None, "array_contract does not accept **kwargs"
            if keyword.arg == "mutates":
                value = keyword.value
                elts: list[ast.expr]
                if isinstance(value, (ast.Tuple, ast.List)):
                    elts = list(value.elts)
                else:
                    elts = [value]
                for elt in elts:
                    if isinstance(elt, ast.Constant) \
                            and isinstance(elt.value, str):
                        mutates.append(elt.value)
                    else:
                        return None, "mutates=(...) must list literal " \
                            "parameter-name strings"
                continue
            if not (isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)):
                return None, (
                    f"contract for {keyword.arg!r} must be a literal "
                    f"specification string"
                )
            try:
                spec = parse_spec(keyword.value.value)
            except ContractError as exc:
                return None, str(exc)
            if keyword.arg == "out":
                out = spec
            else:
                params[keyword.arg] = spec
        declared = {
            a.arg for a in [*func.args.posonlyargs, *func.args.args,
                            *func.args.kwonlyargs]
        }
        for name_ in sorted(set(params) | set(mutates)):
            if name_ not in declared:
                return None, (
                    f"contract names parameter {name_!r}, which "
                    f"{func.name}() does not have"
                )
        return ArrayContract(
            params=params, out=out, mutates=frozenset(mutates)
        ), None
    return None, None


def arr_pass(module: ModuleSource, windex: WaiverIndex) -> list[Diagnostic]:
    """Run the abstract interpreter over every annotated kernel."""
    from repro.static.visitors import iter_functions

    findings: list[Diagnostic] = []
    for qualname, func in iter_functions(module.tree):
        contract, error = contract_of(func)
        if error is not None:
            if not windex.waives(func.lineno, "ARR005"):
                findings.append(
                    diagnostic(
                        "ARR005",
                        error,
                        path=str(module.path),
                        line=func.lineno,
                        relpath=module.relpath,
                        symbol=qualname,
                    )
                )
            continue
        if contract is None:
            continue
        interpreter = KernelInterpreter(
            module, windex, func, contract, qualname
        )
        findings.extend(interpreter.run())
    return findings
