"""``UNIT0xx``: interprocedural dimensional analysis of the kernels.

An abstract interpreter over the dimension lattice of
:mod:`repro.static.dimensions` walks every function of a module and
propagates physical dimensions through arithmetic, numpy/math
intrinsics, the :mod:`repro.constants` symbols (pre-seeded:
``E_CHARGE: C``, ``K_B: J/K``, ...), locals, and — the
interprocedural part — *function summaries*: every function annotated
with :func:`repro.static.contracts.units` contributes its declared
signature, every unannotated function an inferred return dimension, so
``free_energy_change`` feeding ``orthodox_rate`` is checked across the
call (and across modules; :mod:`repro.static.summaries` schedules the
computation callgraph-first with a fixpoint over cycles).

Abstract values form a small lattice: ``PENDING`` (⊥, used only while
a summary cycle stabilises) < numeric ``LITERAL`` (dimension-
polymorphic: ``0.0`` adopts the dimension of whatever it meets) <
a concrete :class:`~repro.static.dimensions.Dimension` < ``UNKNOWN``
(⊤).  Every rule only fires when both sides are *provably* known —
unknown values silence the checks rather than guessing.

========  ==========================================================
code      meaning
========  ==========================================================
UNIT001   add/subtract/compare of unlike dimensions
UNIT002   call argument dimension contradicts the callee's contract
UNIT003   return value contradicts the function's declared unit
UNIT004   transcendental (exp/log/erf/...) of a dimensional quantity
UNIT005   raw literal duplicating a named physical constant
UNIT006   malformed ``@units`` contract
========  ==========================================================
"""

from __future__ import annotations

import ast
import dataclasses
from fractions import Fraction

from repro.errors import ContractError
from repro.lint.diagnostics import Severity
from repro.static.dimensions import (
    DIMENSIONLESS,
    Dimension,
    UnitContract,
    format_dimension,
    parse_unit,
    parse_units_spec,
)
from repro.static.model import (
    Diagnostic,
    StaticCode,
    diagnostic,
    register_codes,
)
from repro.static.source import ModuleSource
from repro.static.visitors import call_name, dotted_name, last_attr
from repro.static.waivers import WaiverIndex

__all__ = [
    "CONSTANT_UNITS",
    "FunctionSummary",
    "SummaryTable",
    "UValue",
    "analyze_module",
    "infer_summaries",
]

register_codes(
    StaticCode(
        "UNIT001", Severity.ERROR,
        "arithmetic on unlike physical dimensions",
        "adding, subtracting or comparing quantities of different "
        "dimensions is always a physics bug; convert one side "
        "explicitly (the constants module has the conversion factors)",
        domain="units",
    ),
    StaticCode(
        "UNIT002", Severity.ERROR,
        "argument dimension contradicts the callee's @units contract",
        "pass a quantity of the declared dimension, or fix the "
        "callee's contract if the declaration is wrong",
        domain="units",
    ),
    StaticCode(
        "UNIT003", Severity.ERROR,
        "return value contradicts the function's declared unit",
        "make the returned expression carry the declared dimension, "
        "or fix the @units return clause",
        domain="units",
    ),
    StaticCode(
        "UNIT004", Severity.ERROR,
        "transcendental function of a dimensional quantity",
        "exp/log/erf and friends require dimensionless arguments; "
        "divide by the natural scale (k_B*T, an energy gap, ...) first",
        domain="units",
    ),
    StaticCode(
        "UNIT005", Severity.WARNING,
        "raw literal duplicates a named physical constant",
        "use the symbol from repro.constants so the dimension is "
        "carried by the name and the value stays exact",
        domain="units",
    ),
    StaticCode(
        "UNIT006", Severity.ERROR,
        "malformed @units contract",
        "fix the specification string (see repro.static.dimensions "
        "for the grammar) or the parameter name it mentions",
        domain="units",
    ),
)

#: Dimensions of the :mod:`repro.constants` vocabulary; the
#: interpreter resolves these through the module's actual imports.
CONSTANT_UNITS: dict[str, Dimension] = {
    "E_CHARGE": parse_unit("C"),
    "K_B": parse_unit("J/K"),
    "H_PLANCK": parse_unit("J*s"),
    "HBAR": parse_unit("J*s"),
    "R_QUANTUM": parse_unit("ohm"),
    "R_K": parse_unit("ohm"),
    "BCS_RATIO": DIMENSIONLESS,
    "EV": parse_unit("J"),
    "MEV": parse_unit("J"),
}


# ----------------------------------------------------------------------
# the value lattice
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class UValue:
    """One abstract value: ⊥ < literal < Dimension < ⊤ (unknown)."""

    dim: Dimension | None = None
    literal: bool = False
    pending: bool = False

    @property
    def known(self) -> bool:
        return self.dim is not None


UNKNOWN = UValue()
LITERAL = UValue(literal=True)
PENDING = UValue(pending=True)
DIMLESS = UValue(dim=DIMENSIONLESS)


def join(a: UValue, b: UValue) -> UValue:
    """Least upper bound of two abstract values (at control-flow merges)."""
    if a == b:
        return a
    if a.pending:
        return b
    if b.pending:
        return a
    if a.literal and b.known:
        return b
    if b.literal and a.known:
        return a
    return UNKNOWN


def _fmt(value: UValue) -> str:
    if value.dim is not None:
        return format_dimension(value.dim)
    return "literal" if value.literal else "unknown"


# ----------------------------------------------------------------------
# function summaries
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """What the rest of the scan set knows about one function.

    ``params`` covers positional-or-keyword then keyword-only
    parameters in order (``self``/``cls`` already dropped), each with
    its declared dimension or ``None``; the first ``n_positional``
    entries are positionally matchable.  ``ret`` is the declared — or,
    for unannotated functions, *inferred* — return dimension.
    """

    params: tuple[tuple[str, Dimension | None], ...]
    n_positional: int
    has_vararg: bool
    ret: Dimension | None
    declared: bool

    def to_json(self) -> dict[str, object]:
        return {
            "params": [
                [name, None if dim is None else dim.encode()]
                for name, dim in self.params
            ],
            "n_positional": self.n_positional,
            "has_vararg": self.has_vararg,
            "ret": None if self.ret is None else self.ret.encode(),
            "declared": self.declared,
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "FunctionSummary":
        raw_params = payload["params"]
        assert isinstance(raw_params, list)
        params = tuple(
            (str(name), None if enc is None else Dimension.decode(str(enc)))
            for name, enc in raw_params
        )
        ret = payload["ret"]
        return cls(
            params=params,
            n_positional=int(payload["n_positional"]),  # type: ignore[call-overload]
            has_vararg=bool(payload["has_vararg"]),
            ret=None if ret is None else Dimension.decode(str(ret)),
            declared=bool(payload["declared"]),
        )


#: bare callable name -> summary; ``None`` marks a name defined with
#: *conflicting* summaries somewhere in the scan set (ambiguous — the
#: interpreter then treats calls to it as unknown, erring silent).
SummaryTable = dict[str, "FunctionSummary | None"]


def merge_summary(table: SummaryTable, name: str,
                  summary: FunctionSummary) -> bool:
    """Add ``summary`` under ``name``; collisions with a *different*
    existing summary degrade the entry to ambiguous.  Returns whether
    the table changed."""
    if name not in table:
        table[name] = summary
        return True
    existing = table[name]
    if existing == summary:
        return False
    if existing is None:
        return False
    table[name] = None
    return True


# ----------------------------------------------------------------------
# intrinsic tables
# ----------------------------------------------------------------------

#: receiver roots treated as numeric libraries, not objects with
#: summarised methods
_LIB_ROOTS = frozenset({"np", "numpy", "math", "cmath", "scipy", "special"})

_TRANSCENDENTAL = frozenset({
    "exp", "expm1", "exp2", "log", "log1p", "log2", "log10",
    "sin", "cos", "tan", "sinh", "cosh", "tanh",
    "arcsin", "arccos", "arctan", "arcsinh", "arccosh", "arctanh",
    "asin", "acos", "atan", "asinh", "acosh", "atanh",
    "erf", "erfc", "erfinv", "erfcinv", "degrees", "radians",
    "logaddexp", "logaddexp2",
})

_PRESERVE_FIRST = frozenset({
    "asarray", "array", "ascontiguousarray", "asfarray",
    "abs", "absolute", "fabs",
    "sum", "nansum", "mean", "nanmean", "median", "nanmedian",
    "max", "min", "amax", "amin", "nanmax", "nanmin",
    "clip", "ptp", "copy", "reshape", "ravel", "flatten", "squeeze",
    "atleast_1d", "atleast_2d", "diff", "cumsum", "sort", "sorted",
    "nan_to_num", "real", "imag", "conj", "conjugate", "transpose",
    "round", "around", "floor", "ceil", "trunc", "rint", "fix",
    "ediff1d", "unique", "diag", "tile", "repeat", "broadcast_to",
    "take", "flip", "roll", "float", "int", "complex", "positive",
    "negative", "float64", "float32", "concatenate", "stack",
    "hstack", "vstack",
})

#: methods on array-like objects that preserve the receiver's dimension
_PRESERVE_METHODS = frozenset({
    "sum", "mean", "max", "min", "copy", "reshape", "ravel", "flatten",
    "squeeze", "astype", "clip", "item", "take", "transpose", "round",
    "cumsum", "std", "ptp", "tolist",
})

_JOIN_ALL = frozenset({
    "maximum", "minimum", "fmax", "fmin", "hypot", "linspace",
    "arange", "mod", "fmod", "remainder", "copysign", "nextafter",
})

_PRODUCT_FNS = frozenset({"dot", "matmul", "inner", "vdot", "outer",
                          "cross", "multiply"})

_LITERAL_FNS = frozenset({
    "zeros", "ones", "empty", "zeros_like", "ones_like", "empty_like",
    "eye", "identity",
})

_DIMLESS_FNS = frozenset({
    "sign", "len", "argmax", "argmin", "argsort", "searchsorted",
    "count_nonzero", "isnan", "isfinite", "isinf", "isclose",
    "allclose", "array_equal", "any", "all", "bool", "signbit",
    "heaviside", "range", "enumerate", "ndim",
})

_LITERAL_ATTRS = frozenset({"pi", "e", "inf", "nan", "tau", "euler_gamma"})

_DIMLESS_ATTRS = frozenset({"shape", "size", "ndim", "itemsize"})

_PRESERVE_ATTRS = frozenset({"T", "real", "imag", "flat"})


# ----------------------------------------------------------------------
# module-level facts
# ----------------------------------------------------------------------

def _constant_bindings(tree: ast.Module) -> tuple[dict[str, Dimension],
                                                  set[str]]:
    """Names bound to :mod:`repro.constants` symbols by the module's
    imports, plus local aliases of the constants module itself."""
    names: dict[str, Dimension] = {}
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.constants":
                for alias in node.names:
                    dim = CONSTANT_UNITS.get(alias.name)
                    if dim is not None:
                        names[alias.asname or alias.name] = dim
            elif node.module == "repro":
                for alias in node.names:
                    if alias.name == "constants":
                        aliases.add(alias.asname or "constants")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.constants":
                    aliases.add(alias.asname or "repro")
    return names, aliases


def _params_of(func: ast.FunctionDef | ast.AsyncFunctionDef,
               in_class: bool) -> tuple[list[ast.arg], list[ast.arg], bool]:
    """(positional params, keyword-only params, has *args) with a
    leading ``self``/``cls`` dropped for methods."""
    positional = list(func.args.posonlyargs) + list(func.args.args)
    if in_class and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    return positional, list(func.args.kwonlyargs), \
        func.args.vararg is not None


@dataclasses.dataclass
class _FunctionFacts:
    """One function of the module, ready for interpretation."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: the name calls resolve to: the function's own, or the class
    #: name for ``__init__`` (constructor calls)
    summary_name: str
    contract: UnitContract | None
    positional: list[ast.arg]
    kwonly: list[ast.arg]
    has_vararg: bool

    def base_summary(self, ret: Dimension | None,
                     declared: bool) -> FunctionSummary:
        contract = self.contract
        params = tuple(
            (arg.arg, None if contract is None else contract.param(arg.arg))
            for arg in (*self.positional, *self.kwonly)
        )
        return FunctionSummary(
            params=params,
            n_positional=len(self.positional),
            has_vararg=self.has_vararg,
            ret=ret,
            declared=declared,
        )


@dataclasses.dataclass
class ModuleUnitFacts:
    """Everything the interpreter derives from one module's AST."""

    module: ModuleSource
    functions: list[_FunctionFacts]
    constants: dict[str, Dimension]
    constant_module_aliases: set[str]
    #: (lineno, message) for malformed contracts — UNIT006
    contract_errors: list[tuple[int, str]]


def _extract_contract(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    param_names: set[str],
    errors: list[tuple[int, str]],
) -> UnitContract | None:
    for dec in func.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = dotted_name(dec.func)
        if name is None or last_attr(name) != "units":
            continue
        if len(dec.args) != 1 or dec.keywords:
            errors.append((
                dec.lineno,
                f"@units on {func.name}() takes exactly one "
                f"specification string",
            ))
            return None
        spec = dec.args[0]
        if not isinstance(spec, ast.Constant) or \
                not isinstance(spec.value, str):
            errors.append((
                dec.lineno,
                f"@units on {func.name}() must be a literal string "
                f"so the static pass can read it",
            ))
            return None
        try:
            contract = parse_units_spec(spec.value)
        except ContractError as exc:
            errors.append((dec.lineno, str(exc)))
            return None
        unknown = sorted(set(contract.params) - param_names)
        if unknown:
            errors.append((
                dec.lineno,
                f"@units on {func.name}() names parameter(s) "
                f"{', '.join(unknown)} the function does not have",
            ))
            return None
        return contract
    return None


def module_unit_facts(module: ModuleSource) -> ModuleUnitFacts:
    """Parse contracts and constant imports off one module's AST."""
    constants, aliases = _constant_bindings(module.tree)
    # The module *defining* the canonical vocabulary (repro.constants)
    # binds the names to raw literals; seed their dimensions so e.g.
    # ``K_B * temperature`` carries J/K there too.
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in CONSTANT_UNITS:
                constants.setdefault(target.id, CONSTANT_UNITS[target.id])
    errors: list[tuple[int, str]] = []
    functions: list[_FunctionFacts] = []

    def visit(body: list[ast.stmt], class_name: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                positional, kwonly, vararg = _params_of(
                    node, in_class=class_name is not None
                )
                names = {a.arg for a in (*positional, *kwonly)}
                contract = _extract_contract(node, names, errors)
                summary_name = node.name
                if node.name == "__init__" and class_name is not None:
                    summary_name = class_name
                functions.append(_FunctionFacts(
                    node=node,
                    summary_name=summary_name,
                    contract=contract,
                    positional=positional,
                    kwonly=kwonly,
                    has_vararg=vararg,
                ))
                visit(node.body, None)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, node.name)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                # defs can nest under conditionals at module level
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        visit([sub], class_name)
    visit(module.tree.body, None)
    return ModuleUnitFacts(
        module=module,
        functions=functions,
        constants=constants,
        constant_module_aliases=aliases,
        contract_errors=errors,
    )


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------

Env = dict[str, UValue]


class _Interp:
    """Abstract interpretation of one function body."""

    def __init__(
        self,
        facts: ModuleUnitFacts,
        table: SummaryTable,
        contract: UnitContract | None,
        sink: "list[tuple[int, str, str]] | None",
    ) -> None:
        self.facts = facts
        self.table = table
        self.contract = contract
        self.sink = sink
        self.returns: list[UValue] = []

    # -- reporting ----------------------------------------------------
    def report(self, node: ast.AST, code: str, message: str) -> None:
        if self.sink is not None:
            lineno = getattr(node, "lineno", 1)
            self.sink.append((lineno, code, message))

    # -- statements ---------------------------------------------------
    def exec_block(self, body: list[ast.stmt], env: Env) -> Env:
        for stmt in body:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self._bind(stmt.target, stmt.value, value, env)
        elif isinstance(stmt, ast.AugAssign):
            current = self._load_target(stmt.target, env)
            value = self.eval(stmt.value, env)
            combined = self._binop_value(
                stmt.op, current, value, stmt
            )
            self._bind(stmt.target, None, combined, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self._check_return(stmt, value)
                self.returns.append(value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            env_true = self.exec_block(stmt.body, dict(env))
            env_false = self.exec_block(stmt.orelse, dict(env))
            env = _join_env(env_true, env_false)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval(stmt.iter, env)
            # iterating a dimensional array yields same-dimension items
            element = iterable if iterable.known else UNKNOWN
            self._bind(stmt.target, None, element, env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _join_env(env, body_env)
            env = self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _join_env(env, body_env)
            env = self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, UNKNOWN, env)
            env = self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            env_body = self.exec_block(stmt.body, dict(env))
            merged = _join_env(env, env_body)
            for handler in stmt.handlers:
                if handler.name:
                    merged[handler.name] = UNKNOWN
                merged = _join_env(
                    merged, self.exec_block(handler.body, dict(merged))
                )
            merged = self.exec_block(stmt.orelse, merged)
            env = self.exec_block(stmt.finalbody, merged)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
        # nested defs/classes analysed separately; imports, pass,
        # break, continue, global, nonlocal carry no dimension facts
        return env

    def _bind(self, target: ast.expr, value_node: ast.expr | None,
              value: UValue, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts: list[UValue] | None = None
            if isinstance(value_node, (ast.Tuple, ast.List)) and \
                    len(value_node.elts) == len(target.elts):
                parts = [self.eval(e, env) for e in value_node.elts]
            for i, elt in enumerate(target.elts):
                part = parts[i] if parts is not None else value
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                    part = UNKNOWN
                self._bind(elt, None, part, env)
        elif isinstance(target, ast.Subscript):
            # storing a known dimension into a fresh buffer teaches the
            # buffer its dimension (out = np.empty_like(x); out[m] = kt)
            base = target.value
            self.eval(target.slice, env)
            if isinstance(base, ast.Name) and value.known:
                current = env.get(base.id, UNKNOWN)
                if current.literal:
                    env[base.id] = value
                elif current.known and not value.literal and \
                        current.dim != value.dim:
                    self.report(
                        target, "UNIT001",
                        f"storing {_fmt(value)} into an array of "
                        f"{_fmt(current)}",
                    )
        # attribute stores (self.x = ...) carry no local facts

    def _load_target(self, target: ast.expr, env: Env) -> UValue:
        if isinstance(target, ast.Name):
            return env.get(target.id, self._global_value(target.id))
        return self.eval(target, env)

    def _check_return(self, stmt: ast.Return, value: UValue) -> None:
        if self.contract is None or self.contract.ret is None:
            return
        declared = self.contract.ret
        assert stmt.value is not None
        # a tuple return declares the unit of each element
        if isinstance(stmt.value, ast.Tuple):
            return  # elements were evaluated; tuples stay unconstrained
        if value.known and not value.literal and value.dim != declared:
            self.report(
                stmt, "UNIT003",
                f"returns {_fmt(value)} but is declared "
                f"'-> {format_dimension(declared)}'",
            )

    # -- expressions --------------------------------------------------
    def eval(self, node: ast.expr, env: Env) -> UValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return DIMLESS
            if isinstance(node.value, (int, float, complex)):
                return LITERAL
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self._global_value(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.Not):
                return DIMLESS
            return operand
        if isinstance(node, ast.BoolOp):
            result = PENDING
            for value_node in node.values:
                result = join(result, self.eval(value_node, env))
            return result
        if isinstance(node, ast.Compare):
            self._check_compare(node, env)
            return DIMLESS
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join(self.eval(node.body, env),
                        self.eval(node.orelse, env))
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            self.eval(node.slice, env)
            if base.known or base.literal:
                return base
            return UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List)):
            result = PENDING
            for elt in node.elts:
                result = join(result, self.eval(elt, env))
            return result if result != PENDING else LITERAL
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            self._bind(node.target, node.value, value, env)
            return value
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            inner = dict(env)
            for gen in node.generators:
                self.eval(gen.iter, env)
                self._bind(gen.target, None, UNKNOWN, inner)
            return self.eval(node.elt, inner)
        if isinstance(node, ast.DictComp):
            return UNKNOWN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return UNKNOWN
        # lambdas, dicts, sets, f-strings, await, yield: no facts
        return UNKNOWN

    def _global_value(self, name: str) -> UValue:
        dim = self.facts.constants.get(name)
        if dim is not None:
            return UValue(dim=dim)
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute, env: Env) -> UValue:
        dotted = dotted_name(node)
        if dotted is not None:
            root, _, _ = dotted.partition(".")
            leaf = last_attr(dotted)
            if leaf in CONSTANT_UNITS and (
                root in self.facts.constant_module_aliases
                or dotted.startswith("repro.constants.")
            ):
                return UValue(dim=CONSTANT_UNITS[leaf])
            if root in _LIB_ROOTS and leaf in _LITERAL_ATTRS:
                return LITERAL
        base = self.eval(node.value, env)
        if node.attr in _DIMLESS_ATTRS:
            return DIMLESS
        if node.attr in _PRESERVE_ATTRS and (base.known or base.literal):
            return base
        return UNKNOWN

    def _check_addlike(self, node: ast.AST, op_word: str,
                       left: UValue, right: UValue) -> UValue:
        if left.known and right.known and not left.literal \
                and not right.literal and left.dim != right.dim:
            self.report(
                node, "UNIT001",
                f"{op_word} {_fmt(left)} and {_fmt(right)}",
            )
            return UNKNOWN
        if left.pending or right.pending:
            return PENDING
        if left.known and (right.literal or right == left):
            return left
        if right.known and left.literal:
            return right
        if left.literal and right.literal:
            return LITERAL
        return UNKNOWN

    def _binop_value(self, op: ast.operator, left: UValue,
                     right: UValue, node: ast.AST) -> UValue:
        if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
            return self._check_addlike(node, "combining", left, right)
        if isinstance(op, (ast.Mult, ast.MatMult)):
            return self._product(left, right, invert=False)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._product(left, right, invert=True)
        if isinstance(op, ast.Pow):
            return UNKNOWN  # handled with the AST exponent in _eval_binop
        return UNKNOWN

    @staticmethod
    def _product(left: UValue, right: UValue, *, invert: bool) -> UValue:
        if left.pending or right.pending:
            return PENDING
        if left.literal and right.literal:
            return LITERAL
        if left.known and right.known:
            ldim = left.dim if not left.literal else DIMENSIONLESS
            rdim = right.dim if not right.literal else DIMENSIONLESS
            assert ldim is not None and rdim is not None
            return UValue(dim=ldim / rdim if invert else ldim * rdim)
        if left.known and right.literal:
            return left
        if right.known and left.literal:
            if invert:
                assert right.dim is not None
                return UValue(dim=DIMENSIONLESS / right.dim)
            return right
        return UNKNOWN

    def _eval_binop(self, node: ast.BinOp, env: Env) -> UValue:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if isinstance(node.op, ast.Pow):
            return self._pow(node, left, node.right, right)
        return self._binop_value(node.op, left, right, node)

    def _pow(self, node: ast.AST, base: UValue,
             exp_node: ast.expr, exponent: UValue) -> UValue:
        if exponent.known and not exponent.literal and \
                not (exponent.dim is not None
                     and exponent.dim.is_dimensionless):
            self.report(
                node, "UNIT004",
                f"exponent carries dimension {_fmt(exponent)}; "
                f"exponents must be dimensionless",
            )
            return UNKNOWN
        if base.literal:
            return LITERAL
        if not base.known:
            return UNKNOWN
        power = _literal_number(exp_node)
        if power is None:
            # dimensional base raised to a non-constant power is only
            # sound when the base is dimensionless
            assert base.dim is not None
            if base.dim.is_dimensionless:
                return DIMLESS
            return UNKNOWN
        assert base.dim is not None
        return UValue(dim=base.dim ** power)

    def _check_compare(self, node: ast.Compare, env: Env) -> None:
        values = [self.eval(node.left, env)]
        values += [self.eval(comp, env) for comp in node.comparators]
        for op, left, right in zip(node.ops, values, values[1:]):
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                continue
            self._check_addlike(node, "comparing", left, right)

    # -- calls --------------------------------------------------------
    def _eval_call(self, node: ast.Call, env: Env) -> UValue:
        name = call_name(node)
        args = [self.eval(a, env) for a in node.args]
        kwargs = {
            kw.arg: self.eval(kw.value, env)
            for kw in node.keywords
        }
        if name is None:
            return UNKNOWN
        base = last_attr(name)
        root, _, _ = name.partition(".")
        is_attr_call = "." in name
        lib_call = not is_attr_call or root in _LIB_ROOTS

        if lib_call:
            intrinsic = self._intrinsic(node, base, args, kwargs)
            if intrinsic is not None:
                return intrinsic
        # user-defined summaries: plain names, methods and constructors
        summary = self.table.get(base)
        if summary is not None:
            self._check_call_args(node, base, summary, args, kwargs)
            if summary.ret is not None:
                return UValue(dim=summary.ret)
            return UNKNOWN
        if base in self.table:
            return UNKNOWN  # ambiguous name: stay silent
        if is_attr_call and base in _PRESERVE_METHODS and \
                isinstance(node.func, ast.Attribute):
            receiver_value = self.eval(node.func.value, env)
            if receiver_value.known or receiver_value.literal:
                return receiver_value
        return UNKNOWN

    def _intrinsic(self, node: ast.Call, base: str,
                   args: list[UValue],
                   kwargs: dict[str | None, UValue]) -> UValue | None:
        if base in _TRANSCENDENTAL:
            for arg_node, value in zip(node.args, args):
                if value.known and not value.literal:
                    assert value.dim is not None
                    if not value.dim.is_dimensionless:
                        self.report(
                            node, "UNIT004",
                            f"{base}() of a quantity with dimension "
                            f"{_fmt(value)}; divide by its natural "
                            f"scale first",
                        )
            return DIMLESS
        if base == "sqrt":
            return self._root(args, Fraction(1, 2))
        if base == "cbrt":
            return self._root(args, Fraction(1, 3))
        if base == "square":
            if args and args[0].known and not args[0].literal:
                assert args[0].dim is not None
                return UValue(dim=args[0].dim ** 2)
            return args[0] if args else UNKNOWN
        if base == "reciprocal":
            if args and args[0].known and not args[0].literal:
                assert args[0].dim is not None
                return UValue(dim=DIMENSIONLESS / args[0].dim)
            return args[0] if args else UNKNOWN
        if base == "power":
            if len(node.args) == 2:
                return self._pow(node, args[0], node.args[1], args[1])
            return UNKNOWN
        if base == "interp":
            return args[2] if len(args) >= 3 else UNKNOWN
        if base == "where":
            if len(args) >= 3:
                return join(args[1], args[2])
            return UNKNOWN
        if base == "full":
            return args[1] if len(args) >= 2 else UNKNOWN
        if base in _PRODUCT_FNS:
            if len(args) >= 2:
                return self._product(args[0], args[1], invert=False)
            return UNKNOWN
        if base in _JOIN_ALL:
            result = PENDING
            for value in args:
                result = join(result, value)
            return result if result != PENDING else UNKNOWN
        if base in _PRESERVE_FIRST:
            if base in ("max", "min") and len(args) > 1:
                result = args[0]
                for value in args[1:]:
                    result = join(result, value)
                return result
            return args[0] if args else UNKNOWN
        if base in _LITERAL_FNS:
            return LITERAL
        if base in _DIMLESS_FNS:
            return DIMLESS
        return None

    @staticmethod
    def _root(args: list[UValue], power: Fraction) -> UValue:
        if args and args[0].known and not args[0].literal:
            assert args[0].dim is not None
            return UValue(dim=args[0].dim ** power)
        return args[0] if args else UNKNOWN

    def _check_call_args(self, node: ast.Call, name: str,
                         summary: FunctionSummary,
                         args: list[UValue],
                         kwargs: dict[str | None, UValue]) -> None:
        by_name = dict(summary.params)
        for index, value in enumerate(args):
            if index >= summary.n_positional:
                break
            if index < len(node.args) and \
                    isinstance(node.args[index], ast.Starred):
                break
            pname, expected = summary.params[index]
            self._check_arg(node, name, pname, expected, value)
        for kwarg, value in kwargs.items():
            if kwarg is None:
                continue
            if kwarg in by_name:
                self._check_arg(node, name, kwarg, by_name[kwarg], value)

    def _check_arg(self, node: ast.Call, func: str, param: str,
                   expected: Dimension | None, value: UValue) -> None:
        if expected is None:
            return
        if value.known and not value.literal and value.dim != expected:
            self.report(
                node, "UNIT002",
                f"{func}() expects {param}: "
                f"{format_dimension(expected)}, got {_fmt(value)}",
            )


def _literal_number(node: ast.expr) -> Fraction | None:
    """The exponent as an exact rational, for constant powers."""
    negate = False
    while isinstance(node, ast.UnaryOp) and \
            isinstance(node.op, (ast.USub, ast.UAdd)):
        if isinstance(node.op, ast.USub):
            negate = not negate
        node = node.operand
    if isinstance(node, ast.Constant) and \
            isinstance(node.value, (int, float)) and \
            not isinstance(node.value, bool):
        try:
            value = Fraction(str(node.value))
        except ValueError:
            return None
        return -value if negate else value
    return None


def _join_env(a: Env, b: Env) -> Env:
    merged: Env = {}
    for key in set(a) | set(b):
        merged[key] = join(a.get(key, UNKNOWN), b.get(key, UNKNOWN))
    return merged


# ----------------------------------------------------------------------
# module drivers
# ----------------------------------------------------------------------

def _module_env(facts: ModuleUnitFacts, table: SummaryTable) -> Env:
    """Dimensions of module-level names (``_WINDOW = 45.0`` and
    constant-derived globals)."""
    interp = _Interp(facts, table, contract=None, sink=None)
    env: Env = {}
    for stmt in facts.module.tree.body:
        if isinstance(stmt, ast.Assign) or isinstance(stmt, ast.AnnAssign):
            try:
                interp.exec_stmt(stmt, env)
            except RecursionError:  # pragma: no cover
                break
    # canonical constants keep their vocabulary dimension even where
    # the module defines them from raw literals (repro.constants)
    for name, dim in facts.constants.items():
        env[name] = UValue(dim=dim)
    return env


def _interpret_function(
    facts: ModuleUnitFacts,
    func: _FunctionFacts,
    table: SummaryTable,
    module_env: Env,
    sink: list[tuple[int, str, str]] | None,
) -> UValue:
    """Run one function; returns the join of its return values."""
    interp = _Interp(facts, table, func.contract, sink)
    env: Env = dict(module_env)
    contract = func.contract
    for arg in (*func.positional, *func.kwonly):
        dim = None if contract is None else contract.param(arg.arg)
        env[arg.arg] = UNKNOWN if dim is None else UValue(dim=dim)
    if func.node.args.vararg is not None:
        env[func.node.args.vararg.arg] = UNKNOWN
    if func.node.args.kwarg is not None:
        env[func.node.args.kwarg.arg] = UNKNOWN
    interp.exec_block(func.node.body, env)
    result = PENDING
    for value in interp.returns:
        result = join(result, value)
    return result


def declared_summaries(facts: ModuleUnitFacts) -> dict[str, FunctionSummary]:
    """The summaries read directly off ``@units`` decorators."""
    summaries: dict[str, FunctionSummary] = {}
    for func in facts.functions:
        if func.contract is not None:
            ret = func.contract.ret
            summary = func.base_summary(ret, declared=True)
            merge_summary(summaries, func.summary_name, summary)
    return summaries


def infer_summaries(
    facts: ModuleUnitFacts,
    table: SummaryTable,
) -> dict[str, FunctionSummary]:
    """One inference sweep: interpret every function against ``table``
    and emit a summary per function — declared where a contract
    exists, inferred-return otherwise.  Callers iterate this to a
    fixpoint over summary cycles."""
    module_env = _module_env(facts, table)
    summaries: dict[str, FunctionSummary] = {}
    for func in facts.functions:
        if func.contract is not None and func.contract.ret is not None:
            summary = func.base_summary(func.contract.ret, declared=True)
        else:
            result = _interpret_function(
                facts, func, table, module_env, sink=None
            )
            ret = result.dim if result.known and not result.literal else None
            summary = func.base_summary(
                ret, declared=func.contract is not None
            )
        merge_summary(summaries, func.summary_name, summary)
    return summaries


#: literals this close (relative) to a named constant are flagged
_CONSTANT_REL_TOL = 1e-3


def _find_magic_literals(
    module: ModuleSource,
    values: list[tuple[str, float]],
) -> list[tuple[int, str, str]]:
    """UNIT005: raw literals duplicating a named physical constant."""
    reports: list[tuple[int, str, str]] = []
    defining_lines: set[int] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            # module-level assignments *define* named constants
            for sub in ast.walk(stmt):
                lineno = getattr(sub, "lineno", None)
                if lineno is not None:
                    defining_lines.add(lineno)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Constant) or \
                not isinstance(node.value, float):
            continue
        if node.lineno in defining_lines or node.value == 0.0:
            continue
        magnitude = abs(node.value)
        for name, reference in values:
            if reference == 0.0:
                continue
            if abs(magnitude - abs(reference)) <= \
                    _CONSTANT_REL_TOL * abs(reference):
                reports.append((
                    node.lineno, "UNIT005",
                    f"literal {node.value!r} duplicates "
                    f"repro.constants.{name}; use the named constant",
                ))
                break
    return reports


def _constant_values() -> list[tuple[str, float]]:
    import repro.constants as constants

    values: list[tuple[str, float]] = []
    for name in CONSTANT_UNITS:
        value = getattr(constants, name, None)
        if isinstance(value, float) and name not in ("BCS_RATIO",):
            values.append((name, value))
    return values


def analyze_module(
    facts: ModuleUnitFacts,
    windex: WaiverIndex,
    table: SummaryTable,
) -> list[Diagnostic]:
    """The final checking pass of one module: interpret every function
    with the stabilised summary table and emit UNIT0xx findings."""
    module = facts.module
    raw: list[tuple[int, str, str]] = []
    for lineno, message in facts.contract_errors:
        raw.append((lineno, "UNIT006", message))
    module_env = _module_env(facts, table)
    for func in facts.functions:
        _interpret_function(facts, func, table, module_env, sink=raw)
    raw.extend(_find_magic_literals(module, _constant_values()))
    findings: list[Diagnostic] = []
    for lineno, code, message in raw:
        if windex.waives(lineno, code):
            continue
        findings.append(diagnostic(
            code, message,
            path=str(module.path), line=lineno, relpath=module.relpath,
        ))
    return findings
