"""``NUM0xx``: numerical-stability rules for the rate kernels.

The orthodox-theory expressions this simulator evaluates —
``dw / (1 - exp(-dw/kT))`` and friends — overflow, underflow or
catastrophically cancel exactly in the regimes the adaptive solver
exercises (deep Coulomb blockade: ``|dw| >> kT``).  The working
kernels guard for this (range guards in :mod:`repro.physics.bcs`,
masked ``expm1`` in :mod:`repro.physics.fermi`, the log-sum-exp shift
in :mod:`repro.spice`); these rules flag re-introductions of the
naive forms.

========  ==========================================================
code      meaning
========  ==========================================================
NUM001    ``exp`` of an unbounded-sign quantity without a clamp/guard
NUM002    ``x / (exp(x) - 1)``-style cancellation (guarded kernel exists)
NUM003    float ``==``/``!=`` on a computed expression
NUM004    subtraction of two exponentials (catastrophic cancellation)
NUM005    accumulation into a float32 buffer
========  ==========================================================

Guard recognition is deliberately conservative — a report means the
pass *proved* no guard is present on any path it understands.  The
recognised guard idioms: a literal or clipped argument, a mask
subscript, ``expr - x.max()`` shifts (including a prior
``name -= x.max()``), ``-abs(x)``, and a preceding range test of the
argument against a numeric literal (``if arg > 500.0: return 0.0``).
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import Severity
from repro.static.model import (
    Diagnostic,
    StaticCode,
    diagnostic,
    register_codes,
)
from repro.static.source import ModuleSource
from repro.static.visitors import call_name, last_attr
from repro.static.waivers import WaiverIndex

__all__ = ["numstab_pass"]

register_codes(
    StaticCode(
        "NUM001", Severity.WARNING,
        "exp() of an unbounded-sign quantity without clamping",
        "clamp or shift the argument first (np.clip, x - x.max(), a "
        "range guard), or use the guarded kernel "
        "(repro.physics.fermi.bose_weight / np.expm1 with a mask)",
        domain="numerics",
    ),
    StaticCode(
        "NUM002", Severity.WARNING,
        "x/(exp(x)-1)-style cancellation",
        "exp(x)-1 loses all precision near x=0; use np.expm1 or the "
        "guarded bose_weight kernel in repro.physics.fermi",
        domain="numerics",
    ),
    StaticCode(
        "NUM003", Severity.WARNING,
        "float equality on a computed expression",
        "floating arithmetic is not exact; compare with a tolerance "
        "(math.isclose / np.isclose) or restructure the test",
        domain="numerics",
    ),
    StaticCode(
        "NUM004", Severity.WARNING,
        "subtraction of two exponentials",
        "exp(a)-exp(b) cancels catastrophically for a close to b; "
        "factor as exp(b)*expm1(a-b) or work in log space",
        domain="numerics",
    ),
    StaticCode(
        "NUM005", Severity.WARNING,
        "accumulation into a float32 buffer",
        "running sums in float32 lose ~7 digits over long loops; "
        "accumulate in float64 and cast once at the end",
        domain="numerics",
    ),
)

#: exp-family calls whose argument overflowing matters
_EXP_CALLS = frozenset({"exp", "exp2", "expm1", "cosh", "sinh"})

#: calls that bound their result/argument
_CLAMP_CALLS = frozenset({"clip", "minimum", "maximum", "min", "max",
                          "where", "clamp"})

_FLOAT32ISH = frozenset({"float32", "float16", "half", "single"})


def numstab_pass(module: ModuleSource,
                 windex: WaiverIndex) -> list[Diagnostic]:
    """Run the NUM0xx rules over one module."""
    checker = _Checker(module)
    checker.run()
    findings: list[Diagnostic] = []
    for lineno, code, message in checker.reports:
        if windex.waives(lineno, code):
            continue
        findings.append(diagnostic(
            code, message,
            path=str(module.path), line=lineno, relpath=module.relpath,
        ))
    return findings


class _Checker:
    """Statement-ordered walk with per-function guard state."""

    def __init__(self, module: ModuleSource) -> None:
        self.module = module
        self.reports: list[tuple[int, str, str]] = []

    def run(self) -> None:
        self._walk_scope(self.module.tree.body)

    # -- scope walking -------------------------------------------------
    def _walk_scope(self, body: list[ast.stmt]) -> None:
        """One function (or the module top level): linear statement
        order, tracking bounded names and float32 accumulators."""
        state = _ScopeState()
        self._walk_block(body, state, in_loop=False)

    def _walk_block(self, body: list[ast.stmt], state: "_ScopeState",
                    in_loop: bool) -> None:
        for stmt in body:
            self._walk_stmt(stmt, state, in_loop)

    def _walk_stmt(self, stmt: ast.stmt, state: "_ScopeState",
                   in_loop: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_scope(stmt.body)
            return
        if isinstance(stmt, ast.ClassDef):
            self._walk_block(stmt.body, _ScopeState(), in_loop=False)
            return
        # compound statements: check their header expressions, then
        # recurse into the blocks (never double-scan the bodies)
        if isinstance(stmt, ast.If):
            self._scan_exprs([stmt.test], state)
            self._note_range_guard(stmt.test, state)
            self._walk_block(stmt.body, state, in_loop)
            self._walk_block(stmt.orelse, state, in_loop)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_exprs([stmt.iter], state)
            self._walk_block(stmt.body, state, in_loop=True)
            self._walk_block(stmt.orelse, state, in_loop)
            return
        if isinstance(stmt, ast.While):
            self._scan_exprs([stmt.test], state)
            self._note_range_guard(stmt.test, state)
            self._walk_block(stmt.body, state, in_loop=True)
            self._walk_block(stmt.orelse, state, in_loop)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._scan_exprs(
                [item.context_expr for item in stmt.items], state
            )
            self._walk_block(stmt.body, state, in_loop)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, state, in_loop)
            for handler in stmt.handlers:
                self._walk_block(handler.body, state, in_loop)
            self._walk_block(stmt.orelse, state, in_loop)
            self._walk_block(stmt.finalbody, state, in_loop)
            return
        # simple statements: expression checks in source order, then
        # the state updates the *next* statements observe
        for node in _walk_stmt_expressions(stmt):
            self._check_node(node, state)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._note_assign(target, stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._note_assign(stmt.target, stmt.value, state)
        elif isinstance(stmt, ast.AugAssign):
            self._note_augassign(stmt, state, in_loop)

    # -- state tracking ------------------------------------------------
    def _note_assign(self, target: ast.expr, value: ast.expr,
                     state: "_ScopeState") -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if _is_bounded_expr(value, state):
            state.bounded.add(name)
        else:
            state.bounded.discard(name)
        if _allocates_float32(value):
            state.float32.add(name)
        elif not _copies_any(value, state.float32):
            state.float32.discard(name)

    def _note_augassign(self, stmt: ast.AugAssign, state: "_ScopeState",
                        in_loop: bool) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        name = stmt.target.id
        # `x -= x.max()` and `x = np.clip(...)` bound the name
        if isinstance(stmt.op, ast.Sub) and _contains_max_shift(stmt.value):
            state.bounded.add(name)
        if in_loop and name in state.float32 and \
                isinstance(stmt.op, (ast.Add, ast.Sub)):
            self.reports.append((
                stmt.lineno, "NUM005",
                f"accumulating into float32 buffer {name!r} inside a "
                f"loop",
            ))

    def _note_range_guard(self, test: ast.expr, state: "_ScopeState") -> None:
        """``if arg > 500.0: ...`` marks ``arg`` as range-checked for
        the rest of the scope (the guarded branch returns/clamps)."""
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            has_literal = any(
                isinstance(op, ast.Constant) and
                isinstance(op.value, (int, float))
                for op in operands
            )
            if not has_literal:
                continue
            if not any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in node.ops
            ):
                continue
            for operand in operands:
                root = _root_name(operand)
                if root is not None:
                    state.bounded.add(root)

    # -- expression checks ----------------------------------------------
    def _scan_exprs(self, roots: list[ast.expr],
                    state: "_ScopeState") -> None:
        for root in roots:
            for node in _walk_expr(root):
                self._check_node(node, state)

    def _check_node(self, node: ast.expr, state: "_ScopeState") -> None:
        if isinstance(node, ast.Call):
            self._check_exp_call(node, state)
            self._check_float32_reduce(node)
        elif isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                self._check_expm1_denominator(node)
            elif isinstance(node.op, ast.Sub):
                self._check_exp_difference(node)
        elif isinstance(node, ast.Compare):
            self._check_float_equality(node)

    def _check_exp_call(self, node: ast.Call, state: "_ScopeState") -> None:
        name = call_name(node)
        if name is None or last_attr(name) not in _EXP_CALLS:
            return
        if not node.args:
            return
        argument = node.args[0]
        if _is_bounded_expr(argument, state):
            return
        self.reports.append((
            node.lineno, "NUM001",
            f"{last_attr(name)}() of an unclamped quantity; large "
            f"energy ratios overflow — clamp/shift the argument or "
            f"use a guarded kernel",
        ))

    def _check_expm1_denominator(self, node: ast.BinOp) -> None:
        denominator = _strip(node.right)
        if _is_expm1_shape(denominator):
            self.reports.append((
                node.lineno, "NUM002",
                "dividing by exp(x)-1 cancels catastrophically near "
                "x=0; use np.expm1 (see the guarded "
                "repro.physics.fermi.bose_weight kernel)",
            ))

    def _check_exp_difference(self, node: ast.BinOp) -> None:
        if _has_exp_factor(node.left) and _has_exp_factor(node.right):
            self.reports.append((
                node.lineno, "NUM004",
                "difference of two exponentials cancels "
                "catastrophically; factor as exp(b)*expm1(a-b) or "
                "work in log space",
            ))

    def _check_float_equality(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(_is_computed_float(op) for op in operands):
            self.reports.append((
                node.lineno, "NUM003",
                "float equality on a computed expression; floating "
                "arithmetic is inexact — compare with a tolerance",
            ))

    def _check_float32_reduce(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is None or last_attr(name) not in ("sum", "cumsum",
                                                   "nansum", "add"):
            return
        for keyword in node.keywords:
            if keyword.arg == "dtype" and _is_float32_dtype(keyword.value):
                self.reports.append((
                    node.lineno, "NUM005",
                    f"{last_attr(name)}() reducing in float32; "
                    f"accumulate in float64 and cast the result",
                ))


class _ScopeState:
    """Names with a proven bound / float32 allocation, per scope."""

    def __init__(self) -> None:
        self.bounded: set[str] = set()
        self.float32: set[str] = set()


# ----------------------------------------------------------------------
# expression predicates
# ----------------------------------------------------------------------

def _strip(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.UnaryOp) and \
            isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return node


def _root_name(node: ast.expr) -> str | None:
    node = _strip(node)
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _contains_max_shift(node: ast.expr) -> bool:
    """Does the expression contain a ``x.max(...)``/``np.max(...)``
    term (the log-sum-exp shift)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = call_name(sub)
            if name is not None and last_attr(name) in ("max", "amax",
                                                        "nanmax"):
                return True
    return False


def _is_bounded_expr(node: ast.expr, state: "_ScopeState") -> bool:
    """Is the exp() argument provably bounded?  (Conservative: any
    recognised guard idiom silences NUM001.)"""
    stripped = _strip(node)
    # all-literal arguments are trivially bounded
    if all(
        isinstance(leaf, ast.Constant)
        for leaf in ast.walk(stripped)
        if isinstance(leaf, ast.expr) and not isinstance(
            leaf, (ast.BinOp, ast.UnaryOp, ast.Tuple)
        )
    ):
        return True
    # a mask subscript (x[normal]) means the caller pre-selected the
    # safe range
    if any(isinstance(sub, ast.Subscript) for sub in ast.walk(stripped)):
        return True
    # a clamp call anywhere in the argument
    for sub in ast.walk(stripped):
        if isinstance(sub, ast.Call):
            name = call_name(sub)
            if name is not None and last_attr(name) in _CLAMP_CALLS:
                return True
    # -abs(x) is bounded above by zero
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = node.operand
        if isinstance(inner, ast.Call):
            inner_name = call_name(inner)
            if inner_name is not None and \
                    last_attr(inner_name) in ("abs", "absolute", "fabs"):
                return True
    # the log-sum-exp shift: expr - x.max()
    if isinstance(stripped, ast.BinOp) and isinstance(stripped.op, ast.Sub) \
            and _contains_max_shift(stripped.right):
        return True
    # every root name previously bounded (range guard / -= max shift)
    roots = {
        _root_name(sub)
        for sub in ast.walk(stripped)
        if isinstance(sub, ast.Name)
    }
    roots.discard(None)
    if roots and all(root in state.bounded for root in roots):
        return True
    return False


def _copies_any(node: ast.expr, names: set[str]) -> bool:
    root = _root_name(node)
    return root is not None and root in names


def _is_float32_dtype(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FLOAT32ISH
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT32ISH
    if isinstance(node, ast.Name):
        return node.id in _FLOAT32ISH
    return False


def _allocates_float32(node: ast.expr) -> bool:
    """``np.zeros(..., dtype=np.float32)`` and friends, or
    ``x.astype(np.float32)``."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        return False
    base = last_attr(name)
    if base == "astype":
        return bool(node.args) and _is_float32_dtype(node.args[0])
    if base in ("zeros", "ones", "empty", "full", "zeros_like",
                "ones_like", "empty_like", "full_like", "array",
                "asarray"):
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return _is_float32_dtype(keyword.value)
    return False


def _is_exp_call(node: ast.expr) -> bool:
    node = _strip(node)
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name is not None and last_attr(name) in ("exp", "exp2")
    return False


def _has_exp_factor(node: ast.expr) -> bool:
    node = _strip(node)
    if _is_exp_call(node):
        return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.Mult, ast.Div)):
        return _has_exp_factor(node.left) or _has_exp_factor(node.right)
    return False


def _is_expm1_shape(node: ast.expr) -> bool:
    """``exp(x) - 1`` or ``1 - exp(x)`` (scaled 1s included)."""
    if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Sub):
        return False
    left, right = _strip(node.left), _strip(node.right)
    if _is_exp_call(left) and _is_one(right):
        return True
    if _is_one(left) and _is_exp_call(right):
        return True
    return False


def _is_one(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and \
        isinstance(node.value, (int, float)) and \
        abs(float(node.value) - 1.0) < 1e-12


def _is_computed_float(node: ast.expr) -> bool:
    """An arithmetic expression that provably produces an inexact
    float: a BinOp chain containing a float literal or a true
    division."""
    if not isinstance(node, ast.BinOp):
        return False
    if not isinstance(node.op, (ast.Add, ast.Sub, ast.Mult,
                                ast.Div, ast.Pow)):
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
    return False


def _walk_stmt_expressions(stmt: ast.stmt) -> list[ast.expr]:
    """Every expression node of one simple statement, without
    descending into nested function/class/lambda bodies."""
    found: list[ast.expr] = []
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)) and node is not stmt:
            continue
        if isinstance(node, ast.expr):
            found.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return found


def _walk_expr(root: ast.expr) -> list[ast.expr]:
    """Every expression node under ``root`` (lambda bodies excluded)."""
    found: list[ast.expr] = []
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda) and node is not root:
            continue
        if isinstance(node, ast.expr):
            found.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return found
