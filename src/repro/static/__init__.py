"""Unified static-analysis framework (``repro check``).

One core hosts every source-level gate of the repository: file
loading/caching (:mod:`repro.static.source`), waiver-aware AST rule
visitors (:mod:`repro.static.visitors`), the cross-module call graph
promoted from the determinism sanitizer
(:mod:`repro.static.callgraph`), a single :class:`Diagnostic` model
with stable codes and severities (:mod:`repro.static.model`) and
text/JSON/SARIF emitters (:mod:`repro.static.emit`).

Six rule families run on the core:

* ``REPRO00x`` repository style rules (:mod:`repro.static.repo`,
  historically ``tools/check_source.py``);
* ``DET0xx`` determinism rules (:mod:`repro.dsan.rules`, still served
  by ``repro sanitize``);
* ``ARR0xx`` array-kernel correctness — an intraprocedural abstract
  interpreter tracking symbolic numpy shape/dtype facts through
  kernels annotated with :func:`array_contract`
  (:mod:`repro.static.arr`);
* ``PERF0xx`` hot-loop hygiene over kernels marked :func:`hot` or
  :func:`lowerable` (:mod:`repro.static.perf`);
* ``NUM0xx`` numerical stability — overflow-prone ``exp``,
  cancellation shapes, float32 accumulation, with recognisers for the
  repo's own guard idioms (:mod:`repro.static.numstab`);
* ``UNIT0xx`` dimensional analysis — an interprocedural abstract
  interpreter over an SI dimension lattice, driven by
  :func:`units` contracts and callgraph-ordered function summaries
  (:mod:`repro.static.unitcheck`, scheduled by
  :mod:`repro.static.summaries`).

A finding is waived for one line with a trailing ``# repro:
allow[CODE] justification`` comment (the legacy ``# dsan: allow[...]``
and blanket ``# repro-lint: allow`` forms stay honoured); waivers that
suppress nothing are themselves reported as ``W000``.

The contract decorators (:func:`array_contract`, :func:`hot`,
:func:`lowerable`, :func:`units`) are zero-cost at runtime — they only
attach parsed metadata — so kernels import them freely.  Everything else in this
package is loaded lazily (PEP 562) to keep kernel import time flat.
"""

from __future__ import annotations

from typing import Any

from repro.static.contracts import (
    ArrayContract,
    ArraySpec,
    array_contract,
    hot,
    lowerable,
    parse_spec,
    units,
)
from repro.static.dimensions import (
    Dimension,
    UnitContract,
    format_dimension,
    parse_unit,
    parse_units_spec,
)

#: Analysis-side names resolved lazily (PEP 562): the engine pulls in
#: the DET rules and the shared ``Severity`` from :mod:`repro.lint`,
#: whose package import is far too heavy for kernel modules that only
#: want the contract decorators above.
_LAZY_EXPORTS = {
    "Diagnostic": "repro.static.model",
    "Severity": "repro.static.model",
    "StaticCode": "repro.static.model",
    "StaticReport": "repro.static.model",
    "STATIC_CODES": "repro.static.model",
    "check_paths": "repro.static.engine",
    "default_root": "repro.static.engine",
    "load_baseline": "repro.static.engine",
    "write_baseline": "repro.static.engine",
    "PASS_NAMES": "repro.static.engine",
    "StaticCache": "repro.static.summaries",
    "default_static_cache_root": "repro.static.summaries",
    "run_units": "repro.static.summaries",
    "code_table": "repro.static.emit",
    "report_as_json": "repro.static.emit",
    "report_as_sarif": "repro.static.emit",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        # repro-lint: allow — PEP 562 requires AttributeError here;
        # anything else breaks hasattr()/getattr() on the package
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "ArrayContract",
    "ArraySpec",
    "Diagnostic",
    "Dimension",
    "PASS_NAMES",
    "STATIC_CODES",
    "Severity",
    "StaticCache",
    "StaticCode",
    "StaticReport",
    "UnitContract",
    "array_contract",
    "check_paths",
    "code_table",
    "default_root",
    "default_static_cache_root",
    "format_dimension",
    "hot",
    "load_baseline",
    "lowerable",
    "parse_spec",
    "parse_unit",
    "parse_units_spec",
    "report_as_json",
    "report_as_sarif",
    "run_units",
    "units",
    "write_baseline",
]
