"""Source-file loading, parsing and caching for the static passes.

Every pass of one ``repro check`` run shares a single parsed
representation per file (:class:`ModuleSource`): the raw text, the
split lines, the AST and a content hash.  :class:`SourceCache`
memoises parses keyed by path and *content hash* — not mtime, which
CI checkouts and archive extraction make unreliable — so repeated
analyses (the CLI, the test suite, an editor integration) never
re-parse an unchanged file, and the on-disk summary cache
(:mod:`repro.static.summaries`) can key its cells on the same hash.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
from pathlib import Path
from typing import Iterator

from repro.errors import SanitizerError


def content_hash_of(source: str) -> str:
    """Stable identity of a module's text (hex blake2b, 32 chars)."""
    return hashlib.blake2b(
        source.encode("utf-8"), digest_size=16
    ).hexdigest()


@dataclasses.dataclass
class ModuleSource:
    """One parsed source file plus the context the rules need."""

    path: Path
    #: path relative to the scan root, POSIX-style (``core/engine.py``);
    #: rules use it for module-scoped exemptions and baselines key on it
    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module
    #: blake2b hex digest of ``source`` — the identity the incremental
    #: summary cache keys its cells on
    content_hash: str = ""

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "ModuleSource":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SanitizerError(f"cannot read {path}: {exc}")
        return cls.parse_text(source, path, root=root)

    @classmethod
    def parse_text(
        cls, source: str, path: Path, root: Path | None = None
    ) -> "ModuleSource":
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise SanitizerError(f"{path}: not parseable python: {exc}")
        return cls(
            path=path,
            relpath=relpath_of(path, root),
            source=source,
            lines=source.splitlines(),
            tree=tree,
            content_hash=content_hash_of(source),
        )

    def line_text(self, lineno: int) -> str:
        """1-based source line (empty for out-of-range linenos)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def relpath_of(path: Path, root: Path | None) -> str:
    """Scan-root-relative POSIX path (bare name when outside the root)."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.name
    return path.name


def iter_python_files(roots: list[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for root in roots:
        if root.is_file():
            yield root
        elif root.is_dir():
            yield from sorted(root.rglob("*.py"))
        else:
            raise SanitizerError(f"no such file or directory: {root}")


class SourceCache:
    """Content-hash-keyed memo of parsed modules.

    A process-wide instance backs the framework entry points so the
    CLI, ``repro sanitize`` and the tests all reuse one parse per
    file.  Each load re-reads the file's bytes and hashes them — a
    ``touch`` or a fresh checkout with scrambled mtimes never
    invalidates anything, while any content change always does.
    ``relpath`` is recomputed per scan root because the same file may
    be scanned under different anchors.
    """

    def __init__(self) -> None:
        self._memo: dict[Path, ModuleSource] = {}

    def load(self, path: Path, root: Path | None = None) -> ModuleSource:
        key = path.resolve()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SanitizerError(f"cannot read {path}: {exc}")
        digest = content_hash_of(source)
        module = self._memo.get(key)
        if module is None or module.content_hash != digest:
            module = ModuleSource.parse_text(source, path, root=root)
            self._memo[key] = module
        wanted = relpath_of(path, root)
        if module.relpath != wanted:
            module = dataclasses.replace(module, relpath=wanted)
        return module

    def clear(self) -> None:
        self._memo.clear()


#: The process-wide parse cache shared by every framework entry point.
GLOBAL_CACHE = SourceCache()
