"""Approximate call graph and pool-worker reachability.

The DET020/DET021 rules need to know which functions can run *inside a
pool worker process*: anything reachable from a worker entry point —
a function passed to :func:`repro.parallel.pool.execute_shards` — plus
the pool's own subprocess entry.  Exact interprocedural analysis is
out of scope for a sanitizer; this module builds a deliberately
over-approximate graph keyed by *bare* function name (``measure`` and
``Foo.measure`` collide), which errs toward flagging.  False positives
are waived per line with a justification, which is exactly the audit
trail the determinism contract wants.

Promoted from ``repro.dsan.callgraph`` into the shared static core so
future cross-module rules (and the engine's context object) can reuse
one graph per run instead of each pass rebuilding its own.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from repro.static.source import ModuleSource
from repro.static.visitors import call_name, last_attr

#: Functions whose first argument is shipped to worker processes.
POOL_SUBMISSION_CALLS = frozenset({"execute_shards"})

#: The pool's own subprocess entry: everything it calls runs in a
#: worker even though it is never *passed* to ``execute_shards``.
IMPLICIT_WORKER_ENTRIES = frozenset({"_shard_entry"})


@dataclasses.dataclass(frozen=True)
class FunctionNode:
    """One function or method definition in the scanned set."""

    relpath: str
    qualname: str
    name: str
    lineno: int
    node: ast.AST


class CallGraph:
    """Name-keyed call graph over a set of parsed modules."""

    def __init__(self, modules: list[ModuleSource]):
        #: bare name -> definitions sharing it
        self.definitions: dict[str, list[FunctionNode]] = {}
        #: bare caller name -> bare callee names
        self.calls: dict[str, set[str]] = {}
        #: bare names of functions passed to a pool submission call
        self.worker_entries: set[str] = set()
        for module in modules:
            self._scan_module(module)
        self.worker_entries |= IMPLICIT_WORKER_ENTRIES & set(self.definitions)

    # ------------------------------------------------------------------
    def _scan_module(self, module: ModuleSource) -> None:
        for qualname, func in _iter_functions(module.tree):
            node = FunctionNode(
                relpath=module.relpath,
                qualname=qualname,
                name=func.name,
                lineno=func.lineno,
                node=func,
            )
            self.definitions.setdefault(func.name, []).append(node)
            callees = self.calls.setdefault(func.name, set())
            for call in _direct_calls(func, skip_functions=True):
                name = call_name(call)
                if name is None:
                    continue
                callees.add(last_attr(name))
                if last_attr(name) in POOL_SUBMISSION_CALLS and call.args:
                    entry = _callable_bare_name(call.args[0])
                    if entry is not None:
                        self.worker_entries.add(entry)
        # module-level pool submissions count too
        for call in _direct_calls(module.tree, skip_functions=True):
            name = call_name(call)
            if name is not None and last_attr(name) in POOL_SUBMISSION_CALLS \
                    and call.args:
                entry = _callable_bare_name(call.args[0])
                if entry is not None:
                    self.worker_entries.add(entry)

    # ------------------------------------------------------------------
    def worker_reachable(self) -> frozenset[str]:
        """Bare names of every function reachable from a worker entry."""
        seen: set[str] = set()
        frontier = [e for e in self.worker_entries if e in self.definitions]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in self.calls.get(name, ()):
                if callee in self.definitions and callee not in seen:
                    frontier.append(callee)
        return frozenset(seen)

    def witness_path(self, target: str) -> list[str]:
        """One entry-to-target call chain, for a readable message."""
        for entry in sorted(self.worker_entries):
            path = self._search(entry, target, [entry], set())
            if path is not None:
                return path
        return [target]

    def _search(
        self, current: str, target: str, path: list[str], seen: set[str]
    ) -> list[str] | None:
        if current == target:
            return path
        if current in seen:
            return None
        seen.add(current)
        for callee in sorted(self.calls.get(current, ())):
            if callee not in self.definitions:
                continue
            found = self._search(callee, target, path + [callee], seen)
            if found is not None:
                return found
        return None


# ----------------------------------------------------------------------
# AST walking helpers
# ----------------------------------------------------------------------

def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, function_node)`` for every def."""
    stack: list[tuple[ast.AST, str]] = [(tree, "")]
    while stack:
        node, prefix = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                stack.append((child, f"{qualname}.<locals>."))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, f"{prefix}{child.name}."))
            else:
                # other statements can still nest defs (`if`, `with`)
                stack.append((child, prefix))


def _direct_calls(
    scope: ast.AST, skip_functions: bool = False
) -> Iterator[ast.Call]:
    """Every ``Call`` under ``scope``; optionally without descending
    into nested function bodies (their calls belong to that function)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if skip_functions and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _callable_bare_name(node: ast.expr) -> str | None:
    """Bare name of a callable reference (``worker`` / ``mod.worker``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
