"""Approximate call graph and pool-worker reachability.

The DET020/DET021 rules need to know which functions can run *inside a
pool worker process*: anything reachable from a worker entry point —
a function passed to :func:`repro.parallel.pool.execute_shards` — plus
the pool's own subprocess entry.  Exact interprocedural analysis is
out of scope for a sanitizer; this module builds a deliberately
over-approximate graph keyed by *bare* function name (``measure`` and
``Foo.measure`` collide), which errs toward flagging.  False positives
are waived per line with a justification, which is exactly the audit
trail the determinism contract wants.

Promoted from ``repro.dsan.callgraph`` into the shared static core so
future cross-module rules (and the engine's context object) can reuse
one graph per run instead of each pass rebuilding its own.
"""

from __future__ import annotations

import ast
import dataclasses

from repro.static.source import ModuleSource
from repro.static.visitors import call_name, last_attr

#: Functions whose first argument is shipped to worker processes.
POOL_SUBMISSION_CALLS = frozenset({"execute_shards"})

#: The pool's own subprocess entry: everything it calls runs in a
#: worker even though it is never *passed* to ``execute_shards``.
IMPLICIT_WORKER_ENTRIES = frozenset({"_shard_entry"})


@dataclasses.dataclass(frozen=True)
class FunctionNode:
    """One function or method definition in the scanned set."""

    relpath: str
    qualname: str
    name: str
    lineno: int
    node: ast.AST


class CallGraph:
    """Name-keyed call graph over a set of parsed modules.

    Besides the function-level facts the DET rules consume, the graph
    condenses to a *module* dependency graph for the summary engine:
    module A depends on module B when A calls a bare name that B
    defines (as a function, or as a class — constructor calls resolve
    to the class's ``__init__`` summary).  :meth:`module_sccs` orders
    the modules dependencies-first with cycles collapsed, which is the
    schedule for callgraph-ordered summary computation, and
    :meth:`dependents_of` is the reverse closure behind ``repro check
    --changed`` and transitive cache invalidation.
    """

    def __init__(self, modules: list[ModuleSource]):
        #: bare name -> definitions sharing it
        self.definitions: dict[str, list[FunctionNode]] = {}
        #: bare caller name -> bare callee names
        self.calls: dict[str, set[str]] = {}
        #: bare names of functions passed to a pool submission call
        self.worker_entries: set[str] = set()
        #: relpath -> bare names this module defines at any level
        #: (functions *and* classes: summary providers)
        self.provides: dict[str, set[str]] = {}
        #: relpath -> bare names called anywhere in the module
        self.module_calls: dict[str, set[str]] = {}
        self.relpaths: list[str] = [m.relpath for m in modules]
        for module in modules:
            self._scan_module(module)
        self.worker_entries |= IMPLICIT_WORKER_ENTRIES & set(self.definitions)
        #: bare name -> relpaths providing a definition of it
        self._providers: dict[str, list[str]] = {}
        for relpath, names in self.provides.items():
            for name in names:
                self._providers.setdefault(name, []).append(relpath)

    # ------------------------------------------------------------------
    def _scan_module(self, module: ModuleSource) -> None:
        """One walk per module: definitions, per-function call edges,
        module-wide called names and pool submissions all in a single
        traversal (this is the hot loop of ``load_context``)."""
        provides = self.provides.setdefault(module.relpath, set())
        called = self.module_calls.setdefault(module.relpath, set())
        # (node, qualname prefix, innermost enclosing function name)
        stack: list[tuple[ast.AST, str, str | None]] = [
            (module.tree, "", None)
        ]
        while stack:
            node, prefix, func = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qualname = f"{prefix}{child.name}"
                    self.definitions.setdefault(child.name, []).append(
                        FunctionNode(
                            relpath=module.relpath,
                            qualname=qualname,
                            name=child.name,
                            lineno=child.lineno,
                            node=child,
                        )
                    )
                    provides.add(child.name)
                    self.calls.setdefault(child.name, set())
                    stack.append(
                        (child, f"{qualname}.<locals>.", child.name)
                    )
                    continue
                if isinstance(child, ast.ClassDef):
                    provides.add(child.name)
                    stack.append((child, f"{prefix}{child.name}.", None))
                    continue
                if isinstance(child, ast.Lambda):
                    # calls inside a lambda belong to no named function
                    stack.append((child, prefix, None))
                    continue
                if isinstance(child, ast.Call):
                    name = call_name(child)
                    if name is not None:
                        bare = last_attr(name)
                        called.add(bare)
                        if func is not None:
                            self.calls[func].add(bare)
                        if bare in POOL_SUBMISSION_CALLS and child.args:
                            entry = _callable_bare_name(child.args[0])
                            if entry is not None:
                                self.worker_entries.add(entry)
                stack.append((child, prefix, func))

    # ------------------------------------------------------------------
    # module dependency graph (summary engine schedule)
    # ------------------------------------------------------------------

    def providers_of(self, name: str) -> list[str]:
        """Relpaths of modules defining ``name`` (function or class)."""
        return self._providers.get(name, [])

    def module_deps(self) -> dict[str, set[str]]:
        """Relpath -> relpaths it depends on (self-edges dropped)."""
        deps: dict[str, set[str]] = {}
        for relpath in self.relpaths:
            wanted: set[str] = set()
            for name in self.module_calls.get(relpath, ()):
                wanted.update(self._providers.get(name, ()))
            wanted.discard(relpath)
            deps[relpath] = wanted
        return deps

    def module_sccs(self) -> list[tuple[str, ...]]:
        """Strongly connected components of the module graph, ordered
        dependencies-first (Tarjan, iterative)."""
        deps = self.module_deps()
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[tuple[str, ...]] = []
        counter = 0
        for start in self.relpaths:
            if start in index:
                continue
            # iterative Tarjan: (node, iterator over successors)
            work = [(start, iter(sorted(deps.get(start, ()))))]
            index[start] = lowlink[start] = counter
            counter += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(deps.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(tuple(sorted(component)))
        return sccs

    def dependents_of(self, changed: set[str]) -> set[str]:
        """``changed`` plus every module transitively depending on one
        of them — the re-analysis set after an edit."""
        reverse: dict[str, set[str]] = {r: set() for r in self.relpaths}
        for relpath, wanted in self.module_deps().items():
            for dep in wanted:
                reverse.setdefault(dep, set()).add(relpath)
        seen = set(changed) & set(self.relpaths)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for dependent in reverse.get(current, ()):
                if dependent not in seen:
                    seen.add(dependent)
                    frontier.append(dependent)
        return seen

    # ------------------------------------------------------------------
    def worker_reachable(self) -> frozenset[str]:
        """Bare names of every function reachable from a worker entry."""
        seen: set[str] = set()
        frontier = [e for e in self.worker_entries if e in self.definitions]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in self.calls.get(name, ()):
                if callee in self.definitions and callee not in seen:
                    frontier.append(callee)
        return frozenset(seen)

    def witness_path(self, target: str) -> list[str]:
        """One entry-to-target call chain, for a readable message."""
        for entry in sorted(self.worker_entries):
            path = self._search(entry, target, [entry], set())
            if path is not None:
                return path
        return [target]

    def _search(
        self, current: str, target: str, path: list[str], seen: set[str]
    ) -> list[str] | None:
        if current == target:
            return path
        if current in seen:
            return None
        seen.add(current)
        for callee in sorted(self.calls.get(current, ())):
            if callee not in self.definitions:
                continue
            found = self._search(callee, target, path + [callee], seen)
            if found is not None:
                return found
        return None


# ----------------------------------------------------------------------
# AST walking helpers
# ----------------------------------------------------------------------

def _callable_bare_name(node: ast.expr) -> str | None:
    """Bare name of a callable reference (``worker`` / ``mod.worker``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
