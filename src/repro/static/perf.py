"""``PERF0xx``: hot-loop hygiene for kernels marked ``@hot``.

The batched engine's throughput lives or dies on a handful of inner
kernels; these rules flag the python-level anti-patterns that silently
cost 10-100x there.  They run only on functions marked
:func:`repro.static.hot` or :func:`repro.static.lowerable` (PERF004 on
the latter only), so ordinary setup code — where a list-append loop is
perfectly fine — is never nagged.

Codes
=====

========  ========================================================
PERF001   python-level ``for`` loop over ndarray elements
PERF002   numpy array allocation inside a loop body
PERF003   array growth by ``np.append`` / list-append-then-array
PERF004   construct the planned numba ``nopython`` lowering cannot
          compile (``try``/``with``, dict/set literals and
          comprehensions, generators, lambdas, nested defs,
          star-args)
========  ========================================================
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import Severity
from repro.static.arr import contract_of
from repro.static.model import Diagnostic, StaticCode, diagnostic, register_codes
from repro.static.source import ModuleSource
from repro.static.visitors import call_name, decorator_names, iter_functions
from repro.static.waivers import WaiverIndex

register_codes(
    StaticCode(
        "PERF001", Severity.WARNING, "python loop over ndarray elements",
        "vectorise with array expressions, or lower the loop with "
        "@lowerable so numba compiles it",
        domain="performance",
    ),
    StaticCode(
        "PERF002", Severity.WARNING, "array allocation inside hot loop",
        "hoist the allocation out of the loop and reuse the buffer",
        domain="performance",
    ),
    StaticCode(
        "PERF003", Severity.WARNING, "quadratic array growth",
        "preallocate and index-assign, or collect into a list outside "
        "the hot region",
        domain="performance",
    ),
    StaticCode(
        "PERF004", Severity.WARNING, "construct blocks numba lowering",
        "replace with a nopython-compatible construct or move it out "
        "of the @lowerable kernel",
        domain="performance",
    ),
)

#: numpy namespace prefixes
_NUMPY_NAMES = ("np", "numpy")

#: numpy callables that allocate a fresh array
_ALLOCATORS = {
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "array", "arange", "linspace",
    "concatenate", "stack", "vstack", "hstack", "tile", "repeat",
    "copy",
}

#: numpy callables returning arrays — seeds the array-name inference
_ARRAY_RETURNING = _ALLOCATORS | {
    "asarray", "ascontiguousarray", "where", "interp", "sort", "cumsum",
}


def _numpy_callee(node: ast.Call) -> str | None:
    """``np.zeros(...)`` -> ``"zeros"``; ``None`` for non-numpy calls."""
    name = call_name(node)
    if name is None:
        return None
    parts = name.split(".")
    if parts[0] in _NUMPY_NAMES and len(parts) >= 2:
        return parts[-1]
    return None


def _collect_array_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names that provably hold ndarrays inside ``func``."""
    names: set[str] = set()
    contract, _error = contract_of(func)
    if contract is not None:
        for param, spec in contract.params.items():
            if spec.shape is None or len(spec.shape) >= 1:
                names.add(param)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _numpy_callee(node.value)
            if callee in _ARRAY_RETURNING:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _collect_list_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names initialised to an empty list inside ``func``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            value = node.value
            is_empty_list = isinstance(value, ast.List) and not value.elts
            is_list_call = (
                isinstance(value, ast.Call)
                and call_name(value) == "list"
                and not value.args
            )
            if is_empty_list or is_list_call:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _loop_iterates_array(iter_node: ast.expr, arrays: set[str]) -> bool:
    """Does this ``for`` iterate ndarray elements at python level?"""
    if isinstance(iter_node, ast.Name):
        return iter_node.id in arrays
    if isinstance(iter_node, ast.Call):
        name = call_name(iter_node)
        if name == "enumerate" and iter_node.args:
            return _loop_iterates_array(iter_node.args[0], arrays)
        if name == "range" and iter_node.args:
            # range(len(arr)) / range(arr.shape[0]): indexed iteration
            first = iter_node.args[0] if len(iter_node.args) == 1 \
                else iter_node.args[1]
            if isinstance(first, ast.Call) and call_name(first) == "len" \
                    and first.args and isinstance(first.args[0], ast.Name):
                return first.args[0].id in arrays
            if isinstance(first, ast.Subscript) \
                    and isinstance(first.value, ast.Attribute) \
                    and first.value.attr == "shape" \
                    and isinstance(first.value.value, ast.Name):
                return first.value.value.id in arrays
    return False


#: statement/expression node types numba nopython cannot lower
_NON_LOWERABLE: tuple[tuple[type[ast.AST], str], ...] = (
    (ast.Try, "try/except block"),
    (ast.With, "with block"),
    (ast.Dict, "dict literal"),
    (ast.Set, "set literal"),
    (ast.DictComp, "dict comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.GeneratorExp, "generator expression"),
    (ast.Yield, "generator (yield)"),
    (ast.YieldFrom, "generator (yield from)"),
    (ast.Lambda, "lambda"),
)


class _HotFunctionScan:
    """One @hot function's PERF analysis."""

    def __init__(
        self,
        module: ModuleSource,
        windex: WaiverIndex,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        lowerable: bool,
    ):
        self.module = module
        self.windex = windex
        self.func = func
        self.qualname = qualname
        self.lowerable = lowerable
        self.arrays = _collect_array_names(func)
        self.lists = _collect_list_names(func)
        self.findings: list[Diagnostic] = []
        #: list names appended to inside a loop -> line of the append
        self.loop_appends: dict[str, int] = {}

    def report(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", self.func.lineno)
        if self.windex.waives(lineno, code):
            return
        self.findings.append(
            diagnostic(
                code,
                message,
                path=str(self.module.path),
                line=lineno,
                relpath=self.module.relpath,
                symbol=self.qualname,
            )
        )

    # ------------------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        for stmt in self.func.body:
            self.scan(stmt, loop_depth=0)
        self.check_materialised_appends()
        if self.lowerable:
            self.scan_lowerable()
        return self.findings

    def scan(self, node: ast.AST, loop_depth: int) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _loop_iterates_array(node.iter, self.arrays):
                self.report(
                    node, "PERF001",
                    "python-level loop over ndarray elements in a hot "
                    "kernel; vectorise or lower it",
                )
            self.scan_children(node, loop_depth + 1)
            return
        if isinstance(node, ast.While):
            self.scan_children(node, loop_depth + 1)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not self.func:
            return  # nested defs are their own (non-hot) scope
        if isinstance(node, ast.Call):
            self.scan_call(node, loop_depth)
        self.scan_children(node, loop_depth)

    def scan_children(self, node: ast.AST, loop_depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            self.scan(child, loop_depth)

    def scan_call(self, node: ast.Call, loop_depth: int) -> None:
        callee = _numpy_callee(node)
        if callee == "append":
            self.report(
                node, "PERF003",
                "np.append reallocates the whole array every call; "
                "preallocate and index-assign",
            )
            return
        if loop_depth == 0:
            return
        if callee in _ALLOCATORS:
            self.report(
                node, "PERF002",
                f"np.{callee} allocates a fresh array every iteration; "
                f"hoist the buffer out of the loop",
            )
            return
        # list.append inside a loop: remember for the PERF003
        # list-append-then-np.array pattern
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "append" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in self.lists:
            self.loop_appends.setdefault(
                node.func.value.id, node.lineno
            )

    def check_materialised_appends(self) -> None:
        """`lst.append` in a loop + later `np.array(lst)` -> PERF003."""
        if not self.loop_appends:
            return
        for node in ast.walk(self.func):
            if not isinstance(node, ast.Call):
                continue
            callee = _numpy_callee(node)
            if callee not in ("array", "asarray", "concatenate", "stack"):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name) \
                        and arg.id in self.loop_appends:
                    self.report(
                        node, "PERF003",
                        f"list {arg.id!r} grows inside a loop (line "
                        f"{self.loop_appends[arg.id]}) and is then "
                        f"materialised with np.{callee}; preallocate "
                        f"and index-assign",
                    )

    def scan_lowerable(self) -> None:
        for node in ast.walk(self.func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not self.func:
                self.report(
                    node, "PERF004",
                    f"nested function {node.name!r} blocks numba "
                    f"nopython lowering",
                )
                continue
            if isinstance(node, ast.ClassDef):
                self.report(
                    node, "PERF004",
                    f"class definition {node.name!r} blocks numba "
                    f"nopython lowering",
                )
                continue
            for node_type, label in _NON_LOWERABLE:
                if isinstance(node, node_type):
                    self.report(
                        node, "PERF004",
                        f"{label} blocks numba nopython lowering",
                    )
                    break
            if isinstance(node, ast.Call):
                if any(isinstance(a, ast.Starred) for a in node.args) \
                        or any(k.arg is None for k in node.keywords):
                    self.report(
                        node, "PERF004",
                        "star-args call blocks numba nopython lowering",
                    )


def perf_pass(module: ModuleSource, windex: WaiverIndex) -> list[Diagnostic]:
    """Run the hot-loop hygiene rules over every marked kernel."""
    findings: list[Diagnostic] = []
    for qualname, func in iter_functions(module.tree):
        decorators = decorator_names(func)
        is_lowerable = "lowerable" in decorators
        if "hot" not in decorators and not is_lowerable:
            continue
        scan = _HotFunctionScan(
            module, windex, func, qualname, lowerable=is_lowerable
        )
        findings.extend(scan.run())
    return findings


__all__ = ["perf_pass"]
