"""Emitters: code table, JSON and SARIF renderings of a report.

The text rendering lives on :class:`~repro.static.model.StaticReport`
itself (``.format()``); this module holds the machine-readable
formats: the full-registry table behind ``repro check --codes``, the
JSON document behind ``--format json`` and a minimal SARIF 2.1.0
document (``--format sarif``) that code-review UIs ingest directly.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Severity
from repro.static.model import STATIC_CODES, StaticReport

__all__ = ["code_table", "report_as_json", "report_as_sarif"]

#: Order the domains render in — mirrors pass execution order.
_DOMAIN_ORDER = (
    "repository", "determinism", "array", "performance", "numerics",
    "units", "framework",
)


def code_table() -> str:
    """The full static-code registry as a fixed-width table."""
    lines: list[str] = []
    domains = list(_DOMAIN_ORDER) + sorted(
        {info.domain for info in STATIC_CODES.values()}
        - set(_DOMAIN_ORDER)
    )
    for domain in domains:
        infos = [
            info for info in STATIC_CODES.values() if info.domain == domain
        ]
        if not infos:
            continue
        lines.append(f"[{domain}]")
        lines.append(f"{'code':8s} {'severity':8s} meaning")
        for info in sorted(infos, key=lambda i: i.code):
            lines.append(
                f"{info.code:8s} {str(info.severity):8s} {info.title}"
            )
            lines.append(f"{'':8s} {'':8s}   fix: {info.fix}")
        lines.append("")
    return "\n".join(lines).rstrip()


def report_as_json(report: StaticReport) -> str:
    """Machine-readable rendering for ``repro check --format json``."""
    return json.dumps(
        {
            "files_scanned": report.files_scanned,
            "findings": [f.as_dict() for f in report.findings],
            "baselined": [f.as_dict() for f in report.baselined],
            "summary": report.summary(),
            "exit_code": report.exit_code,
        },
        indent=2,
    )


_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def report_as_sarif(report: StaticReport) -> str:
    """Minimal SARIF 2.1.0 document for ``repro check --format sarif``."""
    used_codes = sorted({f.code for f in report.findings})
    rules = []
    for code in used_codes:
        info = STATIC_CODES.get(code)
        if info is None:
            rules.append({"id": code})
            continue
        rules.append(
            {
                "id": code,
                "shortDescription": {"text": info.title},
                "help": {"text": info.fix},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[info.severity],
                },
                "properties": {"domain": info.domain},
            }
        )
    results = []
    for f in report.findings:
        message = f.message
        if f.witness:
            message += f" ({' -> '.join(f.witness)})"
        results.append(
            {
                "ruleId": f.code,
                "level": _SARIF_LEVELS[f.severity],
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.relpath or f.path,
                            },
                            "region": {"startLine": max(f.line, 1)},
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
