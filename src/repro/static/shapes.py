"""The abstract shape/dtype domain of the ARR interpreter.

Values are deliberately three-valued so the pass only ever flags what
it can *prove*:

* a dimension (``Dim``) is a concrete ``int``, a named symbolic size
  (``str``, e.g. ``"n_islands"``), or ``None`` — unknown;
* a shape (``Shape``) is a tuple of dims, or ``None`` — unknown rank;
* a dtype is a canonical name from :data:`DTYPE_ORDER`, or ``None`` —
  unknown / weakly typed (python scalars).

Two *different* symbols (``n`` vs ``m``) are compatible — they might
be equal at runtime — and never flagged; two different concrete ints
are a provable conflict.  Joins (:func:`join_shape`) widen
disagreeing components to unknown, which keeps branch merges sound.
"""

from __future__ import annotations

__all__ = [
    "Dim",
    "Shape",
    "broadcast",
    "broadcast_dims",
    "format_shape",
    "is_narrowing",
    "join_dim",
    "join_shape",
    "matmul_shape",
    "promote",
    "reduce_shape",
]

#: One dimension: concrete, symbolic, or unknown.
Dim = int | str | None
#: One shape: known-rank tuple of dims, or unknown rank.
Shape = tuple[Dim, ...] | None

#: Promotion order of the dtypes the kernels use.  Earlier entries
#: promote to later ones; storing a later one into an earlier one is a
#: narrowing (lossy) conversion.
DTYPE_ORDER = ("bool", "int32", "int64", "float32", "float64", "complex128")

_RANK = {name: i for i, name in enumerate(DTYPE_ORDER)}


class BroadcastError(ValueError):
    """Provably incompatible shapes (carries the offending pair)."""

    def __init__(self, a: Shape, b: Shape):
        self.a = a
        self.b = b
        super().__init__(
            f"shapes {format_shape(a)} and {format_shape(b)} are not "
            f"broadcast-compatible"
        )


# ----------------------------------------------------------------------
# dimensions
# ----------------------------------------------------------------------

def broadcast_dims(a: Dim, b: Dim) -> Dim:
    """Numpy broadcast of one aligned dimension pair.

    Raises :class:`BroadcastError` only for a provable conflict: two
    concrete ints that differ and are both > 1.  A symbolic or unknown
    dim is compatible with anything (it may be 1, or equal).
    """
    if a == 1:
        return b
    if b == 1:
        return a
    if a is None or b is None:
        # unknown vs X: the unknown side must be 1 or equal to X for
        # the program to run at all, so if X is a concrete int > 1 the
        # result is X; a symbolic X may itself be 1, so stay unknown
        other = b if a is None else a
        return other if isinstance(other, int) else None
    if isinstance(a, int) and isinstance(b, int):
        if a != b:
            raise BroadcastError((a,), (b,))
        return a
    if a == b:  # same symbol
        return a
    # two different symbols, or symbol vs int: possibly equal, or the
    # symbol may be 1 — result size is not provable
    return None


def join_dim(a: Dim, b: Dim) -> Dim:
    """Widening join for branch merges: agree or become unknown."""
    return a if a == b else None


# ----------------------------------------------------------------------
# shapes
# ----------------------------------------------------------------------

def broadcast(a: Shape, b: Shape) -> Shape:
    """Numpy broadcast of two shapes (``None`` rank stays unknown).

    Raises :class:`BroadcastError` for provable conflicts only.
    """
    if a is None or b is None:
        return None
    if len(a) < len(b):
        a, b = b, a
    padded = (1,) * (len(a) - len(b)) + b
    try:
        return tuple(broadcast_dims(x, y) for x, y in zip(a, padded))
    except BroadcastError:
        raise BroadcastError(a, b)


def join_shape(a: Shape, b: Shape) -> Shape:
    """Widening join: component-wise :func:`join_dim`; rank mismatch
    (or an unknown side) widens to unknown rank."""
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(join_dim(x, y) for x, y in zip(a, b))


def reduce_shape(shape: Shape, axis: int | None,
                 keepdims: bool = False) -> Shape | BroadcastError:
    """Shape after a reduction (``sum``/``max``/...) along ``axis``.

    ``axis=None`` is a full reduction to a 0-d scalar.  Returns a
    :class:`BroadcastError` (not raised) when the axis is provably out
    of range, so the caller can attach location context.
    """
    if shape is None:
        return None
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    rank = len(shape)
    index = axis + rank if axis < 0 else axis
    if not 0 <= index < rank:
        return BroadcastError(shape, (axis,))
    if keepdims:
        return shape[:index] + (1,) + shape[index + 1:]
    return shape[:index] + shape[index + 1:]


def matmul_shape(a: Shape, b: Shape) -> Shape | BroadcastError:
    """Result shape of ``a @ b`` for 1-d/2-d operands.

    Returns a :class:`BroadcastError` when the inner dimensions are
    provably unequal; gives up (``None``) on stacked (>2-d) operands.
    """
    if a is None or b is None:
        return None
    if len(a) == 0 or len(b) == 0 or len(a) > 2 or len(b) > 2:
        return None  # scalar matmul is a runtime error; >2-d is stacked
    inner_a = a[-1]
    inner_b = b[0] if len(b) == 1 else b[-2]
    if isinstance(inner_a, int) and isinstance(inner_b, int) \
            and inner_a != inner_b:
        return BroadcastError(a, b)
    rows = a[:-1] if len(a) == 2 else ()
    cols = b[-1:] if len(b) == 2 else ()
    return rows + cols


def format_shape(shape: Shape) -> str:
    if shape is None:
        return "(?rank)"
    if not shape:
        return "()"
    parts = ["?" if d is None else str(d) for d in shape]
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


# ----------------------------------------------------------------------
# dtypes
# ----------------------------------------------------------------------

def promote(a: str | None, b: str | None) -> str | None:
    """Result dtype of an arithmetic op (unknown absorbs everything)."""
    if a is None or b is None:
        return None
    if a not in _RANK or b not in _RANK:
        return None
    return a if _RANK[a] >= _RANK[b] else b


def is_narrowing(value: str | None, target: str | None) -> bool:
    """Would storing ``value`` into ``target`` lose precision?

    Only provable cases return ``True``: both dtypes known and the
    value's rank strictly above the target's.
    """
    if value is None or target is None:
        return False
    if value not in _RANK or target not in _RANK:
        return False
    return _RANK[value] > _RANK[target]
