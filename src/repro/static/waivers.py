"""Per-line waiver comments, unified across every static pass.

The canonical syntax names the code(s) being waived plus an
(encouraged) human justification::

    rates = table[idx]  # repro: allow[ARR003] scratch buffer, never escapes

Multiple codes may share one comment (``allow[ARR003,PERF002]``);
silencing one rule never silences the others on that line.  Two legacy
forms stay honoured so history does not churn: the determinism
sanitizer's ``# dsan: allow[...]`` (same per-code semantics) and
the repository gate's blanket ``# repro-lint: allow`` (which waives
every ``REPRO00x`` rule on its line, as it always did).

A waiver applies to its own line or — so justifications stay readable
— to a report on the first code line below a pure-comment block
containing it.  :class:`WaiverIndex` tracks which comments actually
suppressed a finding; the framework reports the stale remainder as
``W000 unused-waiver`` so dead waivers cannot rot in the tree.

Comments are discovered with :mod:`tokenize`, not substring search, so
waiver syntax quoted inside docstrings or string literals is ignored.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize

from repro.lint.diagnostics import Severity
from repro.static.model import StaticCode, register_codes
from repro.static.source import ModuleSource

__all__ = ["Waiver", "WaiverIndex"]

register_codes(
    StaticCode(
        "W000", Severity.WARNING, "unused waiver comment",
        "the waived diagnostic no longer fires here; delete the "
        "comment (or fix its code list) so waivers stay an accurate "
        "audit trail",
        domain="framework",
    ),
)

#: the unified syntax: ``repro: allow[...]`` naming one or more codes
_UNIFIED = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")
#: legacy determinism-sanitizer syntax: ``dsan: allow[...]``
_LEGACY_DSAN = re.compile(r"#\s*dsan:\s*allow\[([A-Z0-9,\s]+)\]")
#: legacy blanket repository-rule waiver (prefix spelled out in parts
#: so this line never parses as a waiver of its own)
_LEGACY_REPO = "# repro-lint" + ": allow"


@dataclasses.dataclass
class Waiver:
    """One waiver comment found in a module."""

    lineno: int
    #: waived codes; ``None`` means the legacy blanket form, which
    #: covers every repository (``REPRO``) rule on the line
    codes: frozenset[str] | None
    text: str
    used: bool = False

    def covers(self, code: str) -> bool:
        if self.codes is None:
            return code.startswith("REPRO")
        return code in self.codes


def _parse_comment(lineno: int, text: str) -> list[Waiver]:
    waivers: list[Waiver] = []
    codes: set[str] = set()
    for pattern in (_UNIFIED, _LEGACY_DSAN):
        for match in pattern.finditer(text):
            codes.update(
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            )
    if codes:
        waivers.append(Waiver(lineno, frozenset(codes), text.strip()))
    elif _LEGACY_REPO in text:
        waivers.append(Waiver(lineno, None, text.strip()))
    return waivers


class WaiverIndex:
    """All waiver comments of one module, with usage tracking.

    :meth:`waives` is the single query every rule goes through; it
    marks the matching comment as used, so after all passes have run
    :meth:`unused` is exactly the stale set ``W000`` should report.
    """

    def __init__(self, module: ModuleSource):
        self.module = module
        self._by_line: dict[int, list[Waiver]] = {}
        self.waivers: list[Waiver] = []
        for lineno, text in _iter_comments(module):
            for waiver in _parse_comment(lineno, text):
                self.waivers.append(waiver)
                self._by_line.setdefault(lineno, []).append(waiver)

    # ------------------------------------------------------------------
    def waives(self, lineno: int, code: str) -> bool:
        """Is a report of ``code`` on ``lineno`` waived?  (Marks use.)

        A waiver matches on the report's own line, or anywhere in the
        pure-comment block immediately above it (where a justification
        is readable).
        """
        if self._match(lineno, code):
            return True
        above = lineno - 1
        while above >= 1:
            text = self.module.line_text(above).strip()
            if not text.startswith("#"):
                break
            if self._match(above, code):
                return True
            above -= 1
        return False

    def _match(self, lineno: int, code: str) -> bool:
        for waiver in self._by_line.get(lineno, ()):
            if waiver.covers(code):
                waiver.used = True
                return True
        return False

    def unused(self) -> list[Waiver]:
        """Waiver comments that suppressed nothing, in line order."""
        return [w for w in self.waivers if not w.used]


def _iter_comments(module: ModuleSource) -> list[tuple[int, str]]:
    """``(lineno, text)`` for every real comment token of the module."""
    # every waiver form contains "allow"; most modules have none, and
    # skipping their tokenize pass keeps warm `repro check` runs fast
    if "allow" not in module.source:
        return []
    comments: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        # the file parsed as AST, so this is at most a trailing
        # continuation quirk; fall back to raw line scanning
        comments = [
            (i, line) for i, line in enumerate(module.lines, start=1)
            if "#" in line
        ]
    return comments
