"""Shared AST visitor infrastructure of the static passes.

Every source-level rule family — repository style (``REPRO00x``),
determinism (``DET0xx``), array correctness (``ARR0xx``) and hot-loop
hygiene (``PERF0xx``) — is built on this module: one waiver-aware
reporting base class (:class:`RuleVisitor`), a scoped symbol table for
rules that need name resolution (:class:`ScopedSymbols`) and small AST
helpers the rules share (dotted-name resolution, set-expression
detection).
"""

from __future__ import annotations

import ast

from repro.static.source import ModuleSource
from repro.static.waivers import WaiverIndex


class RuleVisitor(ast.NodeVisitor):
    """Node visitor with per-line waiver handling.

    Subclasses call :meth:`report` instead of appending directly; the
    shared :class:`WaiverIndex` decides whether the report is
    suppressed and records the waiver as used either way.
    """

    def __init__(self, module: ModuleSource, waivers: WaiverIndex):
        self.module = module
        self.waivers = waivers
        #: ``(lineno, code, message)`` tuples, in visit order
        self.raw_reports: list[tuple[int, str, str]] = []

    def report(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        if not self.waivers.waives(lineno, code):
            self.raw_reports.append((lineno, code, message))


class ScopedSymbols:
    """A stack of lexical scopes mapping names to analysis facts.

    The array interpreter and the RNG dataflow rules both need "what
    does this name mean here" with function-scope granularity; this
    class is the shared implementation (plain chained dicts — the
    passes are intraprocedural, so two levels deep in practice).
    """

    def __init__(self) -> None:
        self._scopes: list[dict[str, object]] = [{}]

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        self._scopes.pop()

    def bind(self, name: str, value: object) -> None:
        self._scopes[-1][name] = value

    def lookup(self, name: str) -> object | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def bound_here(self, name: str) -> bool:
        return name in self._scopes[-1]


# ----------------------------------------------------------------------
# AST helpers shared by the rules
# ----------------------------------------------------------------------

def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``np.random.default_rng``)."""
    return dotted_name(node.func)


def last_attr(name: str) -> str:
    """Final component of a dotted name."""
    return name.rsplit(".", 1)[-1]


def is_set_expression(node: ast.expr) -> bool:
    """Does the expression build an unordered ``set``/``frozenset``?

    Dicts are excluded deliberately: CPython dicts preserve insertion
    order (a language guarantee since 3.7), so iterating one is
    deterministic; only set iteration order depends on hash values and
    therefore on ``PYTHONHASHSEED``.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        # chained construction: set(a) | set(b), set(a).union(b)
        if name is not None and last_attr(name) in ("union", "intersection",
                                                    "difference",
                                                    "symmetric_difference"):
            return is_set_expression(node.func.value) \
                if isinstance(node.func, ast.Attribute) else False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expression(node.left) or is_set_expression(node.right)
    return False


def toplevel_function_names(tree: ast.Module) -> frozenset[str]:
    """Names bound to module-level ``def``/``async def`` statements."""
    return frozenset(
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


def module_level_assignments(tree: ast.Module) -> frozenset[str]:
    """Plain names assigned at module level (the module's globals)."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(
                    e.id for e in target.elts if isinstance(e, ast.Name)
                )
    return frozenset(names)


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Bare names of a function's decorators (call or plain form)."""
    names: list[str] = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name is not None:
            names.append(last_attr(name))
    return names


def iter_functions(tree: ast.Module):  # type: ignore[no-untyped-def]
    """Yield ``(qualname, function_node)`` for every def in the module."""
    stack: list[tuple[ast.AST, str]] = [(tree, "")]
    while stack:
        node, prefix = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                stack.append((child, f"{qualname}.<locals>."))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, f"{prefix}{child.name}."))
            else:
                # other statements can still nest defs (`if`, `with`)
                stack.append((child, prefix))
