"""The unified diagnostic model and stable-code registry.

Every static pass — determinism (``DET0xx``), repository style
(``REPRO00x``), array correctness (``ARR0xx``), hot-loop hygiene
(``PERF0xx``) and the framework's own ``W000`` — emits
:class:`Diagnostic` records carrying a stable code, a severity shared
with the input linter (:class:`repro.lint.diagnostics.Severity`), a
location and an optional witness chain.  :data:`STATIC_CODES` is the
single registry all passes write their vocabulary into; the README
table and the ``repro check --codes`` listing render from it.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.errors import SanitizerError
from repro.lint.diagnostics import Severity

__all__ = [
    "Diagnostic",
    "STATIC_CODES",
    "Severity",
    "StaticCode",
    "StaticReport",
    "register_codes",
]


@dataclasses.dataclass(frozen=True)
class StaticCode:
    """Registry entry for one static-analysis diagnostic code."""

    code: str
    severity: Severity
    title: str
    fix: str
    #: rule family, e.g. ``"determinism"`` or ``"array"``; groups the
    #: documentation tables and the SARIF rule metadata
    domain: str


#: The full static-analysis vocabulary, populated by the rule modules
#: at import time via :func:`register_codes`.
STATIC_CODES: dict[str, StaticCode] = {}


def register_codes(*infos: StaticCode) -> None:
    """Add codes to :data:`STATIC_CODES` (idempotent, clash-checked)."""
    for info in infos:
        existing = STATIC_CODES.get(info.code)
        if existing is not None and existing != info:
            raise SanitizerError(
                f"static code {info.code} registered twice with different "
                f"meanings ({existing.title!r} vs {info.title!r})"
            )
        STATIC_CODES[info.code] = info


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of a static pass.

    ``path`` is the path as scanned (what the user sees), ``relpath``
    the scan-root-relative POSIX path (what baselines key on).
    ``witness`` carries a human-readable evidence chain — a call path
    for reachability rules, a shape derivation for array rules.
    """

    code: str
    severity: Severity
    message: str
    path: str
    line: int
    relpath: str = ""
    symbol: str | None = None
    witness: tuple[str, ...] = ()
    #: the stripped source text of the finding's line — the
    #: position-independent identity ``--baseline`` fingerprints hash,
    #: so pure refactors (moving code around a file) don't churn
    #: baseline files.  Attached by the engine after the passes run.
    context: str = ""

    def format(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        text = (
            f"{self.path}:{self.line}: {self.code} "
            f"{self.severity}:{where} {self.message}"
        )
        if self.witness:
            text += f" ({' -> '.join(self.witness)})"
        return text

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "relpath": self.relpath,
            "line": self.line,
            "symbol": self.symbol,
            "witness": list(self.witness),
            "context": self.context,
        }

    def fingerprint(self) -> str:
        """Stable identity used by ``--baseline`` files.

        Hashes the finding's code context (its stripped source line),
        not its position, so refactors that merely move code don't
        invalidate baselines.  Two identical findings on textually
        identical lines of one file share a fingerprint — acceptable
        for a suppression list.  Falls back to the legacy positional
        form when no context was attached.
        """
        if not self.context:
            return self.legacy_fingerprint()
        digest = hashlib.blake2b(
            self.context.encode("utf-8"), digest_size=8
        ).hexdigest()
        return f"{self.relpath or self.path}:{self.code}:h{digest}"

    def legacy_fingerprint(self) -> str:
        """The pre-context positional identity (path:code:line).

        Still accepted when matching ``--baseline`` files so existing
        baselines keep working; ``--write-baseline`` emits the
        context-hashed form, and the CLI notes when a baseline still
        relies on deprecated positional entries.
        """
        return f"{self.relpath or self.path}:{self.code}:{self.line}"


def diagnostic(
    code: str,
    message: str,
    *,
    path: str,
    line: int,
    relpath: str = "",
    symbol: str | None = None,
    witness: tuple[str, ...] = (),
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the registry."""
    info = STATIC_CODES[code]
    return Diagnostic(
        code=code,
        severity=info.severity if severity is None else severity,
        message=message,
        path=path,
        line=line,
        relpath=relpath,
        symbol=symbol,
        witness=witness,
    )


@dataclasses.dataclass(frozen=True)
class StaticReport:
    """The ordered findings of one ``repro check`` run."""

    findings: tuple[Diagnostic, ...]
    files_scanned: int = 0
    #: findings suppressed by a ``--baseline`` file (still inspectable)
    baselined: tuple[Diagnostic, ...] = ()
    #: modules actually (re-)analysed this run; differs from
    #: ``files_scanned`` when the incremental summary cache served some
    analyzed: int = -1
    #: modules served entirely from the incremental cache
    cached: int = 0
    #: baselined findings matched only via their deprecated positional
    #: fingerprint — the CLI suggests rewriting the baseline when > 0
    baseline_legacy_matches: int = 0

    @property
    def max_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    @property
    def codes(self) -> frozenset[str]:
        return frozenset(f.code for f in self.findings)

    def has(self, code: str) -> bool:
        return any(f.code == code for f in self.findings)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(f for f in self.findings if f.code == code)

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def exit_code(self) -> int:
        """Process exit code mirroring the worst severity (0/1/2)."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 1 if worst is Severity.WARNING else 2

    def _cache_note(self) -> str:
        if self.analyzed < 0:
            return ""
        return f", {self.cached} cached, {self.analyzed} analyzed"

    def summary(self) -> str:
        if not self.findings:
            text = f"clean ({self.files_scanned} files"
            text += self._cache_note()
            if self.baselined:
                text += f", {len(self.baselined)} baselined"
            return text + ")"
        counts = []
        for severity, noun in (
            (Severity.ERROR, "error"),
            (Severity.WARNING, "warning"),
            (Severity.INFO, "info note"),
        ):
            n = sum(1 for f in self.findings if f.severity is severity)
            if n:
                counts.append(f"{n} {noun}{'s' if n != 1 else ''}")
        text = ", ".join(counts) + f" ({self.files_scanned} files"
        text += self._cache_note()
        if self.baselined:
            text += f", {len(self.baselined)} baselined"
        return text + ")"

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(f"static analysis: {self.summary()}")
        return "\n".join(lines)
