"""Repository style rules (``REPRO001-004``) on the shared framework.

Historically these lived as a free-standing AST script in
``tools/check_source.py``, then as ``repro.dsan.repo_rules``; they now
live in the unified static core so every gate parses each file once,
reports through one :class:`~repro.static.model.Diagnostic` model and
grows rules in one place.  The tool remains a thin shim over this
module, and its public surface (:func:`check_module`, :func:`main`) is
unchanged:

``REPRO001``
    No ``except Exception:`` / bare ``except:`` inside ``src/repro`` —
    the package contract is a precise :class:`SemsimError` hierarchy,
    and blanket handlers hide solver bugs as physics.
``REPRO002``
    No raising of bare builtin exceptions — deliberate errors must
    derive from ``SemsimError`` (``NotImplementedError`` on abstract
    hooks is exempt).
``REPRO003``
    No ``==``/``!=`` against non-zero float literals, and none at all
    on identifiers that look like energies or voltages unless the
    other side is a literal ``0``/``0.0`` sentinel.
``REPRO004``
    ``from __future__ import annotations`` in every module.

A violation is waived for one line with a ``# repro: allow[CODE]``
comment (the legacy blanket ``# repro-lint: allow`` form stays
honoured).  Exit status of the CLI: 0 clean, 1 violations, 2 usage/IO
trouble.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

from repro.lint.diagnostics import Severity
from repro.static.model import Diagnostic, StaticCode, diagnostic, register_codes
from repro.static.source import ModuleSource
from repro.static.visitors import RuleVisitor
from repro.static.waivers import WaiverIndex

register_codes(
    StaticCode(
        "REPRO001", Severity.ERROR, "broad exception handler",
        "catch specific SemsimError subclasses (or builtin types you "
        "expect)",
        domain="repository",
    ),
    StaticCode(
        "REPRO002", Severity.ERROR, "raises bare builtin exception",
        "deliberate errors must derive from SemsimError (see "
        "repro.errors)",
        domain="repository",
    ),
    StaticCode(
        "REPRO003", Severity.ERROR, "float literal equality",
        "compare with a tolerance (math.isclose / pytest.approx)",
        domain="repository",
    ),
    StaticCode(
        "REPRO004", Severity.ERROR, "missing __future__ annotations",
        "add 'from __future__ import annotations' at the top of the "
        "module",
        domain="repository",
    ),
)

FORBIDDEN_RAISES = frozenset({
    "ValueError", "TypeError", "RuntimeError", "KeyError", "IndexError",
    "Exception", "BaseException", "OSError", "ArithmeticError",
    "ZeroDivisionError", "AttributeError", "AssertionError",
})

#: identifier fragments that mark a float-physics quantity
PHYSICS_FRAGMENTS = ("energy", "voltage", "delta_w")
PHYSICS_NAMES = frozenset({"dw", "ej", "e_c", "e_j", "bias", "vds", "vgs"})


def _is_zero_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


def _is_physics_name(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    lowered = name.lower()
    return lowered in PHYSICS_NAMES or any(
        fragment in lowered for fragment in PHYSICS_FRAGMENTS
    )


class RepoRules(RuleVisitor):
    """REPRO001-003 in one traversal (REPRO004 is a module-level check)."""

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        if broad:
            self.report(
                node, "REPRO001",
                "broad exception handler; catch specific SemsimError "
                "subclasses (or builtin types you expect)",
            )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in FORBIDDEN_RAISES:
            self.report(
                node, "REPRO002",
                f"raises builtin {name}; deliberate errors must derive "
                "from SemsimError (see repro.errors)",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        eq_ops = [
            op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))
        ]
        if eq_ops:
            for operand in operands:
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                    and operand.value != 0.0
                ):
                    self.report(
                        node, "REPRO003",
                        f"float equality against literal {operand.value!r}; "
                        "compare with a tolerance (math.isclose / "
                        "pytest.approx)",
                    )
            if len(operands) == 2:
                left, right = operands
                for this, other in ((left, right), (right, left)):
                    if _is_physics_name(this) and not _is_zero_literal(other) \
                            and not isinstance(other, ast.Constant):
                        self.report(
                            node, "REPRO003",
                            "float equality on a physics quantity "
                            f"({ast.unparse(this)}); compare with a "
                            "tolerance",
                        )
                        break
        self.generic_visit(node)


def _module_violations(
    module: ModuleSource, windex: WaiverIndex
) -> list[tuple[int, str, str]]:
    checker = RepoRules(module, windex)
    checker.visit(module.tree)
    violations = list(checker.raw_reports)

    has_future = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "__future__"
        and any(alias.name == "annotations" for alias in node.names)
        for node in module.tree.body
    )
    if not has_future and not windex.waives(1, "REPRO004"):
        violations.append((
            1, "REPRO004",
            "missing 'from __future__ import annotations'",
        ))
    return sorted(violations)


def repo_pass(module: ModuleSource, windex: WaiverIndex) -> list[Diagnostic]:
    """Engine entry point: REPRO001-004 as :class:`Diagnostic` records."""
    return [
        diagnostic(
            code,
            message,
            path=str(module.path),
            line=lineno,
            relpath=module.relpath,
        )
        for lineno, code, message in _module_violations(
            module, windex
        )
    ]


def check_module(path: Path) -> list[tuple[int, str, str]]:
    """All rule violations of one source file (legacy tool surface)."""
    module = ModuleSource.parse(Path(path))
    return _module_violations(module, WaiverIndex(module))


def main(argv: list[str] | None = None) -> int:
    """CLI of the repository gate (``tools/check_source.py``)."""
    roots = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not roots:
        roots = [Path(__file__).resolve().parent.parent]

    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            print(f"error: no such file or directory: {root}", file=sys.stderr)
            return 2

    total = 0
    for path in files:
        for lineno, code, message in check_module(path):
            print(f"{path}:{lineno}: {code} {message}")
            total += 1
    if total:
        print(f"{total} violation(s) in {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"{len(files)} file(s) clean")
    return 0
