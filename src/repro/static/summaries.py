"""Interprocedural summary scheduling and the on-disk incremental cache.

This module turns the per-function unit interpreter
(:mod:`repro.static.unitcheck`) into a whole-program analysis:

* the module dependency graph (:meth:`CallGraph.module_sccs`) is
  condensed into strongly connected components and processed
  dependencies-first, so every call site is checked against the
  callee's *final* summary;
* mutually recursive modules (one SCC) iterate
  :func:`~repro.static.unitcheck.infer_summaries` to a fixpoint; if the
  cycle refuses to stabilise within a few sweeps, only the ``@units``
  declarations are trusted and inferred returns degrade to unknown;
* results persist in :class:`StaticCache` — one JSON cell per
  (relpath, content hash), written with the campaign store's atomic
  codec (:func:`repro.ioutil.write_atomic_text`).  A module's units
  cell is keyed by its *SCC state*: a hash over the member contents
  and the states of every dependency SCC, which is exactly the
  transitive-invalidation contract (edit one module → its SCC and all
  dependent SCCs re-key, everything else stays warm).

The engine drives :func:`run_units`; ``--jobs N`` fans independent
SCCs of one wave (same dependency depth) out over a fork pool via
:func:`scc_worker`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.ioutil import write_atomic_text
from repro.static.callgraph import CallGraph
from repro.static.model import Diagnostic, Severity
from repro.static.source import ModuleSource
from repro.static.unitcheck import (
    FunctionSummary,
    SummaryTable,
    analyze_module,
    declared_summaries,
    infer_summaries,
    merge_summary,
    module_unit_facts,
)
from repro.static.waivers import WaiverIndex

__all__ = [
    "ANALYSIS_VERSION",
    "ModuleUnitsResult",
    "StaticCache",
    "UnitsOutcome",
    "cell_id",
    "default_static_cache_root",
    "process_scc",
    "run_units",
    "scc_states",
]

#: Bumped whenever rule semantics change, so stale cells from an older
#: analyzer version read as misses instead of wrong answers.
ANALYSIS_VERSION = "static-2"

#: Summary-cycle sweeps before giving up on convergence.
_MAX_FIXPOINT_SWEEPS = 5


# ----------------------------------------------------------------------
# finding (de)hydration — cells store findings path-free so a cache
# shared between checkouts rehydrates against the local paths
# ----------------------------------------------------------------------

def finding_to_json(finding: Diagnostic) -> dict[str, Any]:
    return {
        "code": finding.code,
        "severity": int(finding.severity),
        "message": finding.message,
        "line": finding.line,
        "symbol": finding.symbol,
        "witness": list(finding.witness),
    }


def finding_from_json(
    payload: dict[str, Any], module: ModuleSource
) -> Diagnostic:
    return Diagnostic(
        code=str(payload["code"]),
        severity=Severity(int(payload["severity"])),
        message=str(payload["message"]),
        path=str(module.path),
        line=int(payload["line"]),
        relpath=module.relpath,
        symbol=(
            None if payload.get("symbol") is None
            else str(payload["symbol"])
        ),
        witness=tuple(str(w) for w in payload.get("witness", ())),
    )


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------

def default_static_cache_root() -> Path:
    """``<repro cache dir>/static`` (honours ``$REPRO_CACHE_DIR``)."""
    from repro.monitor.ledger import repro_cache_dir

    return repro_cache_dir() / "static"


def cell_id(relpath: str, content_hash: str) -> str:
    """Cache-cell name for one module revision.

    Content-addressed, with a short relpath tag mixed in because the
    repository rules are allowed to condition on *where* a file lives
    (``__init__`` conventions, test exemptions) — identical text at
    two paths must not share analysis results.
    """
    tag = hashlib.blake2b(
        relpath.encode("utf-8"), digest_size=4
    ).hexdigest()
    return f"{content_hash}-{tag}"


class StaticCache:
    """One JSON cell per module revision, atomically written.

    A cell holds up to three sub-entries with independent validity:

    ``local``
        repo/arr/perf/num findings — pure functions of the module
        text, valid for the cell's whole lifetime.
    ``det``
        determinism findings, keyed by the scan set's global content
        hash (worker reachability is a whole-program fact).
    ``units``
        unit findings plus the module's function summaries, keyed by
        the SCC state hash (see :func:`scc_states`).

    Every sub-entry also records which waiver linenos it consumed, so
    ``W000`` stale-waiver reporting stays exact on fully cached runs.
    Cache I/O failures are swallowed: a broken cache degrades to a
    cold run, never to a failed one.
    """

    def __init__(self, root: Path):
        self.root = root
        root.mkdir(parents=True, exist_ok=True)

    def _path(self, cell: str) -> Path:
        return self.root / f"{cell}.json"

    def load(self, cell: str) -> dict[str, Any]:
        try:
            payload = json.loads(
                self._path(cell).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("version") != ANALYSIS_VERSION
        ):
            return {}
        return payload

    def update(self, cell: str, **entries: dict[str, Any]) -> None:
        payload = self.load(cell)
        payload["version"] = ANALYSIS_VERSION
        payload.update(entries)
        try:
            write_atomic_text(self._path(cell), json.dumps(payload))
        except OSError:  # pragma: no cover - disk-full etc.
            pass


# ----------------------------------------------------------------------
# SCC states (the units cache key)
# ----------------------------------------------------------------------

def scc_states(
    modules: dict[str, ModuleSource],
    sccs: list[tuple[str, ...]],
    deps: dict[str, set[str]],
) -> dict[str, str]:
    """Per-module units-cache key: hash of the module's SCC.

    ``H(version, member relpaths+contents, dependency SCC states)`` —
    every member of one SCC shares a state, and a content change
    anywhere in the transitive dependency cone changes it.
    """
    state: dict[str, str] = {}
    for members in sccs:
        h = hashlib.blake2b(digest_size=16)
        h.update(ANALYSIS_VERSION.encode("utf-8"))
        for rel in members:  # members arrive sorted
            h.update(rel.encode("utf-8"))
            h.update(modules[rel].content_hash.encode("utf-8"))
        dep_states = {
            state[dep]
            for rel in members
            for dep in deps.get(rel, ())
            if dep not in members
        }
        for dep_state in sorted(dep_states):
            h.update(dep_state.encode("utf-8"))
        digest = h.hexdigest()
        for rel in members:
            state[rel] = digest
    return state


# ----------------------------------------------------------------------
# one SCC: fixpoint + final checking pass
# ----------------------------------------------------------------------

@dataclasses.dataclass
class ModuleUnitsResult:
    """The units phase's output for one module."""

    findings: list[Diagnostic]
    used_waivers: set[int]
    #: this module's own function summaries (``None`` = ambiguous name)
    summaries: dict[str, FunctionSummary | None]


def _merge_into(
    table: SummaryTable,
    summaries: dict[str, FunctionSummary | None],
) -> None:
    for name, summary in summaries.items():
        if summary is None:
            table[name] = None
        else:
            merge_summary(table, name, summary)


def process_scc(
    members: list[ModuleSource], table: SummaryTable
) -> dict[str, ModuleUnitsResult]:
    """Analyse one SCC against the (stable) summaries of its deps.

    Singleton SCCs converge in one sweep plus a confirmation pass;
    genuine cycles iterate until the member summaries stop changing.
    On non-convergence only declared contracts survive — inferred
    return dimensions degrade to unknown, erring silent.
    """
    facts = {m.relpath: module_unit_facts(m) for m in members}
    order = sorted(facts)
    per_mod: dict[str, dict[str, FunctionSummary | None]] = {
        rel: dict(declared_summaries(facts[rel])) for rel in order
    }
    for _ in range(_MAX_FIXPOINT_SWEEPS):
        working: SummaryTable = dict(table)
        for rel in order:
            _merge_into(working, per_mod[rel])
        refreshed = {
            rel: dict(infer_summaries(facts[rel], working))
            for rel in order
        }
        if refreshed == per_mod:
            break
        per_mod = refreshed
    else:  # no fixpoint: trust only what was declared
        for summaries in per_mod.values():
            for name, summary in list(summaries.items()):
                if summary is not None and not summary.declared:
                    summaries[name] = dataclasses.replace(
                        summary, ret=None
                    )

    final: SummaryTable = dict(table)
    for rel in order:
        _merge_into(final, per_mod[rel])
    results: dict[str, ModuleUnitsResult] = {}
    for module in members:
        windex = WaiverIndex(module)
        findings = analyze_module(facts[module.relpath], windex, final)
        results[module.relpath] = ModuleUnitsResult(
            findings=findings,
            used_waivers={w.lineno for w in windex.waivers if w.used},
            summaries=per_mod[module.relpath],
        )
    return results


# ----------------------------------------------------------------------
# pool worker (fork-inherited module set)
# ----------------------------------------------------------------------

#: Set by the engine before the fork pool is created; workers inherit
#: the parsed modules through the fork snapshot instead of pickling.
_POOL_MODULES: dict[str, ModuleSource] = {}


def set_pool_modules(modules: Iterable[ModuleSource]) -> None:
    _POOL_MODULES.clear()
    _POOL_MODULES.update({m.relpath: m for m in modules})


def scc_worker(
    payload: tuple[tuple[str, ...], SummaryTable],
) -> dict[str, ModuleUnitsResult]:
    members, table = payload
    return process_scc([_POOL_MODULES[rel] for rel in members], table)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------

@dataclasses.dataclass
class UnitsOutcome:
    """Everything the units phase produced for one run."""

    findings: dict[str, list[Diagnostic]]
    used_waivers: dict[str, set[int]]
    #: modules whose interpretation actually ran (cache misses)
    reanalyzed: set[str]
    table: SummaryTable


def _load_cached_scc(
    cache: StaticCache,
    members: tuple[str, ...],
    by_rel: dict[str, ModuleSource],
    state: str,
) -> dict[str, ModuleUnitsResult] | None:
    """All members' cached units entries, or ``None`` on any miss."""
    out: dict[str, ModuleUnitsResult] = {}
    for rel in members:
        module = by_rel[rel]
        entry = cache.load(cell_id(rel, module.content_hash)).get("units")
        if not isinstance(entry, dict) or entry.get("key") != state:
            return None
        try:
            out[rel] = ModuleUnitsResult(
                findings=[
                    finding_from_json(p, module)
                    for p in entry["findings"]
                ],
                used_waivers={int(n) for n in entry["used"]},
                summaries={
                    str(name): (
                        None if p is None
                        else FunctionSummary.from_json(p)
                    )
                    for name, p in entry["summaries"].items()
                },
            )
        except (KeyError, TypeError, ValueError):
            return None
    return out


def _store_scc(
    cache: StaticCache,
    result: dict[str, ModuleUnitsResult],
    by_rel: dict[str, ModuleSource],
    state: str,
) -> None:
    for rel, mres in result.items():
        cache.update(
            cell_id(rel, by_rel[rel].content_hash),
            units={
                "key": state,
                "findings": [finding_to_json(f) for f in mres.findings],
                "used": sorted(mres.used_waivers),
                "summaries": {
                    name: (None if s is None else s.to_json())
                    for name, s in sorted(mres.summaries.items())
                },
            },
        )


def _waves(
    sccs: list[tuple[str, ...]], deps: dict[str, set[str]]
) -> list[list[tuple[str, ...]]]:
    """Group SCCs by dependency depth; SCCs of one wave are mutually
    independent and may run in parallel."""
    scc_of: dict[str, int] = {}
    for index, members in enumerate(sccs):
        for rel in members:
            scc_of[rel] = index
    level: list[int] = []
    for index, members in enumerate(sccs):
        depth = 0
        for rel in members:
            for dep in deps.get(rel, ()):
                dep_scc = scc_of[dep]
                if dep_scc != index:
                    depth = max(depth, level[dep_scc] + 1)
        level.append(depth)
    waves: dict[int, list[tuple[str, ...]]] = {}
    for index, members in enumerate(sccs):
        waves.setdefault(level[index], []).append(members)
    return [waves[depth] for depth in sorted(waves)]


def run_units(
    modules: list[ModuleSource],
    graph: CallGraph,
    *,
    cache: StaticCache | None = None,
    executor_factory: Callable[[], Any] | None = None,
) -> UnitsOutcome:
    """The whole-program units phase: summaries in SCC order, then the
    checking pass per module, cached and wave-parallel.

    ``executor_factory`` (lazily) yields a fork-based executor whose
    children inherited :func:`set_pool_modules`; ``None`` (or a
    factory returning ``None``) runs serially.
    """
    by_rel = {m.relpath: m for m in modules}
    deps = graph.module_deps()
    sccs = graph.module_sccs()
    states = scc_states(by_rel, sccs, deps)

    table: SummaryTable = {}
    findings: dict[str, list[Diagnostic]] = {}
    used: dict[str, set[int]] = {}
    reanalyzed: set[str] = set()

    def absorb(result: dict[str, ModuleUnitsResult], live: bool) -> None:
        for rel in sorted(result):
            mres = result[rel]
            findings[rel] = mres.findings
            used[rel] = mres.used_waivers
            _merge_into(table, mres.summaries)
            if live:
                reanalyzed.add(rel)

    for wave in _waves(sccs, deps):
        pending: list[tuple[str, ...]] = []
        for members in wave:
            cached = (
                None if cache is None
                else _load_cached_scc(
                    cache, members, by_rel, states[members[0]]
                )
            )
            if cached is not None:
                absorb(cached, live=False)
            else:
                pending.append(members)
        if not pending:
            continue
        executor = (
            executor_factory()
            if executor_factory is not None and len(pending) > 1
            else None
        )
        if executor is not None:
            snapshot = dict(table)
            results = list(executor.map(
                scc_worker,
                [(members, snapshot) for members in pending],
            ))
        else:
            results = [
                process_scc([by_rel[rel] for rel in members], table)
                for members in pending
            ]
        for members, result in zip(pending, results):
            absorb(result, live=True)
            if cache is not None:
                _store_scc(cache, result, by_rel, states[members[0]])
    return UnitsOutcome(
        findings=findings,
        used_waivers=used,
        reanalyzed=reanalyzed,
        table=table,
    )
