"""Random SET device families for the differential fuzzer.

Each family is a :class:`~repro.gen.spaces.ParamSpace` plus a pure
builder ``params -> SemsimDeck``: *all* randomness happens in the one
``ParamSpace.draw`` call, so a case is a deterministic function of
``(root seed, case index)`` and the property tests can audit every
drawn value against its declared bounds.  The rendered deck text (full
``repr`` precision, so parsing it back gives bit-identical floats) is
the case's canonical form — replaying a reproducer deck re-runs the
exact circuit the fuzzer saw.

Families
--------
``set``
    A (possibly strongly asymmetric) metallic SET transistor:
    two junctions, one gate capacitor, background charge, symmetric
    source-drain sweep.  The ``degenerate`` capacitance regime forces
    ``c2 = c1 (1 + eps)`` with ``eps`` down to 1e-9 — the
    near-degenerate edge that historically breaks charging-energy
    bookkeeping.
``series_array``
    An N-junction (N in 2..4) series array with per-junction parameter
    dispersion, stray capacitances from every internal island to
    ground, optional common gate, and per-island background charges —
    the Matsuoka/Likharev-style multi-island device the paper's
    hand-picked examples never cover.
``trap``
    An SET whose island couples through a third, slower junction to a
    single-electron trap island with its own gate: current through the
    transport junctions is modulated by the trap occupation, which
    probes long-timescale ergodicity of the MC solvers against the
    exact master equation.

Parameter regimes are chosen so generated decks pass ``repro lint``
strict by construction (R_T well above R_K, charging energy well above
k_B T, sweeps that actually cross the blockade threshold); a deck that
does not is recorded by the differential driver as a *generator bug*,
never silently skipped.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.constants import E_CHARGE, K_B
from repro.errors import GeneratorError
from repro.gen.spaces import (
    Choice,
    IntRange,
    LogUniform,
    ParamSpace,
    Uniform,
    Value,
)
from repro.netlist.semsim import RecordSpec, SemsimDeck, SweepSpec, parse_semsim
from repro.netlist.writer import write_semsim
from repro.parallel.seeds import spawn_seed_at

if TYPE_CHECKING:
    from repro.logic.netlist import LogicNetlist

__all__ = [
    "CIRCUIT_FAMILIES",
    "DEFAULT_FAMILIES",
    "FAMILY_SPACES",
    "GeneratedCase",
    "build_case",
    "case_name",
    "generate_case",
]

# maximum junction count any family emits; per-junction jitter columns
# are always drawn for all slots so the stream layout never depends on
# an earlier draw
_MAX_JUNCTIONS = 4

_SET_SPACE = ParamSpace(
    {
        "r1": LogUniform(2.0e5, 5.0e6),
        "r2": LogUniform(2.0e5, 5.0e6),
        "c1": LogUniform(4.0e-19, 2.5e-18),
        "c2": LogUniform(4.0e-19, 2.5e-18),
        "cap_regime": Choice(("free", "degenerate"), weights=(3.0, 1.0)),
        "degeneracy_eps": LogUniform(1.0e-9, 1.0e-6),
        "cg_frac": LogUniform(0.1, 0.6),
        "q0": Uniform(-0.45, 0.45),
        "vg_frac": Uniform(0.0, 1.0),
        "t_ratio": LogUniform(10.0, 50.0),
        "vmax_frac": Uniform(0.5, 1.6),
        "points": IntRange(3, 5),
        "jumps": IntRange(1600, 2600),
    }
)

_ARRAY_SPACE = ParamSpace(
    {
        "n_junctions": IntRange(2, _MAX_JUNCTIONS),
        "r_base": LogUniform(2.0e5, 4.0e6),
        "r_spread": Uniform(0.0, 0.8),
        "c_base": LogUniform(5.0e-19, 2.0e-18),
        "c_spread": Uniform(0.0, 0.6),
        "r_jitter_1": Uniform(-1.0, 1.0),
        "r_jitter_2": Uniform(-1.0, 1.0),
        "r_jitter_3": Uniform(-1.0, 1.0),
        "r_jitter_4": Uniform(-1.0, 1.0),
        "c_jitter_1": Uniform(-1.0, 1.0),
        "c_jitter_2": Uniform(-1.0, 1.0),
        "c_jitter_3": Uniform(-1.0, 1.0),
        "c_jitter_4": Uniform(-1.0, 1.0),
        "stray_frac": LogUniform(0.05, 0.4),
        "gated": Choice((0, 1)),
        "gate_frac": LogUniform(0.05, 0.3),
        "vg_frac": Uniform(0.0, 1.0),
        "q_1": Uniform(-0.45, 0.45),
        "q_2": Uniform(-0.45, 0.45),
        "q_3": Uniform(-0.45, 0.45),
        "t_ratio": LogUniform(10.0, 40.0),
        "vmax_frac": Uniform(0.4, 1.5),
        "points": IntRange(3, 4),
        "jumps": IntRange(1600, 2600),
    }
)

_TRAP_SPACE = ParamSpace(
    {
        "r1": LogUniform(2.0e5, 4.0e6),
        "r2": LogUniform(2.0e5, 4.0e6),
        "c1": LogUniform(4.0e-19, 1.5e-18),
        "c2": LogUniform(4.0e-19, 1.5e-18),
        # the trap junction is 1-2 decades slower than transport, so
        # trap occupation still flips many times within the MC budget
        "r_trap": LogUniform(2.0e6, 2.0e7),
        "c_trap": LogUniform(2.0e-19, 1.0e-18),
        "cg_frac": LogUniform(0.1, 0.5),
        "ctg_frac": LogUniform(0.1, 0.5),
        "stray_frac": LogUniform(0.05, 0.4),
        "q_island": Uniform(-0.45, 0.45),
        "q_trap": Uniform(-0.45, 0.45),
        "vg_frac": Uniform(0.0, 1.0),
        "vtg_frac": Uniform(0.0, 1.0),
        "t_ratio": LogUniform(10.0, 40.0),
        "vmax_frac": Uniform(0.5, 1.6),
        "points": IntRange(3, 4),
        "jumps": IntRange(1800, 2800),
    }
)

#: declared parameter space per circuit family
FAMILY_SPACES: dict[str, ParamSpace] = {
    "set": _SET_SPACE,
    "series_array": _ARRAY_SPACE,
    "trap": _TRAP_SPACE,
}


@dataclasses.dataclass(frozen=True)
class GeneratedCase:
    """One fuzz case: family + drawn parameters + rendered artifact.

    ``deck_text`` is the canonical form: the builders render every
    float with ``repr`` so ``parse_semsim(deck_text)`` reconstructs
    the identical deck.  ``derived`` records quantities computed *from*
    the params (charging energy, sweep amplitude, ...) purely for the
    reproducer record — they are never drawn.
    """

    name: str
    family: str
    index: int
    root_seed: int
    params: Mapping[str, Value]
    derived: Mapping[str, float]
    deck_text: str

    @property
    def seed_key(self) -> tuple[int, ...]:
        """SeedSequence spawn-key coordinate of this case."""
        return (self.index,)

    def deck(self) -> SemsimDeck:
        """Parse the canonical deck text back into a deck."""
        if self.family == "logic":
            raise GeneratorError(
                f"{self.name}: logic cases carry a netlist, not a deck"
            )
        return parse_semsim(self.deck_text)

    def netlist(self) -> "LogicNetlist":
        """Parse the canonical netlist text (``logic`` family only)."""
        if self.family != "logic":
            raise GeneratorError(
                f"{self.name}: {self.family!r} cases carry a deck, "
                "not a netlist"
            )
        from repro.netlist.logic_text import parse_logic

        return parse_logic(self.deck_text)


def case_name(root_seed: int, index: int, family: str) -> str:
    return f"fuzz-s{root_seed}-i{index:05d}-{family}"


def _sweep_for(
    vmax_total: float, points: int
) -> tuple[SweepSpec, RecordSpec]:
    """A symmetric sweep of ``points`` bias values on node 2.

    ``SweepSpec.values`` reconstructs the point count as
    ``round(2 max / step) + 1``, so ``step = 2 max / (points - 1)``
    round-trips exactly.
    """
    maximum = vmax_total / 2.0
    step = 2.0 * maximum / (points - 1)
    return SweepSpec("2", maximum, step), RecordSpec(1, 2, 2)


def _build_set(params: Mapping[str, Value]) -> tuple[SemsimDeck, dict[str, float]]:
    r1 = float(params["r1"])
    r2 = float(params["r2"])
    c1 = float(params["c1"])
    if params["cap_regime"] == "degenerate":
        c2 = c1 * (1.0 + float(params["degeneracy_eps"]))
    else:
        c2 = float(params["c2"])
    cg = float(params["cg_frac"]) * (c1 + c2)
    c_sum = c1 + c2 + cg
    e_c = E_CHARGE**2 / (2.0 * c_sum)
    temperature = e_c / (K_B * float(params["t_ratio"]))
    vg = float(params["vg_frac"]) * E_CHARGE / cg
    vmax_total = float(params["vmax_frac"]) * E_CHARGE / c_sum
    sweep, record = _sweep_for(vmax_total, int(params["points"]))
    deck = SemsimDeck(
        junctions=[
            ("1", "1", "4", 1.0 / r1, c1),
            ("2", "2", "4", 1.0 / r2, c2),
        ],
        capacitors=[("3", "4", cg)],
        charges=[("4", float(params["q0"]))],
        sources=[("1", -sweep.maximum), ("2", sweep.maximum), ("3", vg)],
        symmetric_node="1",
        temperature=temperature,
        record=record,
        jumps=int(params["jumps"]),
        sweep=sweep,
    )
    derived = {
        "c2_effective": c2,
        "charging_energy_j": e_c,
        "temperature_k": temperature,
        "gate_voltage_v": vg,
        "vmax_total_v": vmax_total,
    }
    return deck, derived


def _build_series_array(
    params: Mapping[str, Value],
) -> tuple[SemsimDeck, dict[str, float]]:
    n = int(params["n_junctions"])
    r_spread = float(params["r_spread"])
    c_spread = float(params["c_spread"])
    resistances = [
        float(params["r_base"])
        * math.exp(r_spread * float(params[f"r_jitter_{i}"]))
        for i in range(1, n + 1)
    ]
    capacitances = [
        float(params["c_base"])
        * math.exp(c_spread * float(params[f"c_jitter_{i}"]))
        for i in range(1, n + 1)
    ]
    # nodes: leads "1"/"2", islands "11".."13" between junctions,
    # common gate "3" when gated
    islands = [f"1{i}" for i in range(1, n)]
    chain = ["1", *islands, "2"]
    junctions = [
        (str(i + 1), chain[i], chain[i + 1], 1.0 / resistances[i], capacitances[i])
        for i in range(n)
    ]
    c_stray = float(params["stray_frac"]) * float(params["c_base"])
    capacitors = [(island, "0", c_stray) for island in islands]
    gated = int(params["gated"]) == 1
    c_gate = float(params["gate_frac"]) * float(params["c_base"])
    if gated:
        capacitors.extend(("3", island, c_gate) for island in islands)
    charges = [
        (island, float(params[f"q_{i}"]))
        for i, island in enumerate(islands, start=1)
    ]
    # island charging scale from a typical internal island's total cap
    c_island = (
        capacitances[0] + capacitances[1] + c_stray + (c_gate if gated else 0.0)
    )
    e_c = E_CHARGE**2 / (2.0 * c_island)
    temperature = e_c / (K_B * float(params["t_ratio"]))
    # blockade threshold grows with junction count; aim the sweep there
    vmax_total = (
        float(params["vmax_frac"]) * n * E_CHARGE / (2.0 * c_island)
    )
    sweep, _ = _sweep_for(vmax_total, int(params["points"]))
    record = RecordSpec(1, n, 2)
    sources = [("1", -sweep.maximum), ("2", sweep.maximum)]
    if gated:
        vg = float(params["vg_frac"]) * E_CHARGE / (c_gate * len(islands))
        sources.append(("3", vg))
    else:
        vg = 0.0
    deck = SemsimDeck(
        junctions=junctions,
        capacitors=capacitors,
        charges=charges,
        sources=sources,
        symmetric_node="1",
        temperature=temperature,
        record=record,
        jumps=int(params["jumps"]),
        sweep=sweep,
    )
    derived = {
        "charging_energy_j": e_c,
        "temperature_k": temperature,
        "gate_voltage_v": vg,
        "vmax_total_v": vmax_total,
        "stray_capacitance_f": c_stray,
    }
    return deck, derived


def _build_trap(params: Mapping[str, Value]) -> tuple[SemsimDeck, dict[str, float]]:
    r1 = float(params["r1"])
    r2 = float(params["r2"])
    c1 = float(params["c1"])
    c2 = float(params["c2"])
    r_trap = float(params["r_trap"])
    c_trap = float(params["c_trap"])
    cg = float(params["cg_frac"]) * (c1 + c2)
    ctg = float(params["ctg_frac"]) * c_trap
    c_stray = float(params["stray_frac"]) * c_trap
    # nodes: 1 source lead, 2 drain lead, 3 gate, 4 SET island,
    # 5 trap island, 6 trap gate
    c_sum_island = c1 + c2 + cg + c_trap
    e_c = E_CHARGE**2 / (2.0 * c_sum_island)
    temperature = e_c / (K_B * float(params["t_ratio"]))
    vg = float(params["vg_frac"]) * E_CHARGE / cg
    vtg = float(params["vtg_frac"]) * E_CHARGE / ctg
    vmax_total = float(params["vmax_frac"]) * E_CHARGE / c_sum_island
    sweep, record = _sweep_for(vmax_total, int(params["points"]))
    deck = SemsimDeck(
        junctions=[
            ("1", "1", "4", 1.0 / r1, c1),
            ("2", "2", "4", 1.0 / r2, c2),
            ("3", "4", "5", 1.0 / r_trap, c_trap),
        ],
        capacitors=[("3", "4", cg), ("6", "5", ctg), ("5", "0", c_stray)],
        charges=[("4", float(params["q_island"])), ("5", float(params["q_trap"]))],
        sources=[
            ("1", -sweep.maximum),
            ("2", sweep.maximum),
            ("3", vg),
            ("6", vtg),
        ],
        symmetric_node="1",
        temperature=temperature,
        record=record,  # transport junctions only; the trap junction
        jumps=int(params["jumps"]),  # carries no steady-state current
        sweep=sweep,
    )
    derived = {
        "charging_energy_j": e_c,
        "temperature_k": temperature,
        "gate_voltage_v": vg,
        "trap_gate_voltage_v": vtg,
        "vmax_total_v": vmax_total,
    }
    return deck, derived


_Builder = Callable[[Mapping[str, Value]], "tuple[SemsimDeck, dict[str, float]]"]

#: builder per circuit family (logic netlists live in repro.gen.netlists)
CIRCUIT_FAMILIES: dict[str, _Builder] = {
    "set": _build_set,
    "series_array": _build_series_array,
    "trap": _build_trap,
}


def build_case(
    family: str, params: Mapping[str, Value], *, root_seed: int, index: int
) -> GeneratedCase:
    """Build a case from explicit parameters (no randomness).

    The shrinker uses this to re-render a case after rounding params;
    the fuzzer calls it with a freshly drawn vector.
    """
    try:
        builder = CIRCUIT_FAMILIES[family]
    except KeyError:
        raise GeneratorError(
            f"unknown circuit family {family!r}; "
            f"known: {sorted(CIRCUIT_FAMILIES)}"
        ) from None
    deck, derived = builder(params)
    return GeneratedCase(
        name=case_name(root_seed, index, family),
        family=family,
        index=index,
        root_seed=root_seed,
        params=dict(params),
        derived=derived,
        deck_text=write_semsim(deck, precise=True),
    )


#: every family the fuzzer draws from by default
DEFAULT_FAMILIES: tuple[str, ...] = ("set", "series_array", "trap", "logic")


def generate_case(
    root_seed: int,
    index: int,
    families: tuple[str, ...] = DEFAULT_FAMILIES,
) -> GeneratedCase:
    """Draw case ``index`` of the campaign rooted at ``root_seed``.

    Each case gets its own spawned ``SeedSequence`` at coordinate
    ``(index,)``, so the case set is independent of generation order
    and of how many cases the campaign requests.
    """
    from repro.gen.netlists import draw_logic_case

    for family in families:
        if family != "logic" and family not in FAMILY_SPACES:
            raise GeneratorError(
                f"unknown circuit family {family!r}; "
                f"known: {sorted([*FAMILY_SPACES, 'logic'])}"
            )
    rng = np.random.default_rng(spawn_seed_at(root_seed, (index,)))
    family = str(Choice(tuple(families)).draw(rng))
    if family == "logic":
        return draw_logic_case(rng, root_seed=root_seed, index=index)
    params = FAMILY_SPACES[family].draw(rng)
    return build_case(family, params, root_seed=root_seed, index=index)
