"""The differential fuzzing campaign: generate, cross-check, shrink.

:func:`run_fuzz` is what ``repro fuzz run`` drives: it draws
``budget`` cases from the device/logic families
(:func:`repro.gen.circuits.generate_case`), executes each case's full
differential check as one shard through
:func:`repro.parallel.pool.execute_shards` — inline at ``jobs=1``,
across a retrying process pool otherwise, with whole verdicts cached
content-addressed in a :class:`repro.campaign.CampaignStore` — and
greedily shrinks the first failures to minimal reproducer decks.

Determinism contract: the case set is a pure function of
``(seed, budget, families)`` (each case has its own spawned
``SeedSequence`` at coordinate ``(index,)``), every verdict is a pure
function of its case plus the replica/tolerance/bug settings, results
come back in shard order, and shrinking happens in the parent in case
order — so the whole report is bit-identical for any ``jobs``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import GeneratorError
from repro.gen.circuits import DEFAULT_FAMILIES, GeneratedCase, generate_case
from repro.gen.corpus import write_case
from repro.gen.differential import CaseVerdict, Tolerance, run_case
from repro.gen.shrink import ShrinkResult, shrink_case
from repro.parallel.pool import execute_shards

if TYPE_CHECKING:
    from repro.campaign.store import CampaignStore
    from repro.recovery.policy import ExecutionPolicy

__all__ = [
    "FuzzConfig",
    "FuzzReport",
    "generate_cases",
    "run_fuzz",
    "write_artifacts",
]

#: bump when the generator's families/spaces change incompatibly —
#: part of the campaign-cache workload fingerprint, so stale verdicts
#: can never be replayed against a newer generator
GEN_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class FuzzConfig:
    """One campaign's full identity."""

    seed: int = 0
    budget: int = 25
    families: tuple[str, ...] = DEFAULT_FAMILIES
    replicas: int = 3
    tolerance: Tolerance = dataclasses.field(default_factory=Tolerance)
    #: seeded-bug fixture (test/CI only); ``None`` fuzzes honest code
    bug: str | None = None
    #: how many failures (in case order) to shrink
    shrink: int = 1
    shrink_evaluations: int = 40

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise GeneratorError(f"budget must be >= 1, got {self.budget}")
        if not self.families:
            raise GeneratorError("families must not be empty")


@dataclasses.dataclass(frozen=True)
class _FuzzPayload:
    """One shard: a case plus the settings its verdict depends on.

    The payload *is* the cache identity — its pickle is content-hashed
    by the campaign layer, so a verdict is reused exactly when the
    case text, replicas, tolerance and bug fixture all match.
    """

    case: GeneratedCase
    replicas: int
    tolerance: Tolerance
    bug: str | None


def _fuzz_worker(payload: _FuzzPayload) -> CaseVerdict:
    """Run one case's differential check (module-level: pool-picklable)."""
    return run_case(
        payload.case,
        replicas=payload.replicas,
        tolerance=payload.tolerance,
        bug=payload.bug,
    )


def generate_cases(config: FuzzConfig) -> list[GeneratedCase]:
    """The campaign's case set, in case-index order."""
    return [
        generate_case(config.seed, index, config.families)
        for index in range(config.budget)
    ]


@dataclasses.dataclass
class FuzzReport:
    """Everything one campaign produced."""

    config: FuzzConfig
    cases: list[GeneratedCase]
    verdicts: list[CaseVerdict]
    shrinks: list[ShrinkResult]
    cache_hits: int = 0

    @property
    def counts(self) -> dict[str, int]:
        out = {"pass": 0, "mismatch": 0, "generator-bug": 0}
        for verdict in self.verdicts:
            out[verdict.kind] = out.get(verdict.kind, 0) + 1
        return out

    @property
    def failures(self) -> list[CaseVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        counts = self.counts
        by_family: dict[str, int] = {}
        for case in self.cases:
            by_family[case.family] = by_family.get(case.family, 0) + 1
        lines = [
            f"fuzz campaign: seed={self.config.seed} "
            f"budget={self.config.budget} replicas={self.config.replicas}"
            + (f" bug={self.config.bug}" if self.config.bug else ""),
            "families: "
            + ", ".join(f"{k}={v}" for k, v in sorted(by_family.items())),
            f"verdicts: {counts['pass']} pass, {counts['mismatch']} mismatch, "
            f"{counts['generator-bug']} generator-bug"
            + (f" ({self.cache_hits} cached)" if self.cache_hits else ""),
        ]
        for verdict in self.failures:
            worst = ""
            for comparison in verdict.comparisons:
                for check in comparison.failures[:1]:
                    worst = (
                        f" [{comparison.subject} vs {comparison.reference} "
                        f"@V={check.voltage:.4g}: {check.observed:.3e} vs "
                        f"{check.reference:.3e}, budget {check.budget:.3e}]"
                    )
                    break
                if worst:
                    break
            findings = (
                f" lint: {'; '.join(verdict.lint_findings)}"
                if verdict.lint_findings
                else ""
            )
            lines.append(f"  FAIL {verdict.name}: {verdict.kind}{worst}{findings}")
        for result in self.shrinks:
            lines.append(
                f"  shrunk {result.original.name} -> {result.case.name} "
                f"in {result.evaluations} evaluations: "
                + (", ".join(result.steps) if result.steps else "(irreducible)")
            )
        return "\n".join(lines)


def _workload_fingerprint(config: FuzzConfig) -> str:
    """Campaign-cache workload identity: the generator schema.

    Per-case identity (deck text, replicas, tolerance, bug) lives in
    each shard's content-hashed payload, so the workload fingerprint
    only needs to fence off incompatible generator versions.
    """
    text = f"repro.gen.fuzz\nschema={GEN_SCHEMA_VERSION}"
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def run_fuzz(
    config: FuzzConfig,
    *,
    jobs: int | None = 1,
    policy: "ExecutionPolicy | None" = None,
    campaign: "CampaignStore | str | Path | None" = None,
) -> FuzzReport:
    """Execute one differential fuzzing campaign (see module docstring)."""
    cases = generate_cases(config)
    payloads = [
        _FuzzPayload(case, config.replicas, config.tolerance, config.bug)
        for case in cases
    ]
    cache = None
    if campaign is not None:
        from repro.campaign.store import CampaignStore
        from repro.monitor.ledger import _detect_code_version

        store = (
            campaign
            if isinstance(campaign, CampaignStore)
            else CampaignStore(Path(campaign))
        )
        cache = store.bind(
            _workload_fingerprint(config),
            code_version=_detect_code_version(),
            label="repro.gen.fuzz",
        )
        cache.workload.describe(
            {"kind": "fuzz", "generator_schema": GEN_SCHEMA_VERSION}
        )
    hits = 0
    if cache is not None:
        # count warm cells before the run: afterwards everything is one
        probe = cache.begin(_fuzz_worker, payloads)
        hits = sum(1 for h in probe.hits() if h is not None)
    verdicts = execute_shards(
        _fuzz_worker, payloads, jobs=jobs, policy=policy, cache=cache
    )
    shrinks: list[ShrinkResult] = []
    for case, verdict in zip(cases, verdicts):
        if verdict.ok or len(shrinks) >= config.shrink:
            continue

        def still_fails(candidate: GeneratedCase) -> bool:
            return not run_case(
                candidate,
                replicas=config.replicas,
                tolerance=config.tolerance,
                bug=config.bug,
            ).ok

        shrinks.append(
            shrink_case(
                case, still_fails, max_evaluations=config.shrink_evaluations
            )
        )
    return FuzzReport(
        config=config,
        cases=cases,
        verdicts=list(verdicts),
        shrinks=shrinks,
        cache_hits=hits,
    )


def write_artifacts(report: FuzzReport, out: Path | str) -> Path:
    """Write a campaign's failure corpus + summary under ``out``.

    Every failing case becomes a corpus entry (the shrunk reproducer
    when one was produced, re-checked so its pinned record matches its
    own deck), and ``report.json`` summarises the whole campaign.
    Returns the output directory.
    """
    root = Path(out)
    root.mkdir(parents=True, exist_ok=True)
    shrunk_by_name = {r.original.name: r for r in report.shrinks}
    for case, verdict in zip(report.cases, report.verdicts):
        if verdict.ok:
            continue
        steps: tuple[str, ...] = ()
        entry_case, entry_verdict = case, verdict
        result = shrunk_by_name.get(case.name)
        if result is not None and result.changed:
            entry_case = result.case
            steps = result.steps
            entry_verdict = run_case(
                entry_case,
                replicas=report.config.replicas,
                tolerance=report.config.tolerance,
                bug=report.config.bug,
            )
        write_case(
            root / "corpus",
            entry_case,
            entry_verdict,
            replicas=report.config.replicas,
            tolerance=report.config.tolerance,
            bug=report.config.bug,
            shrink_steps=steps,
        )
    summary = {
        "seed": report.config.seed,
        "budget": report.config.budget,
        "families": list(report.config.families),
        "replicas": report.config.replicas,
        "bug": report.config.bug,
        "counts": report.counts,
        "cache_hits": report.cache_hits,
        "failures": [v.name for v in report.failures],
        "shrinks": {
            r.original.name: {
                "steps": list(r.steps),
                "evaluations": r.evaluations,
            }
            for r in report.shrinks
        },
    }
    (root / "report.json").write_text(json.dumps(summary, indent=2) + "\n")
    return root
