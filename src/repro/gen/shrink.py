"""Greedy deterministic failure shrinking.

When the differential driver flags a case, the raw circuit is rarely
the story — a 4-junction gated array with per-island charges fails for
the same reason as some 2-junction core of it.  :func:`shrink_case`
walks a fixed candidate order (drop a junction, drop a capacitor, drop
a charge, flatten the sweep, cut the jump budget, round every value to
two significant digits), keeps any candidate that is still well-formed
**and still fails the original oracle**, and restarts from the smaller
case until no candidate helps or the evaluation budget runs out.

Everything is deterministic: candidates are enumerated in a fixed
order from the deck's own component lists, and the predicate re-runs
the same seeded differential check — so the same failure always
shrinks to the same reproducer, which is what makes the shrunk deck
worth pinning in the golden corpus.

Logic cases shrink structurally instead: prune output gates (while at
least one output remains) and unused primary inputs.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Callable, Iterator

from repro.gen.circuits import GeneratedCase
from repro.lint import lint_deck, lint_logic_netlist
from repro.logic.netlist import LogicNetlist
from repro.netlist.logic_text import parse_logic, write_logic
from repro.netlist.semsim import RecordSpec, SemsimDeck, parse_semsim
from repro.netlist.writer import write_semsim

__all__ = ["ShrinkResult", "shrink_case"]

#: an always-safe floor for the MC budget: far above the warm-up
#: truncation guard, low enough to make reproducer decks fast
_MIN_JUMPS = 800


@dataclasses.dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    case: GeneratedCase
    original: GeneratedCase
    steps: tuple[str, ...]
    evaluations: int

    @property
    def changed(self) -> bool:
        return bool(self.steps)


def _round_sig(value: float, digits: int = 2) -> float:
    if value == 0.0:
        return 0.0
    return float(f"%.{digits}g" % value)


def _renumber(deck: SemsimDeck) -> SemsimDeck:
    """Rename junctions to ``1..n`` and span the record over all of
    them, so a deck with a dropped junction stays self-consistent."""
    deck.junctions = [
        (str(i + 1), a, b, g, c)
        for i, (_, a, b, g, c) in enumerate(deck.junctions)
    ]
    deck.record = RecordSpec(1, len(deck.junctions), 2)
    return deck


def _deck_candidates(deck: SemsimDeck) -> Iterator[tuple[str, SemsimDeck]]:
    """Smaller decks in decreasing order of expected payoff."""
    for i, junction in enumerate(deck.junctions):
        if len(deck.junctions) <= 1:
            break
        smaller = copy.deepcopy(deck)
        del smaller.junctions[i]
        yield f"drop junction {junction[0]}", _renumber(smaller)
    for i, (a, b, _) in enumerate(deck.capacitors):
        smaller = copy.deepcopy(deck)
        del smaller.capacitors[i]
        yield f"drop capacitor {a}-{b}", smaller
    for i, (node, q) in enumerate(deck.charges):
        if q == 0.0:
            continue
        smaller = copy.deepcopy(deck)
        del smaller.charges[i]
        yield f"drop charge on {node}", smaller
    if deck.superconductor is not None:
        smaller = copy.deepcopy(deck)
        smaller.superconductor = None
        yield "drop superconductor", smaller
    if deck.cotunnel:
        smaller = copy.deepcopy(deck)
        smaller.cotunnel = False
        yield "drop cotunneling", smaller
    if deck.sweep is not None and deck.sweep.step < deck.sweep.maximum:
        smaller = copy.deepcopy(deck)
        assert smaller.sweep is not None
        smaller.sweep.step = smaller.sweep.maximum
        yield "flatten sweep to 3 points", smaller
    if deck.jumps > 2 * _MIN_JUMPS:
        smaller = copy.deepcopy(deck)
        smaller.jumps = deck.jumps // 2
        yield f"halve jumps to {deck.jumps // 2}", smaller
    rounded = copy.deepcopy(deck)
    rounded.junctions = [
        (n, a, b, _round_sig(g), _round_sig(c))
        for n, a, b, g, c in rounded.junctions
    ]
    rounded.capacitors = [
        (a, b, _round_sig(c)) for a, b, c in rounded.capacitors
    ]
    rounded.charges = [(n, _round_sig(q)) for n, q in rounded.charges]
    rounded.sources = [(n, _round_sig(v)) for n, v in rounded.sources]
    rounded.temperature = _round_sig(rounded.temperature)
    if rounded.sweep is not None:
        rounded.sweep.maximum = _round_sig(rounded.sweep.maximum)
        rounded.sweep.step = _round_sig(rounded.sweep.step)
    if write_semsim(rounded, precise=True) != write_semsim(deck, precise=True):
        yield "round values to 2 significant digits", rounded


def _netlist_candidates(
    netlist: LogicNetlist,
) -> Iterator[tuple[str, LogicNetlist]]:
    consumed = {net for g in netlist.gates for net in g.inputs}
    for gate in netlist.gates:
        if gate.output in consumed or len(netlist.outputs) <= 1:
            continue
        yield (
            f"drop output gate {gate.name}",
            LogicNetlist(
                netlist.name,
                netlist.inputs,
                [o for o in netlist.outputs if o != gate.output],
                [g for g in netlist.gates if g is not gate],
            ),
        )
    for name in netlist.inputs:
        if name in consumed or len(netlist.inputs) <= 1:
            continue
        yield (
            f"drop unused input {name}",
            LogicNetlist(
                netlist.name,
                [i for i in netlist.inputs if i != name],
                netlist.outputs,
                list(netlist.gates),
            ),
        )


def _device_text_candidates(text: str) -> Iterator[tuple[str, str]]:
    for label, deck in _deck_candidates(parse_semsim(text)):
        try:
            rendered = write_semsim(deck, precise=True)
            reparsed = parse_semsim(rendered)
            reparsed.build_circuit()
            if lint_deck(reparsed).errors:
                continue
        except Exception:  # repro: allow[REPRO001]
            continue  # a malformed candidate is just not a candidate
        yield label, rendered


def _logic_text_candidates(text: str) -> Iterator[tuple[str, str]]:
    for label, netlist in _netlist_candidates(parse_logic(text)):
        try:
            rendered = write_logic(netlist)
            if lint_logic_netlist(parse_logic(rendered)).errors:
                continue
        except Exception:  # repro: allow[REPRO001]
            continue  # as above: malformed means not a candidate
        yield label, rendered


def shrink_case(
    case: GeneratedCase,
    predicate: Callable[[GeneratedCase], bool],
    *,
    max_evaluations: int = 150,
) -> ShrinkResult:
    """Greedily minimise ``case`` while ``predicate`` keeps holding.

    ``predicate`` receives a candidate case and returns ``True`` when
    the candidate still exhibits the original failure (the caller
    typically re-runs :func:`repro.gen.differential.run_case` with the
    same replicas/tolerance/bug).  The original case is returned
    untouched in :attr:`ShrinkResult.original`; the shrunk case keeps
    the original's params/derived record for provenance — its
    ``deck_text`` is the minimised artifact.
    """
    current = case
    steps: list[str] = []
    evaluations = 0
    candidates = (
        _logic_text_candidates
        if case.family == "logic"
        else _device_text_candidates
    )
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for label, text in candidates(current.deck_text):
            if evaluations >= max_evaluations:
                break
            candidate = dataclasses.replace(current, deck_text=text)
            evaluations += 1
            if predicate(candidate):
                current = candidate
                steps.append(label)
                improved = True
                break  # restart enumeration from the smaller case
    if steps:
        current = dataclasses.replace(current, name=f"{case.name}.shrunk")
    return ShrinkResult(
        case=current,
        original=case,
        steps=tuple(steps),
        evaluations=evaluations,
    )
