"""Bounded parameter distributions for the scenario generator.

Every knob a device family randomises is declared as a
:class:`Distribution` with explicit bounds, collected into a
:class:`ParamSpace`.  Declaring the space (instead of sprinkling
``rng.uniform`` calls through the builders) buys three things:

* the property tests can assert that **every** draw respects its
  configured bounds (a drifting distribution is a generator bug);
* a case's parameters are a plain ``{name: value}`` dict, so the
  reproducer record pins exactly what was drawn;
* all randomness flows through one ``numpy.random.Generator`` seeded
  by ``SeedSequence`` spawning, keeping the determinism sanitizer's
  RNG-provenance rules satisfied.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping, Union

import numpy as np

from repro.errors import GeneratorError

#: the value type a distribution draws
Value = Union[float, int, str]


@dataclasses.dataclass(frozen=True)
class Uniform:
    """A float drawn uniformly from ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low <= self.high):
            raise GeneratorError(f"Uniform needs low <= high, got {self}")

    def draw(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def contains(self, value: Value) -> bool:
        return (
            isinstance(value, (int, float))
            and self.low <= float(value) <= self.high
        )


@dataclasses.dataclass(frozen=True)
class LogUniform:
    """A positive float drawn log-uniformly from ``[low, high]``.

    The natural distribution for resistances and capacitances, whose
    interesting regimes span decades.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0.0 < self.low <= self.high):
            raise GeneratorError(
                f"LogUniform needs 0 < low <= high, got {self}"
            )

    def draw(self, rng: np.random.Generator) -> float:
        # the argument is bounded by [log(low), log(high)] by construction
        return float(
            math.exp(rng.uniform(math.log(self.low), math.log(self.high)))  # repro: allow[NUM001]
        )

    def contains(self, value: Value) -> bool:
        if not isinstance(value, (int, float)):
            return False
        # a hair of slack for the exp/log round trip at the endpoints
        return self.low * (1.0 - 1e-12) <= float(value) <= self.high * (
            1.0 + 1e-12
        )


@dataclasses.dataclass(frozen=True)
class IntRange:
    """An integer drawn uniformly from ``[low, high]`` inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not (self.low <= self.high):
            raise GeneratorError(f"IntRange needs low <= high, got {self}")

    def draw(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def contains(self, value: Value) -> bool:
        return (
            isinstance(value, (int, np.integer))
            and self.low <= int(value) <= self.high
        )


@dataclasses.dataclass(frozen=True)
class Choice:
    """One of a fixed tuple of options, with optional weights."""

    options: tuple[Value, ...]
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.options:
            raise GeneratorError("Choice needs at least one option")
        if self.weights is not None and (
            len(self.weights) != len(self.options)
            or any(w < 0.0 for w in self.weights)
            or sum(self.weights) <= 0.0
        ):
            raise GeneratorError(f"Choice weights malformed: {self}")

    def draw(self, rng: np.random.Generator) -> Value:
        if self.weights is None:
            index = int(rng.integers(len(self.options)))
        else:
            total = sum(self.weights)
            probabilities = [w / total for w in self.weights]
            index = int(rng.choice(len(self.options), p=probabilities))
        return self.options[index]

    def contains(self, value: Value) -> bool:
        return value in self.options


Distribution = Union[Uniform, LogUniform, IntRange, Choice]


class ParamSpace:
    """An ordered, named collection of bounded distributions.

    Draw order is the declaration order, so a space draws the identical
    parameter vector for the identical generator stream — cases are a
    pure function of ``(root seed, case index)``.
    """

    def __init__(self, dims: Mapping[str, Distribution]):
        if not dims:
            raise GeneratorError("ParamSpace needs at least one dimension")
        self._dims: dict[str, Distribution] = dict(dims)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._dims)

    def __getitem__(self, name: str) -> Distribution:
        try:
            return self._dims[name]
        except KeyError:
            raise GeneratorError(f"unknown parameter {name!r}") from None

    def draw(self, rng: np.random.Generator) -> dict[str, Value]:
        """One parameter vector, drawn in declaration order."""
        return {name: dist.draw(rng) for name, dist in self._dims.items()}

    def contains(self, params: Mapping[str, Value]) -> list[str]:
        """Names of parameters outside their declared bounds.

        Unknown names are violations too (the generator drew something
        it never declared); missing names are *not* (families may store
        derived quantities separately).
        """
        violations = []
        for name, value in params.items():
            dist = self._dims.get(name)
            if dist is None or not dist.contains(value):
                violations.append(name)
        return violations
