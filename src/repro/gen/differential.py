"""Differential oracles: run one generated case every way we know how.

For device cases the oracle matrix is

=============  ==============  ===========================================
subject        reference       kind of check
=============  ==============  ===========================================
adaptive MC    master eq.      statistical (the paper's central claim)
non-adaptive   master eq.      statistical (baseline solver honesty)
adaptive MC    non-adaptive    statistical (the two MC solvers agree)
SPICE model    master eq.      deterministic (single-island SETs only)
=============  ==============  ===========================================

and for ``logic`` cases the oracle is structural: the technology
mapper's :func:`~repro.logic.mapping.decompose` must preserve the
logic function on random input vectors.

Tolerance model
---------------
A Monte Carlo point estimate carries shot noise, so equality is a
budgeted comparison::

    |mc - ref|  <=  z * sem  +  rel * |ref|  +  floor_frac * scale  +  abs_floor

* ``z * sem`` — ``sem`` is the standard error over ``replicas``
  independently seeded repeats of the whole curve; ``z`` is wide
  (default 6) because with few replicas the sem estimate itself is
  noisy.
* ``rel * |ref|`` — finite-sample bias of a short MC run (warm-up
  transients, chunk-boundary relaxation) scales with the signal.
* ``floor_frac * scale`` — points deep in Coulomb blockade carry
  currents orders of magnitude below the curve's scale (``scale`` =
  max |reference| over the sweep); shot noise there is an absolute
  offset, not a relative one.
* ``abs_floor`` — guards the all-blockade curve where ``scale``
  itself is ~0.

A *sign-flipped rate* produces currents wrong by O(scale) at every
conducting point, far outside every term, which is what makes the
seeded-bug check (:func:`seeded_bug`) a meaningful calibration of the
budget: loose enough for honest noise, tight enough for real physics
bugs.

Verdicts are ``pass``, ``mismatch``, or ``generator-bug`` — a case
that fails ``repro lint`` strict indicts the generator, not the
solvers, and is never silently skipped.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
from typing import Iterator, Mapping

import numpy as np

from repro.core.sweep import sweep_master_iv
from repro.dsan.runtime import fold_hashes
from repro.errors import GeneratorError
from repro.gen.circuits import GeneratedCase
from repro.lint import lint_deck, lint_logic_netlist
from repro.netlist.semsim import (
    DeckSweepSetter,
    SemsimDeck,
    _series_orientations,
)
from repro.parallel.seeds import spawn_seed_at
from repro.spice.model import SETDeviceModel

__all__ = [
    "CaseVerdict",
    "Comparison",
    "OracleCurve",
    "PointCheck",
    "Tolerance",
    "run_case",
    "seeded_bug",
]

#: stable solver column of a replica's spawn key (never reused)
_SOLVER_IDS = {"adaptive": 1, "nonadaptive": 2, "logic": 9}


@dataclasses.dataclass(frozen=True)
class Tolerance:
    """Statistical equivalence budget (see the module docstring)."""

    z: float = 6.0
    rel: float = 0.10
    floor_frac: float = 0.04
    abs_floor: float = 1.0e-18
    #: relative budget for deterministic pairs (SPICE vs master)
    det_rel: float = 0.02
    det_floor_frac: float = 1.0e-3

    def budget(self, reference: float, sem: float, scale: float) -> float:
        return (
            self.z * sem
            + self.rel * abs(reference)
            + self.floor_frac * scale
            + self.abs_floor
        )

    def det_budget(self, reference: float, scale: float) -> float:
        return (
            self.det_rel * abs(reference)
            + self.det_floor_frac * scale
            + self.abs_floor
        )


@dataclasses.dataclass(frozen=True)
class PointCheck:
    """One sweep point (or stimulus vector) of one oracle pair."""

    index: int
    voltage: float
    reference: float
    observed: float
    sem: float
    budget: float
    ok: bool


@dataclasses.dataclass(frozen=True)
class Comparison:
    """All points of one (subject, reference) oracle pair."""

    subject: str
    reference: str
    checks: tuple[PointCheck, ...]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> tuple[PointCheck, ...]:
        return tuple(c for c in self.checks if not c.ok)


@dataclasses.dataclass(frozen=True)
class OracleCurve:
    """One oracle's replica-averaged curve over the deck's sweep."""

    name: str
    currents: tuple[float, ...]
    sems: tuple[float, ...]
    event_hash: str | None = None


@dataclasses.dataclass(frozen=True)
class CaseVerdict:
    """The differential outcome of one generated case."""

    name: str
    family: str
    kind: str  # "pass" | "mismatch" | "generator-bug"
    comparisons: tuple[Comparison, ...]
    oracles: tuple[OracleCurve, ...]
    voltages: tuple[float, ...]
    lint_findings: tuple[str, ...] = ()
    #: fold of every MC replica's event-stream hash, in a fixed order —
    #: the bit-reproducibility signature of the whole case
    event_hash: str | None = None

    @property
    def ok(self) -> bool:
        return self.kind == "pass"

    def oracle(self, name: str) -> OracleCurve:
        for curve in self.oracles:
            if curve.name == name:
                return curve
        raise GeneratorError(f"{self.name}: no oracle {name!r} in verdict")


@contextlib.contextmanager
def seeded_bug(kind: str | None) -> Iterator[None]:
    """Inject a known physics bug into one MC solver's rate queries.

    ``"sign-flip"`` negates the free-energy change fed to the orthodox
    rate formula — the classic bookkeeping bug this fuzzer exists to
    catch.  The patch wraps
    :meth:`~repro.physics.rates.TunnelingModel.sequential_rates`, the
    query the *non-adaptive* solver issues on every step; the
    differential driver scopes it around non-adaptive runs only, so
    the adaptive solver, the master equation and SPICE stay honest and
    the ``nonadaptive vs master`` / ``adaptive vs nonadaptive`` checks
    *must* fire.  Test fixture only: nothing in production code passes
    ``bug=``.
    """
    if kind is None:
        yield
        return
    if kind != "sign-flip":
        raise GeneratorError(
            f"unknown seeded bug {kind!r}; known: ['sign-flip']"
        )
    from repro.physics.rates import TunnelingModel

    original = TunnelingModel.sequential_rates

    def _flipped(
        self: TunnelingModel, dw_fw: np.ndarray, dw_bw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return original(self, -np.asarray(dw_fw), -np.asarray(dw_bw))

    TunnelingModel.sequential_rates = _flipped  # type: ignore[method-assign]
    try:
        yield
    finally:
        TunnelingModel.sequential_rates = original  # type: ignore[method-assign]


def _replica_seed(case: GeneratedCase, solver: str, replica: int) -> int:
    """Deterministic integer seed for one (case, solver, replica)."""
    seq = spawn_seed_at(
        case.root_seed, (case.index, _SOLVER_IDS[solver], replica)
    )
    return int(seq.generate_state(1, np.uint64)[0])


def _spice_curve(
    deck: SemsimDeck, voltages: np.ndarray
) -> OracleCurve | None:
    """Map a single-island two-junction deck onto the SPICE compact
    model, or ``None`` when the device does not map."""
    if (
        len(deck.junctions) != 2
        or deck.superconductor is not None
        or deck.cotunnel
        or deck.symmetric_node is None
    ):
        return None
    (_, a1, b1, g1, c1), (_, a2, b2, g2, c2) = deck.junctions
    if b1 != b2:  # both junctions must share the island node
        return None
    island = b1
    if a1 != deck.symmetric_node or a2 != (deck.sweep.node if deck.sweep else None):
        return None
    gate_caps = []
    gate_voltages = []
    sources = dict(deck.sources)
    for na, nb, cap in deck.capacitors:
        if nb == island and na in sources:
            gate_caps.append(cap)
            gate_voltages.append(sources[na])
        elif na == island and nb in sources:
            gate_caps.append(cap)
            gate_voltages.append(sources[nb])
        else:
            return None  # stray/trap capacitance: outside the model
    q0 = 0.0
    for node, q in deck.charges:
        if node == island:
            q0 += q
        elif q != 0.0:
            return None
    model = SETDeviceModel(
        r1=1.0 / g1,
        c1=c1,
        r2=1.0 / g2,
        c2=c2,
        gate_capacitances=gate_caps,
        bias_charge_e=q0,
        temperature=deck.temperature,
    )
    currents = tuple(
        float(model.current(-v, +v, gate_voltages)) for v in voltages
    )
    return OracleCurve("spice", currents, tuple(0.0 for _ in currents))


def _compare(
    subject: OracleCurve,
    reference: OracleCurve,
    voltages: np.ndarray,
    tolerance: Tolerance,
    *,
    deterministic: bool = False,
) -> Comparison:
    scale = max((abs(c) for c in reference.currents), default=0.0)
    checks = []
    for i, v in enumerate(voltages):
        ref = reference.currents[i]
        obs = subject.currents[i]
        sem = math.hypot(subject.sems[i], reference.sems[i])
        if deterministic:
            budget = tolerance.det_budget(ref, scale)
        else:
            budget = tolerance.budget(ref, sem, scale)
        checks.append(
            PointCheck(
                index=i,
                voltage=float(v),
                reference=ref,
                observed=obs,
                sem=sem,
                budget=budget,
                ok=abs(obs - ref) <= budget,
            )
        )
    return Comparison(subject.name, reference.name, tuple(checks))


def _generator_bug(case: GeneratedCase, findings: tuple[str, ...]) -> CaseVerdict:
    return CaseVerdict(
        name=case.name,
        family=case.family,
        kind="generator-bug",
        comparisons=(),
        oracles=(),
        voltages=(),
        lint_findings=findings,
    )


def _run_device_case(
    case: GeneratedCase,
    *,
    replicas: int,
    tolerance: Tolerance,
    bug: str | None,
) -> CaseVerdict:
    deck = case.deck()
    report = lint_deck(deck)
    if report.errors:
        return _generator_bug(
            case, tuple(str(d) for d in report.errors)
        )
    if deck.sweep is None:
        return _generator_bug(case, ("generated deck carries no sweep",))
    circuit = deck.build_circuit()
    junctions = deck.recorded_junctions(circuit)
    orientations = _series_orientations(circuit, junctions)
    voltages = deck.sweep.values()
    setter = DeckSweepSetter(
        f"v{deck.sweep.node}",
        f"v{deck.symmetric_node}" if deck.symmetric_node is not None else None,
    )
    master_curve = sweep_master_iv(
        circuit,
        voltages,
        temperature=deck.temperature,
        source_setter=setter,
        measure_junctions=junctions,
        orientations=orientations,
        include_cotunneling=deck.cotunnel,
        label=case.name,
    )
    oracles = [
        OracleCurve(
            "master",
            tuple(float(c) for c in master_curve.currents),
            tuple(0.0 for _ in master_curve.currents),
        )
    ]
    hashes: list[str] = []
    for solver in ("adaptive", "nonadaptive"):
        rows = []
        for replica in range(replicas):
            seed = _replica_seed(case, solver, replica)
            # the seeded bug corrupts only the non-adaptive solver, so
            # the reference oracles stay honest and must disagree
            with seeded_bug(bug if solver == "nonadaptive" else None):
                curve = deck.run(solver, seed=seed, dsan=True)
            rows.append(np.asarray(curve.currents))
            if curve.event_hash is not None:
                hashes.append(curve.event_hash)
        stack = np.stack(rows)
        mean = stack.mean(axis=0)
        if replicas > 1:
            sems = stack.std(axis=0, ddof=1) / math.sqrt(replicas)
        else:
            sems = np.zeros_like(mean)
        oracles.append(
            OracleCurve(
                solver,
                tuple(float(x) for x in mean),
                tuple(float(s) for s in sems),
            )
        )
    spice = _spice_curve(deck, voltages)
    if spice is not None:
        oracles.append(spice)
    by_name = {o.name: o for o in oracles}
    comparisons = [
        _compare(by_name["adaptive"], by_name["master"], voltages, tolerance),
        _compare(by_name["nonadaptive"], by_name["master"], voltages, tolerance),
        _compare(by_name["adaptive"], by_name["nonadaptive"], voltages, tolerance),
    ]
    if spice is not None:
        comparisons.append(
            _compare(
                spice, by_name["master"], voltages, tolerance,
                deterministic=True,
            )
        )
    ok = all(c.ok for c in comparisons)
    return CaseVerdict(
        name=case.name,
        family=case.family,
        kind="pass" if ok else "mismatch",
        comparisons=tuple(comparisons),
        oracles=tuple(oracles),
        voltages=tuple(float(v) for v in voltages),
        event_hash=fold_hashes(hashes) if hashes else None,
    )


def _run_logic_case(case: GeneratedCase) -> CaseVerdict:
    from repro.logic.mapping import decompose

    netlist = case.netlist()
    report = lint_logic_netlist(netlist)
    if report.errors:
        return _generator_bug(case, tuple(str(d) for d in report.errors))
    decomposed = decompose(netlist)
    mapped_report = lint_logic_netlist(decomposed)
    rng = np.random.default_rng(
        spawn_seed_at(case.root_seed, (case.index, _SOLVER_IDS["logic"], 0))
    )
    n_vectors = int(case.params["n_vectors"])
    checks = []
    for i in range(n_vectors):
        vector = {
            name: bool(rng.integers(2)) for name in netlist.inputs
        }
        want = netlist.output_values(vector)
        got = decomposed.output_values(vector)
        agree = sum(want[o] == got[o] for o in netlist.outputs)
        total = len(netlist.outputs)
        checks.append(
            PointCheck(
                index=i,
                voltage=0.0,
                reference=1.0,
                observed=agree / total if total else 1.0,
                sem=0.0,
                budget=0.0,
                ok=want == got,
            )
        )
    comparison = Comparison("decomposed", "netlist", tuple(checks))
    ok = comparison.ok and not mapped_report.errors
    return CaseVerdict(
        name=case.name,
        family=case.family,
        kind="pass" if ok else "mismatch",
        comparisons=(comparison,),
        oracles=(),
        voltages=(),
        lint_findings=tuple(str(d) for d in mapped_report.errors),
    )


def run_case(
    case: GeneratedCase,
    *,
    replicas: int = 3,
    tolerance: Tolerance | None = None,
    bug: str | None = None,
) -> CaseVerdict:
    """Cross-check one generated case against every applicable oracle.

    Deterministic: replica seeds are spawned at content-stable
    coordinates ``(case index, solver id, replica)`` under the
    campaign's root seed, so the verdict is a pure function of
    ``(case, replicas, tolerance, bug)`` — which is exactly what makes
    whole verdicts cacheable by content address.
    """
    tol = tolerance if tolerance is not None else Tolerance()
    if replicas < 1:
        raise GeneratorError(f"replicas must be >= 1, got {replicas}")
    if case.family == "logic":
        return _run_logic_case(case)
    return _run_device_case(
        case, replicas=replicas, tolerance=tol, bug=bug
    )
